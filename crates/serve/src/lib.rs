//! # `pcnn-serve` — async serving front-end for the sparse inference engine
//!
//! `pcnn_runtime::Engine` is a synchronous library call: hand it a
//! vector of tensors, get a vector of tensors back. Real traffic is not
//! shaped like that — requests arrive one at a time from many clients,
//! and what matters is tail latency under load, admission control when
//! the load exceeds capacity, and the throughput won by batching
//! requests that happen to arrive together. This crate is that layer:
//!
//! ```text
//!                                      ┌─► batcher 0 ──► Engine shard 0
//!  clients ── submit() ──► BoundedQueue┼─► batcher 1 ──► Engine shard 1
//!     ▲                    (capacity,  └─► batcher N ──► Engine shard N
//!     │                     backpressure)   (max_batch,    (coalesced
//!     │                                      max_wait)      batch pass)
//!     └────────── Ticket::wait() ◄── fulfil ◄──┘
//! ```
//!
//! * **Admission control** ([`queue`]): a bounded two-priority MPMC
//!   queue. A full queue rejects at submission ([`ServeError::QueueFull`])
//!   — latency stays bounded because the backlog is.
//! * **Sharded dispatch** ([`ServeConfig::shards`]): the engine's worker
//!   budget partitions into independent engine shards (one compiled
//!   graph, separate worker pools), each drained by its own batcher
//!   thread popping the **same** queue — admission, priorities, and
//!   backpressure are unchanged while dispatch parallelism multiplies.
//! * **Dynamic micro-batching** ([`batcher`]): requests queued within a
//!   `max_wait` window of the batch's first admission coalesce, up to
//!   `max_batch`, into one stacked engine pass, which amortises
//!   padded-plane construction, offset tables, and per-op dispatch
//!   across the batch ([`pcnn_runtime::PatternConv::forward_batch`]).
//! * **Handle-based async API** ([`ticket`]): [`Server::submit`] returns
//!   a [`Ticket`] immediately; redeem with [`Ticket::wait`],
//!   [`Ticket::try_wait`], or [`Ticket::wait_timeout`]. Threads and
//!   condvars only — no async runtime, consistent with the
//!   dependency-free workspace.
//! * **Latency telemetry** ([`metrics`]): lock-free counters and
//!   log-bucketed histograms, kept per shard and merged on read
//!   ([`metrics::LogHistogram::merge_from`]), giving p50/p95/p99 of
//!   queue wait and end-to-end latency plus throughput — absorbing the
//!   engine's bulk `ServeStats` view.
//! * **Windowed health** ([`window`], [`health`], [`attribution`]):
//!   rolling 1 s / 10 s / 60 s rates and latency quantiles over the
//!   same wait-free primitives, an SLO burn-rate health engine
//!   ([`Server::health`], with opt-in low-priority shedding while
//!   `Overloaded`), and span-driven latency attribution that splits
//!   end-to-end time into queue / coalesce / dispatch / execute /
//!   notify segments.
//! * **Precision selection** ([`ServeConfig::precision`],
//!   [`Server::submit_with`]): when the engine's graph carries the int8
//!   lowering (`pcnn_runtime::compile::compile_quant`), the server
//!   routes traffic to either datapath — per server (the config
//!   default) or per request. Batches stay precision-uniform, and
//!   telemetry reports a per-precision breakdown
//!   ([`TelemetrySnapshot`]'s `precisions`).
//! * **Graceful shutdown** ([`shutdown`]): close admissions, drain the
//!   queue (or abort it), join every batcher, report.
//! * **Fault tolerance** ([`supervisor`], [`faults`]): per-request
//!   deadlines ([`ServeConfig::default_deadline`],
//!   [`Server::submit_with_deadline`]) and client-side cancellation
//!   ([`Ticket::cancel`]); transient engine faults retried on a
//!   different shard under a token-bucket budget ([`RetryPolicy`]); a
//!   supervisor thread that detects panicked or wedged batchers by
//!   heartbeat, fails their in-flight tickets with attribution
//!   ([`ServeError::ShardFailed`]), respawns the engine pool from the
//!   shared graph, and trips a per-shard circuit breaker on crash
//!   loops ([`SupervisorConfig`], [`BreakerState`]); plus a
//!   deterministic fault-injection plan ([`FaultPlan`]) that drives the
//!   chaos tests without any real nondeterminism.
//!
//! ## Quickstart
//!
//! ```
//! use pcnn_nn::models;
//! use pcnn_runtime::compile::compile_dense;
//! use pcnn_runtime::Engine;
//! use pcnn_serve::{ServeConfig, Server};
//! use pcnn_tensor::Tensor;
//!
//! let engine = Engine::new(compile_dense(&models::tiny_cnn(4, 4, 1)), 2);
//! let server = Server::start(engine, ServeConfig::default());
//! let ticket = server.submit(Tensor::ones(&[1, 3, 8, 8])).unwrap();
//! let out = ticket.wait().unwrap();
//! assert_eq!(out.shape(), &[1, 4]);
//! println!("{}", server.metrics().snapshot());
//! let report = server.shutdown(pcnn_serve::ShutdownMode::Drain);
//! assert_eq!(report.completed, 1);
//! ```

#![forbid(unsafe_code)]

pub mod attribution;
pub mod batcher;
pub mod events;
pub mod faults;
pub mod health;
pub mod incident;
pub mod metrics;
pub mod queue;
pub mod shutdown;
pub mod supervisor;
pub mod ticket;
pub mod trace;
pub mod window;

pub use attribution::AttributionReport;
pub use events::{EventCode, EventConfig, EventJournal, RecordedEvent, Severity};
pub use faults::FaultPlan;
pub use health::{HealthReport, HealthState, SloConfig};
pub use incident::{DiagnosticSnapshot, IncidentRecorder, IncidentTrigger};
pub use metrics::{PrecisionSnapshot, ServerMetrics, ShardSnapshot, TelemetrySnapshot};
pub use pcnn_runtime::Precision;
pub use queue::Priority;
pub use shutdown::{DrainPrecision, DrainReport, ShutdownMode};
pub use supervisor::{BreakerState, RetryPolicy, ShardStatus, SupervisorConfig};
pub use ticket::{ServeError, Ticket};
pub use trace::{FlightRecorder, RecordedSpan, SpanOutcome, TraceConfig};
pub use window::{WindowSnapshot, WindowStats, WINDOWS};

use batcher::{BatcherContext, Request, RetryCtx};
use pcnn_runtime::{Engine, ExecProfiler, ExecutableGraph};
use pcnn_sync::atomic::{AtomicBool, Ordering};
use pcnn_sync::{thread, Arc, Mutex};
use queue::{BoundedQueue, PushError};
use std::time::{Duration, Instant};
use supervisor::{ShardSlot, SpawnFn, Supervisor};
use ticket::TicketCell;
use trace::ActiveSpan;

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission limit of the request queue. Requests beyond it are
    /// rejected with [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Most requests coalesced into one engine pass.
    pub max_batch: usize,
    /// Longest a request's batch is held open for coalescing, measured
    /// from that request's **admission**. Zero means "dispatch whatever
    /// is queued".
    pub max_wait: Duration,
    /// When set, `submit` rejects inputs whose `C × H × W` differs
    /// (admission-time shape checking). When `None`, any single-image
    /// NCHW input is admitted and the batchers split batches on shape
    /// changes.
    pub input_chw: Option<[usize; 3]>,
    /// Engine shards. The engine's worker budget is partitioned into
    /// this many independent engines (shared compiled graph, separate
    /// worker pools), each driven by its own batcher thread popping the
    /// same queue. `1` (default) reproduces the single-dispatcher
    /// topology; `0` means auto — one shard per available core, capped
    /// at the engine's worker count so the budget truly partitions. An
    /// **explicit** count is honoured even past the engine's workers:
    /// every shard owns at least one worker, so `shards > threads`
    /// deliberately grows the total thread count (oversubscription —
    /// useful for I/O-heavy callbacks, a tail-latency hazard otherwise).
    pub shards: usize,
    /// The precision requests execute at when `submit` /
    /// `submit_with_priority` don't say otherwise (per-server
    /// selection). Per-request selection is [`Server::submit_with`];
    /// batches stay precision-uniform, and telemetry is labeled by
    /// precision ([`TelemetrySnapshot`]'s `precisions`).
    /// [`Precision::Int8`] requires an engine whose graph carries the
    /// quantised lowering (`pcnn_runtime::compile::compile_quant`).
    pub precision: Precision,
    /// Request-lifecycle tracing knobs: span sampling rate and the
    /// per-shard flight-recorder ring capacity ([`TraceConfig`]).
    /// Request IDs and trace counters are always on; only span capture
    /// is sampled.
    pub trace: TraceConfig,
    /// Rolling-window telemetry (1 s / 10 s / 60 s rates and latency
    /// quantiles, the `pcnn_window_*` series, and the health engine's
    /// input signal). On by default; turning it off removes the window
    /// rings entirely and the health engine reports `Healthy` with no
    /// signal.
    pub windowed: bool,
    /// The service-level objective the built-in health engine grades
    /// live traffic against ([`SloConfig`]) — latency target and
    /// percentile, availability target, burn-rate windows, and the
    /// opt-in low-priority shedding hook.
    pub slo: SloConfig,
    /// The structured event journal's knobs ([`EventConfig`]): ring
    /// retention and per-code rate limiting for the control-plane
    /// forensics feed (queue-full, shed, faults, health transitions,
    /// drains).
    pub events: EventConfig,
    /// Deadline stamped on every request that [`Server::submit`] /
    /// [`Server::submit_with`] admits (relative to admission). `None`
    /// (default) means no deadline unless the caller sets one via
    /// [`Server::submit_with_deadline`]. An expired request is dropped
    /// at dequeue — or after coalescing, the last gate before the
    /// engine — with [`ServeError::DeadlineExceeded`], counted in
    /// `pcnn_deadline_exceeded_total` and the windowed error rates.
    pub default_deadline: Option<Duration>,
    /// Retry policy for transient engine faults ([`RetryPolicy`]): a
    /// faulted request re-queues at high priority marked to avoid the
    /// shard that failed it, gated by the per-shard token-bucket
    /// budget and the health state (no retries while `Overloaded`).
    /// The default (`max_attempts: 1`) disables retries.
    pub retry: RetryPolicy,
    /// Shard supervision knobs ([`SupervisorConfig`]): heartbeat stall
    /// detection, restart-rate circuit breaking, half-open probing.
    /// Enabled by default.
    pub supervision: SupervisorConfig,
    /// The armed fault-injection plan ([`FaultPlan`]) — deterministic
    /// chaos for tests and drills. `None` (default) injects nothing
    /// and costs nothing on the hot path beyond one `Option` check.
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for ServeConfig {
    /// Capacity 256, batches of up to 8, 2 ms coalescing window, no
    /// shape pinning, one shard, f32 execution.
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 256,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            input_chw: None,
            shards: 1,
            precision: Precision::F32,
            trace: TraceConfig::default(),
            windowed: true,
            slo: SloConfig::default(),
            events: EventConfig::default(),
            default_deadline: None,
            retry: RetryPolicy::default(),
            supervision: SupervisorConfig::default(),
            faults: None,
        }
    }
}

impl ServeConfig {
    /// The effective configuration as one JSON object — embedded in
    /// every [`DiagnosticSnapshot`] so an incident records the exact
    /// knobs the server ran with.
    pub fn to_json(&self) -> String {
        let chw = match self.input_chw {
            Some([c, h, w]) => format!("[{c},{h},{w}]"),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"queue_capacity\":{},\"max_batch\":{},\"max_wait_ms\":{:.3},",
                "\"input_chw\":{},\"shards\":{},\"precision\":\"{}\",",
                "\"trace\":{{\"sample_every\":{},\"ring_capacity\":{}}},",
                "\"windowed\":{},",
                "\"slo\":{{\"latency_target_ms\":{:.3},\"latency_percentile\":{},",
                "\"availability_target\":{},\"fast_window_s\":{},\"slow_window_s\":{},",
                "\"degraded_burn\":{},\"overloaded_burn\":{},\"min_samples\":{},",
                "\"shed_low_priority\":{},\"eval_interval_ms\":{:.3}}},",
                "\"events\":{{\"enabled\":{},\"ring_capacity\":{},",
                "\"rate_window_ms\":{:.3},\"rate_burst\":{}}},",
                "\"default_deadline_ms\":{},",
                "\"retry\":{{\"max_attempts\":{},\"backoff_ms\":{:.3},",
                "\"budget_ratio\":{},\"budget_burst\":{}}},",
                "\"supervision\":{{\"enabled\":{},\"stall_timeout_ms\":{:.3},",
                "\"max_restarts\":{},\"restart_window_s\":{},",
                "\"open_duration_ms\":{:.3},\"probe_batches\":{}}},",
                "\"faults_armed\":{}}}"
            ),
            self.queue_capacity,
            self.max_batch,
            self.max_wait.as_secs_f64() * 1e3,
            chw,
            self.shards,
            self.precision.label(),
            self.trace.sample_every,
            self.trace.ring_capacity,
            self.windowed,
            self.slo.latency_target.as_secs_f64() * 1e3,
            self.slo.latency_percentile,
            self.slo.availability_target,
            self.slo.fast_window.as_secs_f64(),
            self.slo.slow_window.as_secs_f64(),
            self.slo.degraded_burn,
            self.slo.overloaded_burn,
            self.slo.min_samples,
            self.slo.shed_low_priority,
            self.slo.eval_interval.as_secs_f64() * 1e3,
            self.events.enabled,
            self.events.ring_capacity,
            self.events.rate_window.as_secs_f64() * 1e3,
            self.events.rate_burst,
            match self.default_deadline {
                Some(d) => format!("{:.3}", d.as_secs_f64() * 1e3),
                None => "null".to_string(),
            },
            self.retry.max_attempts,
            self.retry.backoff.as_secs_f64() * 1e3,
            self.retry.budget_ratio,
            self.retry.budget_burst,
            self.supervision.enabled,
            self.supervision.stall_timeout.as_secs_f64() * 1e3,
            self.supervision.max_restarts,
            self.supervision.restart_window.as_secs_f64(),
            self.supervision.open_duration.as_secs_f64() * 1e3,
            self.supervision.probe_batches,
            self.faults.is_some(),
        )
    }
}

/// Resolves `config.shards` against the engine: `0` (auto) becomes one
/// shard per available core, capped at the engine's worker count so a
/// shard never owns zero of the original budget.
fn resolve_shards(requested: usize, engine_threads: usize) -> usize {
    match requested {
        0 => thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(engine_threads)
            .max(1),
        n => n,
    }
}

/// The serving front-end: owns the engine shards, the bounded queue,
/// and one batcher thread per shard.
///
/// `Server` is `Sync` — clients on any number of threads call
/// [`Server::submit`] concurrently. Dropping the server performs a
/// drain shutdown.
pub struct Server {
    supervisor: Arc<Supervisor>,
    queue: Arc<BoundedQueue<Request>>,
    metrics: Arc<ServerMetrics>,
    recorder: Arc<FlightRecorder>,
    health: Arc<health::HealthEngine>,
    incidents: Arc<IncidentRecorder>,
    abort: Arc<AtomicBool>,
    /// The compiled graph shared by every shard (and every respawned
    /// engine) — the admission-time precision check reads this instead
    /// of locking a shard slot.
    graph: Arc<ExecutableGraph>,
    /// The execution profiler shared by every shard, held directly so
    /// rendering the exec profile never pins a (possibly dead) engine.
    profiler: Arc<ExecProfiler>,
    shards: usize,
    finished: bool,
    config: ServeConfig,
}

impl Server {
    /// Compiles the front-end around `engine` — partitioning it into
    /// `config.shards` engine shards when sharding is requested — and
    /// spawns one batcher thread per shard, all consuming the same
    /// queue.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_batch == 0`, or if `config.precision`
    /// requests a lowering the engine's graph does not carry.
    pub fn start(engine: Engine, config: ServeConfig) -> Self {
        assert!(config.max_batch > 0, "max_batch must be at least 1");
        assert!(
            engine.supports(config.precision),
            "engine graph lacks the {} lowering (compile with compile_quant)",
            config.precision
        );
        let shards = resolve_shards(config.shards, engine.threads());
        let graph = engine.shared_graph();
        let profiler = engine.profiler_handle();
        let engines: Vec<Arc<Engine>> = if shards == 1 {
            vec![Arc::new(engine)]
        } else {
            engine
                .into_shards(shards)
                .into_iter()
                .map(Arc::new)
                .collect()
        };
        let metrics = Arc::new(ServerMetrics::with_config(
            shards,
            config.windowed,
            config.events.clone(),
        ));
        let journal = metrics.events().clone();
        let mut queue = BoundedQueue::new(config.queue_capacity);
        queue.set_journal(journal.clone());
        let queue = Arc::new(queue);
        let mut recorder = FlightRecorder::new(&config.trace, shards);
        recorder.attach_journal(journal);
        let recorder = Arc::new(recorder);
        let incidents = Arc::new(IncidentRecorder::new(
            &config,
            profiler.clone(),
            shards,
            metrics.clone(),
            recorder.clone(),
        ));
        let health = Arc::new(
            health::HealthEngine::new(config.slo.clone()).with_incidents(incidents.clone()),
        );
        let abort = Arc::new(AtomicBool::new(false));
        let slots: Vec<Arc<ShardSlot>> = engines
            .into_iter()
            .enumerate()
            .map(|(i, engine)| ShardSlot::new(i, engine, &config.retry))
            .collect();
        let delayed = Arc::new(Mutex::new(Vec::new()));
        // The spawn hook: everything a batcher generation needs, bound
        // once here so the supervisor can respawn shards without ever
        // constructing a `BatcherContext` itself.
        let spawn: SpawnFn = {
            let queue = queue.clone();
            let metrics = metrics.clone();
            let recorder = recorder.clone();
            let incidents = incidents.clone();
            let abort = abort.clone();
            let health = health.clone();
            let faults = config.faults.clone();
            let retry = (config.retry.max_attempts > 1).then(|| RetryCtx {
                policy: config.retry.clone(),
                delayed: config.supervision.enabled.then(|| delayed.clone()),
            });
            let max_batch = config.max_batch;
            let max_wait = config.max_wait;
            Box::new(move |slot: Arc<ShardSlot>, generation: u64| {
                let engine = slot.engine.lock().expect("slot engine poisoned").clone();
                let index = slot.index;
                let ctx = BatcherContext {
                    engine,
                    queue: queue.clone(),
                    shard: metrics.shard(index).clone(),
                    shard_index: index,
                    metrics: metrics.clone(),
                    recorder: recorder.clone(),
                    incidents: incidents.clone(),
                    abort: abort.clone(),
                    slot: Arc::clone(&slot),
                    generation,
                    health: health.clone(),
                    faults: faults.clone(),
                    shards_total: shards,
                    retry: retry.clone(),
                    max_batch,
                    max_wait,
                };
                thread::Builder::new()
                    .name(format!("pcnn-serve-batcher-{index}"))
                    .spawn(move || batcher::run_batcher(ctx))
                    .expect("spawn batcher thread")
            })
        };
        for slot in &slots {
            let handle = spawn(Arc::clone(slot), 0);
            *slot.handle.lock().expect("slot handle poisoned") = Some(handle);
        }
        let supervisor = Supervisor::start(
            config.supervision.clone(),
            slots,
            delayed,
            queue.clone(),
            metrics.clone(),
            incidents.clone(),
            spawn,
        );
        Server {
            supervisor,
            queue,
            metrics,
            recorder,
            health,
            incidents,
            abort,
            graph,
            profiler,
            shards,
            finished: false,
            config,
        }
    }

    /// Shard 0's current engine (the only engine when `shards == 1`).
    /// An `Arc` clone rather than a borrow: the supervisor may replace
    /// a shard's engine at any time, and the clone stays valid across a
    /// restart (it just points at the retired pool).
    pub fn engine(&self) -> Arc<Engine> {
        self.engine_shard(0)
    }

    /// Number of engine shards serving the queue.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Shard `i`'s current engine (see [`Server::engine`] on why this
    /// is an `Arc` clone).
    pub fn engine_shard(&self, i: usize) -> Arc<Engine> {
        self.supervisor.slots()[i]
            .engine
            .lock()
            .expect("slot engine poisoned")
            .clone()
    }

    /// The supervision status of shard `i`: batcher generation, restart
    /// count, circuit-breaker state, registered in-flight requests, and
    /// available retry tokens.
    pub fn shard_status(&self, i: usize) -> ShardStatus {
        self.supervisor.status(i)
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Live telemetry (counters and histograms update as traffic flows).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// The request-lifecycle flight recorder: per-shard rings of the
    /// last K sampled span timelines plus always-on trace counters.
    /// `flight_recorder().to_json()` is the postmortem dump.
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Evaluates the SLO health engine against the current windows and
    /// returns the fresh [`HealthReport`] (state, per-window burn
    /// rates, transition and shed counts).
    pub fn health(&self) -> HealthReport {
        self.health
            .evaluate_at(&self.metrics, self.metrics.now_ns())
    }

    /// The health engine itself — for the cheap [`HealthState`] read
    /// ([`health::HealthEngine::state`]) or deterministic evaluation at
    /// an explicit timestamp in tests.
    pub fn health_engine(&self) -> &health::HealthEngine {
        &self.health
    }

    /// The black-box incident recorder: bounded ring of automatically
    /// captured [`DiagnosticSnapshot`]s (health deterioration, first
    /// engine fault, drain with failures), plus capture/suppression
    /// counters.
    pub fn incidents(&self) -> &IncidentRecorder {
        &self.incidents
    }

    /// One-call diagnostics: evaluates health now and captures a full
    /// [`DiagnosticSnapshot`] on demand — build info, effective config,
    /// telemetry, health, attribution, span and event tails, and the
    /// exec profile when enabled. Bypasses the incident ring and
    /// cooldown; it never counts as an incident.
    pub fn diagnostics(&self) -> DiagnosticSnapshot {
        // Evaluating refreshes the recorder's cached health report via
        // the health engine's incident hook.
        let _ = self.health();
        self.incidents.diagnostics()
    }

    /// Every counter, gauge, and histogram in Prometheus text
    /// exposition format — the serving telemetry, the trace counters,
    /// and (when profiling is enabled on the engine) the per-layer
    /// execution profile. Metric names are documented in the README's
    /// "Observability" section.
    pub fn render_prometheus(&self) -> String {
        let mut out = self.metrics.render_prometheus();
        out.push_str(
            "# HELP pcnn_build_info Deploy metadata carried as labels; the value is always 1.\n",
        );
        out.push_str("# TYPE pcnn_build_info gauge\n");
        out.push_str(&format!(
            "pcnn_build_info{{version=\"{}\",simd=\"{}\",shards=\"{}\",precision=\"{}\"}} 1\n",
            env!("CARGO_PKG_VERSION"),
            pcnn_tensor::simd::active().label(),
            self.shards,
            self.config.precision.label(),
        ));
        out.push_str("# HELP pcnn_uptime_seconds Seconds since the server started.\n");
        out.push_str("# TYPE pcnn_uptime_seconds gauge\n");
        out.push_str(&format!(
            "pcnn_uptime_seconds {:.3}\n",
            self.metrics.uptime().as_secs_f64()
        ));
        let report = self.health();
        out.push_str(
            "# HELP pcnn_health_state SLO health state: 0 healthy, 1 degraded, 2 overloaded.\n",
        );
        out.push_str("# TYPE pcnn_health_state gauge\n");
        out.push_str(&format!("pcnn_health_state {}\n", report.state.code()));
        out.push_str(
            "# HELP pcnn_health_burn_rate Error-budget burn rate per evaluation window.\n",
        );
        out.push_str("# TYPE pcnn_health_burn_rate gauge\n");
        out.push_str(&format!(
            "pcnn_health_burn_rate{{window=\"fast\"}} {:.4}\n",
            report.fast.burn
        ));
        out.push_str(&format!(
            "pcnn_health_burn_rate{{window=\"slow\"}} {:.4}\n",
            report.slow.burn
        ));
        out.push_str("# HELP pcnn_health_transitions_total Health state transitions.\n");
        out.push_str("# TYPE pcnn_health_transitions_total counter\n");
        out.push_str(&format!(
            "pcnn_health_transitions_total {}\n",
            report.transitions
        ));
        out.push_str("# HELP pcnn_trace_requests_total Requests assigned a trace ID.\n");
        out.push_str("# TYPE pcnn_trace_requests_total counter\n");
        out.push_str(&format!(
            "pcnn_trace_requests_total {}\n",
            self.recorder.requests()
        ));
        out.push_str("# HELP pcnn_trace_spans_recorded_total Sampled spans published to the flight recorder.\n");
        out.push_str("# TYPE pcnn_trace_spans_recorded_total counter\n");
        out.push_str(&format!(
            "pcnn_trace_spans_recorded_total {}\n",
            self.recorder.spans_recorded()
        ));
        out.push_str(
            "# HELP pcnn_trace_spans_dropped_total Sampled spans lost to ring-slot contention.\n",
        );
        out.push_str("# TYPE pcnn_trace_spans_dropped_total counter\n");
        out.push_str(&format!(
            "pcnn_trace_spans_dropped_total {}\n",
            self.recorder.spans_dropped()
        ));
        out.push_str(
            "# HELP pcnn_shard_breaker_state Circuit breaker: 0 closed, 1 open, 2 half-open.\n",
        );
        out.push_str("# TYPE pcnn_shard_breaker_state gauge\n");
        for i in 0..self.shards {
            let status = self.supervisor.status(i);
            out.push_str(&format!(
                "pcnn_shard_breaker_state{{shard=\"{i}\"}} {}\n",
                status.breaker.code()
            ));
        }
        if self.profiler.is_enabled() {
            out.push_str(&self.profiler.snapshot().render_prometheus());
        }
        out
    }

    /// Submits a `1 × C × H × W` request at [`Priority::Normal`] and
    /// the server's default precision ([`ServeConfig::precision`]).
    ///
    /// Returns a [`Ticket`] immediately; the inference happens on the
    /// batcher/engine threads. Errors are immediate and synchronous:
    /// shape rejection ([`ServeError::BadInput`]), backpressure
    /// ([`ServeError::QueueFull`]), or shutdown
    /// ([`ServeError::ShuttingDown`]).
    pub fn submit(&self, input: pcnn_tensor::Tensor) -> Result<Ticket, ServeError> {
        self.submit_with(input, Priority::Normal, self.config.precision)
    }

    /// [`Server::submit`] with an explicit scheduling class.
    pub fn submit_with_priority(
        &self,
        input: pcnn_tensor::Tensor,
        priority: Priority,
    ) -> Result<Ticket, ServeError> {
        self.submit_with(input, priority, self.config.precision)
    }

    /// [`Server::submit`] with an explicit scheduling class **and**
    /// execution precision — per-request precision selection. The
    /// batchers keep batches precision-uniform (a mismatching request
    /// seeds the next batch, like a shape change), so mixed traffic
    /// never mixes datapaths within one engine pass.
    ///
    /// Fails with [`ServeError::PrecisionUnavailable`] when the engine's
    /// graph lacks the requested lowering.
    pub fn submit_with(
        &self,
        input: pcnn_tensor::Tensor,
        priority: Priority,
        precision: Precision,
    ) -> Result<Ticket, ServeError> {
        self.submit_inner(input, priority, precision, self.config.default_deadline)
    }

    /// [`Server::submit_with`] with an explicit per-request deadline
    /// (relative to now), overriding [`ServeConfig::default_deadline`].
    /// A request whose deadline elapses before dispatch resolves with
    /// [`ServeError::DeadlineExceeded`] instead of occupying an engine
    /// pass its client stopped waiting for.
    pub fn submit_with_deadline(
        &self,
        input: pcnn_tensor::Tensor,
        priority: Priority,
        precision: Precision,
        deadline: Duration,
    ) -> Result<Ticket, ServeError> {
        self.submit_inner(input, priority, precision, Some(deadline))
    }

    fn submit_inner(
        &self,
        input: pcnn_tensor::Tensor,
        priority: Priority,
        precision: Precision,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServeError> {
        if !self.graph.supports(precision) {
            return Err(ServeError::PrecisionUnavailable);
        }
        let dims = input.shape();
        if dims.len() != 4 || dims[0] != 1 {
            return Err(ServeError::BadInput(format!(
                "expected 1 x C x H x W, got {dims:?}"
            )));
        }
        if let Some(chw) = self.config.input_chw {
            if dims[1..] != chw {
                return Err(ServeError::BadInput(format!(
                    "expected 1 x {} x {} x {}, got {dims:?}",
                    chw[0], chw[1], chw[2]
                )));
            }
        }
        // Health runs on the admission path so the state keeps up with
        // traffic without an external poller; `maybe_evaluate` is a
        // relaxed load unless `eval_interval` has elapsed. Shedding is
        // opt-in and never touches Priority::High.
        self.health.maybe_evaluate(&self.metrics);
        if self.config.slo.shed_low_priority
            && priority == Priority::Normal
            && self.health.state() == HealthState::Overloaded
        {
            self.metrics.shed.inc();
            self.metrics.events().emit(
                EventCode::Shed,
                Severity::Warn,
                self.metrics.shed.get(),
                self.health.state().code() as u64,
            );
            return Err(ServeError::Overloaded);
        }
        // Injected admission failure: the chaos plan's backpressure
        // knob, taken after the real gates so it cannot mask them.
        if self
            .config
            .faults
            .as_ref()
            .is_some_and(|f| f.take_queue_full())
        {
            self.metrics.rejected.inc();
            return Err(ServeError::QueueFull);
        }
        let cell = TicketCell::new();
        let id = self.recorder.begin();
        let span = self.recorder.is_sampled(id).then(|| {
            Box::new(ActiveSpan {
                id,
                admitted_ns: self.recorder.now_ns(),
                dequeued_ns: 0,
            })
        });
        let submitted = Instant::now();
        let request = Request {
            input,
            cell: cell.clone(),
            submitted,
            precision,
            span,
            id,
            deadline: deadline.map(|d| submitted + d),
            attempt: 0,
            avoid_shard: None,
            bounced: false,
        };
        match self.queue.try_push(request, priority) {
            Ok(()) => {
                self.metrics.submitted.inc();
                let depth = self.queue.len() as u64;
                self.metrics.queue_depth.set(depth);
                self.metrics.queue_depth_hwm.observe(depth);
                Ok(Ticket::new(cell, id))
            }
            Err(PushError::Full(_)) => {
                self.metrics.rejected.inc();
                Err(ServeError::QueueFull)
            }
            Err(PushError::Closed(_)) => {
                self.metrics.rejected_shutdown.inc();
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Stops the server: closes admissions, drains (or aborts) the
    /// queue, joins the batcher, and reports what happened.
    pub fn shutdown(mut self, mode: ShutdownMode) -> DrainReport {
        self.shutdown_inner(mode)
    }

    fn shutdown_inner(&mut self, mode: ShutdownMode) -> DrainReport {
        self.finished = true;
        let start = Instant::now();
        let mode_code = match mode {
            ShutdownMode::Drain => 0,
            ShutdownMode::Abort => 1,
        };
        self.metrics.events().emit(
            EventCode::DrainBegin,
            Severity::Info,
            mode_code,
            self.queue.len() as u64,
        );
        if mode == ShutdownMode::Abort {
            // ordering: Release pairs with the batchers' Acquire load
            // (downgraded from SeqCst: the flag is the only atomic in
            // the protocol, so Release/Acquire already gives the only
            // ordering that matters — and `queue.close()` below adds a
            // second happens-before edge through the queue mutex).
            self.abort.store(true, Ordering::Release);
        }
        self.queue.close();
        // Stop the monitor BEFORE joining batchers: a supervisor that
        // kept running could respawn a shard the drain is tearing down.
        self.supervisor.stop_and_join();
        self.supervisor.join_batchers();
        // Backoff-parked retries: the queue is closed, so each fails
        // with the engine fault that caused it — never silently lost.
        self.supervisor.final_flush();
        // Tickets a dead shard's registry still holds (breaker open, no
        // live generation to resolve them).
        self.supervisor.fail_orphans();
        // Requests still queued with no batcher left to pop them — only
        // possible when every shard died (breaker open on a one-shard
        // server). Fail them as aborted-by-shutdown, attributed to
        // shard 0 for lack of a better owner.
        while let Some(r) = self.queue.try_pop() {
            let shard = self.metrics.shard(0);
            shard.aborted.inc();
            shard.precision(r.precision).aborted.inc();
            shard.window_aborted(r.precision);
            r.cell.complete(Err(ServeError::Aborted));
        }
        let shards = self.shards;
        let precisions = Precision::ALL
            .iter()
            .map(|&p| {
                let mut dp = DrainPrecision {
                    precision: p.label(),
                    completed: 0,
                    failed: 0,
                    aborted: 0,
                    expired: 0,
                    cancelled: 0,
                };
                for i in 0..shards {
                    let pm = self.metrics.shard(i).precision(p);
                    dp.completed += pm.completed.get();
                    dp.failed += pm.failed.get();
                    dp.aborted += pm.aborted.get();
                    dp.expired += pm.expired.get();
                    dp.cancelled += pm.cancelled.get();
                }
                dp
            })
            .collect();
        let report = DrainReport {
            mode,
            completed: self.metrics.completed(),
            aborted: self.metrics.aborted(),
            failed: self.metrics.failed(),
            expired: self.metrics.expired(),
            cancelled: self.metrics.cancelled(),
            rejected_at_shutdown: self.metrics.rejected_shutdown.get(),
            precisions,
            spans: self.recorder.spans(),
            wall: start.elapsed(),
        };
        self.metrics.events().emit(
            EventCode::DrainEnd,
            if report.has_failures() {
                Severity::Warn
            } else {
                Severity::Info
            },
            mode_code,
            report.failed,
        );
        self.incidents.on_drain(&report);
        report
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.finished {
            let _ = self.shutdown_inner(ShutdownMode::Drain);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnn_nn::models;
    use pcnn_runtime::compile::compile_dense;
    use pcnn_tensor::Tensor;

    fn tiny_server(config: ServeConfig) -> Server {
        let engine = Engine::new(compile_dense(&models::tiny_cnn(3, 4, 1)), 2);
        Server::start(engine, config)
    }

    #[test]
    fn submit_wait_roundtrip_matches_direct_inference() {
        let server = tiny_server(ServeConfig::default());
        let x = Tensor::ones(&[1, 3, 8, 8]);
        let want = server.engine().infer(&x);
        let got = server.submit(x).expect("admitted").wait().expect("served");
        pcnn_tensor::assert_slices_close(got.as_slice(), want.as_slice(), 1e-6);
        let snap = server.metrics().snapshot();
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.submitted, 1);
        assert!(snap.latency_p50 > Duration::ZERO);
    }

    #[test]
    fn bad_shapes_are_rejected_at_admission() {
        let server = tiny_server(ServeConfig {
            input_chw: Some([3, 8, 8]),
            ..ServeConfig::default()
        });
        assert!(matches!(
            server.submit(Tensor::ones(&[2, 3, 8, 8])),
            Err(ServeError::BadInput(_))
        ));
        assert!(matches!(
            server.submit(Tensor::ones(&[1, 3, 4, 4])),
            Err(ServeError::BadInput(_))
        ));
        assert!(server.submit(Tensor::ones(&[1, 3, 8, 8])).is_ok());
    }

    #[test]
    fn mixed_shapes_without_pinning_are_served_correctly() {
        // No input_chw: the batcher must split batches on shape changes.
        let server = tiny_server(ServeConfig {
            max_wait: Duration::from_millis(20),
            ..ServeConfig::default()
        });
        let a = Tensor::ones(&[1, 3, 8, 8]);
        let b = Tensor::full(&[1, 3, 10, 10], 0.5);
        let want_a = server.engine().infer(&a);
        let want_b = server.engine().infer(&b);
        let tickets: Vec<Ticket> = vec![
            server.submit(a.clone()).unwrap(),
            server.submit(b.clone()).unwrap(),
            server.submit(a).unwrap(),
            server.submit(b).unwrap(),
        ];
        let outs: Vec<Tensor> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        pcnn_tensor::assert_slices_close(outs[0].as_slice(), want_a.as_slice(), 1e-6);
        pcnn_tensor::assert_slices_close(outs[1].as_slice(), want_b.as_slice(), 1e-6);
        pcnn_tensor::assert_slices_close(outs[2].as_slice(), want_a.as_slice(), 1e-6);
        pcnn_tensor::assert_slices_close(outs[3].as_slice(), want_b.as_slice(), 1e-6);
    }

    #[test]
    fn shutdown_drain_serves_everything_admitted() {
        let server = tiny_server(ServeConfig {
            max_wait: Duration::from_millis(50),
            max_batch: 64,
            ..ServeConfig::default()
        });
        let tickets: Vec<Ticket> = (0..10)
            .map(|_| server.submit(Tensor::ones(&[1, 3, 8, 8])).unwrap())
            .collect();
        let report = server.shutdown(ShutdownMode::Drain);
        assert_eq!(report.completed, 10);
        assert_eq!(report.aborted, 0);
        for t in tickets {
            assert!(t.wait().is_ok());
        }
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let server = tiny_server(ServeConfig::default());
        let engine_probe = server.submit(Tensor::ones(&[1, 3, 8, 8])).unwrap();
        engine_probe.wait().unwrap();
        // Drop performs a drain shutdown; a second server proves the
        // explicit path too.
        let server2 = tiny_server(ServeConfig::default());
        server2.queue.close();
        assert!(matches!(
            server2.submit(Tensor::ones(&[1, 3, 8, 8])),
            Err(ServeError::ShuttingDown)
        ));
        assert_eq!(server2.metrics().snapshot().rejected_shutdown, 1);
    }

    #[test]
    fn abort_shutdown_fails_queued_requests() {
        // Account for every admitted request: served or aborted, none
        // lost, regardless of how far the batcher got.
        let server = tiny_server(ServeConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            ..ServeConfig::default()
        });
        let tickets: Vec<Ticket> = (0..32)
            .map(|_| server.submit(Tensor::ones(&[1, 3, 8, 8])).unwrap())
            .collect();
        let report = server.shutdown(ShutdownMode::Abort);
        assert_eq!(report.completed + report.aborted, 32);
        let mut served = 0u64;
        let mut aborted = 0u64;
        for t in tickets {
            match t.wait() {
                Ok(_) => served += 1,
                Err(ServeError::Aborted) => aborted += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(served, report.completed);
        assert_eq!(aborted, report.aborted);
    }

    #[test]
    fn sharded_server_partitions_engine_and_serves_correctly() {
        let engine = Engine::new(compile_dense(&models::tiny_cnn(3, 4, 1)), 4);
        let server = Server::start(
            engine,
            ServeConfig {
                shards: 3,
                max_wait: Duration::from_millis(1),
                ..ServeConfig::default()
            },
        );
        assert_eq!(server.shards(), 3);
        let total_threads: usize = (0..3).map(|i| server.engine_shard(i).threads()).sum();
        assert_eq!(total_threads, 4, "worker budget partitions, not grows");
        let x = Tensor::ones(&[1, 3, 8, 8]);
        let want = server.engine().infer(&x);
        let tickets: Vec<Ticket> = (0..24)
            .map(|_| server.submit(x.clone()).expect("admitted"))
            .collect();
        for t in tickets {
            let got = t.wait().expect("served");
            pcnn_tensor::assert_slices_close(got.as_slice(), want.as_slice(), 1e-6);
        }
        let snap = server.metrics().snapshot();
        assert_eq!(snap.completed, 24);
        assert_eq!(snap.shards.len(), 3);
        assert_eq!(
            snap.shards.iter().map(|s| s.completed).sum::<u64>(),
            24,
            "per-shard counts roll up to the merged view"
        );
        let report = server.shutdown(ShutdownMode::Drain);
        assert_eq!(report.completed, 24);
    }

    #[test]
    fn auto_shards_resolve_against_engine_and_parallelism() {
        assert_eq!(resolve_shards(1, 8), 1);
        assert_eq!(resolve_shards(5, 2), 5, "explicit counts are honoured");
        let auto = resolve_shards(0, 2);
        assert!((1..=2).contains(&auto), "auto is capped by engine workers");
        assert_eq!(resolve_shards(0, 1), 1);
        // Auto on a real server: it must start and serve.
        let engine = Engine::new(compile_dense(&models::tiny_cnn(3, 4, 1)), 2);
        let server = Server::start(
            engine,
            ServeConfig {
                shards: 0,
                ..ServeConfig::default()
            },
        );
        assert!(server.shards() >= 1);
        let out = server
            .submit(Tensor::ones(&[1, 3, 8, 8]))
            .expect("admitted")
            .wait()
            .expect("served");
        assert_eq!(out.shape(), &[1, 3]);
    }

    /// A server over a dual-precision graph: mixed f32/int8 submissions
    /// all complete, and the telemetry labels them by precision.
    #[test]
    fn per_request_precision_mixes_and_labels_telemetry() {
        use pcnn_runtime::QuantOptions;
        let graph = compile_dense(&models::tiny_cnn(3, 4, 1)).with_int8(&QuantOptions::default());
        let server = Server::start(
            Engine::new(graph, 2),
            ServeConfig {
                max_wait: Duration::from_millis(1),
                ..ServeConfig::default()
            },
        );
        let x = Tensor::ones(&[1, 3, 8, 8]);
        let mut tickets = Vec::new();
        for i in 0..12 {
            let p = if i % 3 == 0 {
                Precision::Int8
            } else {
                Precision::F32
            };
            tickets.push((
                p,
                server.submit_with(x.clone(), Priority::Normal, p).unwrap(),
            ));
        }
        for (_, t) in tickets {
            t.wait().expect("served");
        }
        let snap = server.metrics().snapshot();
        assert_eq!(snap.completed, 12);
        assert_eq!(snap.precisions.len(), 2);
        let f32s = &snap.precisions[Precision::F32.index()];
        let int8s = &snap.precisions[Precision::Int8.index()];
        assert_eq!(f32s.precision, "f32");
        assert_eq!(int8s.precision, "int8");
        assert_eq!(f32s.completed, 8);
        assert_eq!(int8s.completed, 4);
        assert!(int8s.batches > 0);
        let json = snap.to_json();
        assert!(json.contains("\"precision\":\"int8\""));
        assert!(json.contains("\"precision\":\"f32\""));
        let rendered = format!("{snap}");
        assert!(rendered.contains("[int8]"));
    }

    /// Requesting int8 on an engine compiled without the lowering fails
    /// synchronously — per request with `PrecisionUnavailable`, and at
    /// startup with a panic when it's the server default.
    #[test]
    fn unavailable_precision_is_rejected_at_submit() {
        let server = tiny_server(ServeConfig::default());
        assert!(matches!(
            server.submit_with(
                Tensor::ones(&[1, 3, 8, 8]),
                Priority::Normal,
                Precision::Int8
            ),
            Err(ServeError::PrecisionUnavailable)
        ));
        assert_eq!(server.metrics().snapshot().submitted, 0);
    }

    #[test]
    #[should_panic(expected = "lacks the int8 lowering")]
    fn int8_default_without_lowering_panics_at_start() {
        let engine = Engine::new(compile_dense(&models::tiny_cnn(3, 4, 1)), 2);
        let _ = Server::start(
            engine,
            ServeConfig {
                precision: Precision::Int8,
                ..ServeConfig::default()
            },
        );
    }

    #[test]
    fn high_priority_jumps_the_queue() {
        // With max_batch 1 the queue backs up behind the first few
        // dispatches; a High submission made after 16 Normal ones must
        // complete before the queued Normal tail. Completion order is
        // observed by polling every ticket and recording readiness.
        //
        // The High request can lose only to Normals already dispatched
        // or in flight when it was admitted (in-flight cap is
        // threads + 1, plus one batch being coalesced), never to the
        // whole Normal queue. How many Normals the batcher pops before
        // the High push lands is a race against the submit loop, and
        // under full-suite CPU contention the scheduler can stall the
        // submitting thread long enough to inflate it past the bound —
        // so retry the race a few times and require the strict bound
        // to hold at least once.
        let mut last = (0, Vec::new());
        for _ in 0..5 {
            let server = tiny_server(ServeConfig {
                max_batch: 1,
                max_wait: Duration::ZERO,
                queue_capacity: 64,
                ..ServeConfig::default()
            });
            let normals: Vec<Ticket> = (0..16)
                .map(|_| server.submit(Tensor::ones(&[1, 3, 8, 8])).unwrap())
                .collect();
            let high = server
                .submit_with_priority(Tensor::ones(&[1, 3, 8, 8]), Priority::High)
                .unwrap();
            // Index 16 is the High ticket.
            let mut pending: Vec<(usize, Ticket)> = normals.into_iter().enumerate().collect();
            pending.push((16, high));
            let mut completion_order = Vec::with_capacity(17);
            while !pending.is_empty() {
                pending.retain(|(idx, t)| match t.try_wait() {
                    Some(result) => {
                        result.expect("served");
                        completion_order.push(*idx);
                        false
                    }
                    None => true,
                });
                std::thread::sleep(Duration::from_micros(200));
            }
            let high_pos = completion_order
                .iter()
                .position(|&idx| idx == 16)
                .expect("high ticket completed");
            if high_pos < 8 {
                return;
            }
            last = (high_pos, completion_order);
        }
        panic!("High completed at position {} of {:?}", last.0, last.1);
    }
}
