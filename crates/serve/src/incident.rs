//! The black-box incident recorder: when the server crosses into a
//! failure mode, capture *everything diagnosable* at that instant —
//! before the windows roll, the rings overwrite, and the evidence is
//! gone.
//!
//! A [`DiagnosticSnapshot`] is the union of every observability tier
//! the stack has: build info, the effective [`crate::ServeConfig`],
//! the full telemetry snapshot (counters, histograms, rolling
//! windows), the [`HealthReport`] that pulled the trigger, a
//! span-driven [`AttributionReport`], the recent span and event tails,
//! and (when profiling is on) the engine's [`ExecProfile`]. The
//! [`IncidentRecorder`] captures one automatically on:
//!
//! * a health transition **into** `Degraded` or `Overloaded`
//!   (recoveries are journal events, not incidents),
//! * the **first** `EngineFault` a server ever serves,
//! * every supervisor shard restart (rate-limited by the cooldown, so
//!   a crash-loop produces one report, not one per respawn), and
//! * a drain that finishes with failures
//!   ([`DrainReport::has_failures`]).
//!
//! Captures are expensive relative to the datapath (they sort span
//! dumps and merge histograms), so a **cooldown** turns a trigger
//! storm — the queue-full/shed/degrade avalanche of one overload —
//! into exactly one report; suppressed triggers are counted, never
//! recorded. Reports land in a small in-memory ring (newest last) and,
//! when `PCNN_INCIDENT_DIR` is set in the server's environment at
//! start, are also written there as standalone JSON files,
//! best-effort: persistence failures never propagate into serving.
//!
//! The same snapshot is available on demand — without a trigger,
//! without the cooldown, and without occupying the ring — via
//! `Server::diagnostics()`, the one-call "what is going on right now"
//! dump.

use crate::attribution::AttributionReport;
use crate::events::RecordedEvent;
use crate::health::{BurnWindow, HealthReport, HealthState};
use crate::metrics::{ServerMetrics, TelemetrySnapshot};
use crate::shutdown::DrainReport;
use crate::trace::{FlightRecorder, RecordedSpan};
use crate::ServeConfig;
use pcnn_runtime::{ExecProfile, ExecProfiler};
use pcnn_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use pcnn_sync::{Arc, Mutex};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::time::Duration;

/// Incidents retained in memory; older reports are evicted.
const INCIDENT_RING_CAPACITY: usize = 8;
/// Newest spans carried inside a snapshot (the full dump stays in the
/// flight recorder).
const SPAN_TAIL: usize = 32;
/// Newest journal events carried inside a snapshot.
const EVENT_TAIL: usize = 32;
/// Default spacing between automatic captures.
const DEFAULT_COOLDOWN: Duration = Duration::from_secs(5);

/// Why a snapshot was captured. Labels are stable — they name the
/// persisted files and the JSON `"trigger"` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentTrigger {
    /// Health stepped into `Degraded`.
    HealthDegraded,
    /// Health stepped into `Overloaded`.
    HealthOverloaded,
    /// The server's first `EngineFault`.
    EngineFault,
    /// The supervisor tore down and respawned a dead shard.
    ShardRestart,
    /// Shutdown drained with lifetime failures on the books.
    DrainFailures,
    /// Explicit `Server::diagnostics()` call — never stored in the
    /// incident ring.
    OnDemand,
}

impl IncidentTrigger {
    /// The stable snake_case label.
    pub fn label(self) -> &'static str {
        match self {
            IncidentTrigger::HealthDegraded => "health_degraded",
            IncidentTrigger::HealthOverloaded => "health_overloaded",
            IncidentTrigger::EngineFault => "engine_fault",
            IncidentTrigger::ShardRestart => "shard_restart",
            IncidentTrigger::DrainFailures => "drain_failures",
            IncidentTrigger::OnDemand => "on_demand",
        }
    }
}

impl std::fmt::Display for IncidentTrigger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Everything diagnosable about a server at one instant — the payload
/// of an incident and of `Server::diagnostics()`.
#[derive(Debug, Clone)]
pub struct DiagnosticSnapshot {
    /// Why the snapshot was captured.
    pub trigger: IncidentTrigger,
    /// Nanoseconds on the metrics' epoch clock at capture.
    pub captured_at_ns: u64,
    /// Crate version (`pcnn_build_info`'s `version` label).
    pub version: &'static str,
    /// Active SIMD dispatch level.
    pub simd: &'static str,
    /// Engine shards serving the queue.
    pub shards: usize,
    /// The server's default execution precision.
    pub precision: &'static str,
    /// The effective [`ServeConfig`], serialized
    /// ([`ServeConfig::to_json`]).
    pub config: String,
    /// Counters, histograms, and rolling windows at capture.
    pub telemetry: TelemetrySnapshot,
    /// The health evaluation that pulled the trigger (the last known
    /// one for fault/drain/on-demand captures).
    pub health: HealthReport,
    /// Latency attribution over the flight recorder's current dump,
    /// with the engine phase cross-reference when profiling is on.
    pub attribution: AttributionReport,
    /// The newest sampled span timelines (up to 32).
    pub spans: Vec<RecordedSpan>,
    /// The newest journal events (up to 32).
    pub events: Vec<RecordedEvent>,
    /// The engine's per-layer profile, when profiling was enabled.
    pub exec_profile: Option<ExecProfile>,
}

impl DiagnosticSnapshot {
    /// The snapshot as one JSON object — the schema documented in the
    /// README's "Forensics & incidents" section.
    pub fn to_json(&self) -> String {
        let spans: Vec<String> = self.spans.iter().map(RecordedSpan::to_json).collect();
        let events: Vec<String> = self.events.iter().map(RecordedEvent::to_json).collect();
        let exec = self
            .exec_profile
            .as_ref()
            .map_or_else(|| "null".to_string(), ExecProfile::to_json);
        format!(
            concat!(
                "{{\"trigger\":\"{}\",\"captured_at_ns\":{},",
                "\"build\":{{\"version\":\"{}\",\"simd\":\"{}\",",
                "\"shards\":{},\"precision\":\"{}\"}},",
                "\"config\":{},\"telemetry\":{},\"health\":{},",
                "\"attribution\":{},\"spans\":[{}],\"events\":[{}],",
                "\"exec_profile\":{}}}"
            ),
            self.trigger.label(),
            self.captured_at_ns,
            self.version,
            self.simd,
            self.shards,
            self.precision,
            self.config,
            self.telemetry.to_json(),
            self.health.to_json(),
            self.attribution.to_json(),
            spans.join(","),
            events.join(","),
            exec,
        )
    }
}

impl std::fmt::Display for DiagnosticSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "incident[{}] at {:.3} ms (v{}, simd {}, {} shard(s), {} default)",
            self.trigger,
            self.captured_at_ns as f64 / 1e6,
            self.version,
            self.simd,
            self.shards,
            self.precision,
        )?;
        writeln!(f, "{}", self.health)?;
        writeln!(f, "{}", self.telemetry)?;
        write!(f, "{}", self.attribution)?;
        writeln!(f, "event tail ({} events):", self.events.len())?;
        for e in &self.events {
            writeln!(f, "  {e}")?;
        }
        write!(
            f,
            "span tail: {} spans{}",
            self.spans.len(),
            if self.exec_profile.is_some() {
                "; exec profile attached"
            } else {
                ""
            }
        )
    }
}

/// Watches for failure-mode triggers and captures
/// [`DiagnosticSnapshot`]s into a bounded ring, with a cooldown so
/// trigger storms produce one report.
pub struct IncidentRecorder {
    config: ServeConfig,
    /// The exec profiler shared by every engine generation of the
    /// server (restarts replace the worker pool, never the profiler),
    /// so captures stay valid across supervisor respawns.
    profiler: Arc<ExecProfiler>,
    shards: usize,
    metrics: Arc<ServerMetrics>,
    recorder: Arc<FlightRecorder>,
    cooldown: Duration,
    /// Epoch-clock stamp of the last capture; 0 = never captured.
    last_capture_ns: AtomicU64,
    /// Whether the first-fault trigger already fired.
    fault_seen: AtomicBool,
    captured: AtomicU64,
    suppressed: AtomicU64,
    /// The most recent health evaluation, for captures whose trigger
    /// carries no report of its own (faults, drains, on-demand).
    last_health: Mutex<Option<HealthReport>>,
    ring: Mutex<VecDeque<Arc<DiagnosticSnapshot>>>,
    /// JSON persistence target (`PCNN_INCIDENT_DIR`), when set.
    dir: Option<PathBuf>,
}

impl IncidentRecorder {
    /// A recorder over a server's observability surfaces. Reads
    /// `PCNN_INCIDENT_DIR` from the environment once, here: persistence
    /// is decided at server start, not per incident.
    pub(crate) fn new(
        config: &ServeConfig,
        profiler: Arc<ExecProfiler>,
        shards: usize,
        metrics: Arc<ServerMetrics>,
        recorder: Arc<FlightRecorder>,
    ) -> IncidentRecorder {
        IncidentRecorder {
            config: config.clone(),
            profiler,
            shards,
            metrics,
            recorder,
            cooldown: DEFAULT_COOLDOWN,
            last_capture_ns: AtomicU64::new(0),
            fault_seen: AtomicBool::new(false),
            captured: AtomicU64::new(0),
            suppressed: AtomicU64::new(0),
            last_health: Mutex::new(None),
            ring: Mutex::new(VecDeque::new()),
            dir: std::env::var_os("PCNN_INCIDENT_DIR").map(PathBuf::from),
        }
    }

    /// Overrides the persistence directory (tests; production uses the
    /// environment variable).
    #[cfg(test)]
    pub(crate) fn set_dir(&mut self, dir: Option<PathBuf>) {
        self.dir = dir;
    }

    /// The spacing automatic captures are rate-limited to.
    pub fn cooldown(&self) -> Duration {
        self.cooldown
    }

    /// Incidents captured since the server started.
    pub fn captured(&self) -> u64 {
        // ordering: statistics read; snapshot readers tolerate lag.
        self.captured.load(Ordering::Relaxed)
    }

    /// Triggers swallowed by the cooldown.
    pub fn suppressed(&self) -> u64 {
        // ordering: statistics read; snapshot readers tolerate lag.
        self.suppressed.load(Ordering::Relaxed)
    }

    /// The retained incidents, oldest first.
    pub fn incidents(&self) -> Vec<Arc<DiagnosticSnapshot>> {
        self.ring
            .lock()
            .expect("incident ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Caches the most recent health evaluation for captures whose
    /// trigger has no report of its own.
    pub(crate) fn note_health(&self, report: &HealthReport) {
        *self.last_health.lock().expect("health cache poisoned") = Some(report.clone());
    }

    /// Health-transition hook: deteriorations into `Degraded` /
    /// `Overloaded` are incidents; recoveries only refresh the cache.
    pub(crate) fn on_health_transition(
        &self,
        from: HealthState,
        to: HealthState,
        report: &HealthReport,
    ) {
        self.note_health(report);
        if to <= from {
            return; // recoveries are journal events, not incidents
        }
        let trigger = match to {
            HealthState::Degraded => IncidentTrigger::HealthDegraded,
            HealthState::Overloaded => IncidentTrigger::HealthOverloaded,
            HealthState::Healthy => return,
        };
        self.record(trigger, report.clone());
    }

    /// Engine-fault hook: the **first** fault a server serves is an
    /// incident; later ones are (rate-limited) journal events only.
    pub(crate) fn on_engine_fault(&self) {
        // ordering: the swap's atomicity elects exactly one first-fault
        // capturer; nothing else is published through the flag.
        if self.fault_seen.swap(true, Ordering::Relaxed) {
            return;
        }
        self.record(IncidentTrigger::EngineFault, self.health_or_default());
    }

    /// Shard-restart hook: every supervisor respawn wants its forensic
    /// context, but a crash-loop must not flood the ring — the regular
    /// cooldown coalesces the storm into one report.
    pub(crate) fn on_shard_restart(&self) {
        self.record(IncidentTrigger::ShardRestart, self.health_or_default());
    }

    /// Drain hook: a shutdown that finishes with failures on the books
    /// is the last chance to capture why.
    pub(crate) fn on_drain(&self, report: &DrainReport) {
        if !report.has_failures() {
            return;
        }
        self.record(IncidentTrigger::DrainFailures, self.health_or_default());
    }

    /// The on-demand snapshot: no trigger, no cooldown, not stored.
    pub fn diagnostics(&self) -> DiagnosticSnapshot {
        self.build(IncidentTrigger::OnDemand, self.health_or_default())
    }

    fn health_or_default(&self) -> HealthReport {
        self.last_health
            .lock()
            .expect("health cache poisoned")
            .clone()
            .unwrap_or_else(|| self.empty_health())
    }

    /// A structurally complete report for captures that fire before any
    /// health evaluation ran (e.g. a fault on the very first batch).
    fn empty_health(&self) -> HealthReport {
        let empty = |window: Duration| BurnWindow {
            window,
            burn: 0.0,
            attempts: 0,
            error_rate: 0.0,
            slow_fraction: 0.0,
        };
        HealthReport {
            state: HealthState::Healthy,
            fast: empty(self.config.slo.fast_window),
            slow: empty(self.config.slo.slow_window),
            transitions: 0,
            shed: self.metrics.shed.get(),
        }
    }

    /// Claims the cooldown slot: at most one automatic capture per
    /// [`IncidentRecorder::cooldown`], decided by one CAS so racing
    /// triggers elect a single capturer.
    fn try_claim(&self) -> bool {
        let now = self.metrics.now_ns().max(1);
        let cooldown = self.cooldown.as_nanos().min(u64::MAX as u128) as u64;
        // ordering: the stamp only rate-limits captures — the snapshot
        // a winner builds reads its data through the metrics' and
        // rings' own synchronization, so the whole gate stays relaxed.
        let last = self.last_capture_ns.load(Ordering::Relaxed);
        if last != 0 && now.saturating_sub(last) < cooldown {
            return false;
        }
        // ordering: covered by the gate contract above; losers of the
        // race count as suppressed.
        self.last_capture_ns
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }

    fn record(&self, trigger: IncidentTrigger, health: HealthReport) {
        if !self.try_claim() {
            // ordering: statistics counter; see `suppressed`.
            self.suppressed.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let snap = Arc::new(self.build(trigger, health));
        // ordering: statistics counter; the ring mutex below is what
        // publishes the snapshot itself.
        let n = self.captured.fetch_add(1, Ordering::Relaxed) + 1;
        {
            let mut ring = self.ring.lock().expect("incident ring poisoned");
            if ring.len() == INCIDENT_RING_CAPACITY {
                ring.pop_front();
            }
            ring.push_back(Arc::clone(&snap));
        }
        self.persist(n, &snap);
    }

    /// Best-effort JSON persistence: a missing directory or full disk
    /// must never take down serving, so every error is swallowed.
    fn persist(&self, n: u64, snap: &DiagnosticSnapshot) {
        let Some(dir) = &self.dir else { return };
        let _ = std::fs::create_dir_all(dir);
        let path = dir.join(format!("incident-{:04}-{}.json", n, snap.trigger.label()));
        let _ = std::fs::write(path, snap.to_json());
    }

    /// Assembles the full snapshot from every observability tier.
    fn build(&self, trigger: IncidentTrigger, health: HealthReport) -> DiagnosticSnapshot {
        let spans = self.recorder.spans();
        let mut attribution = AttributionReport::analyze(&spans);
        let exec_profile = self.profiler.snapshot_if_enabled();
        if let Some(profile) = &exec_profile {
            attribution.attach_exec_profile(profile);
        }
        let span_skip = spans.len().saturating_sub(SPAN_TAIL);
        DiagnosticSnapshot {
            trigger,
            captured_at_ns: self.metrics.now_ns(),
            version: env!("CARGO_PKG_VERSION"),
            simd: pcnn_tensor::simd::active().label(),
            shards: self.shards,
            precision: self.config.precision.label(),
            config: self.config.to_json(),
            telemetry: self.metrics.snapshot(),
            health,
            attribution,
            spans: spans[span_skip..].to_vec(),
            events: self.metrics.events().tail(EVENT_TAIL),
            exec_profile,
        }
    }
}

impl std::fmt::Debug for IncidentRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncidentRecorder")
            .field("captured", &self.captured())
            .field("suppressed", &self.suppressed())
            .field("cooldown", &self.cooldown)
            .field("dir", &self.dir)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EventCode, Severity};
    use crate::health::{HealthEngine, SloConfig};
    use crate::shutdown::ShutdownMode;
    use crate::trace::TraceConfig;
    use pcnn_nn::models;
    use pcnn_runtime::compile::compile_dense;
    use pcnn_runtime::{Engine, Precision};

    /// A recorder over freshly built (trafficless) surfaces, plus the
    /// profiler handle it observes.
    fn recorder_with_profiler() -> (IncidentRecorder, Arc<ExecProfiler>) {
        let config = ServeConfig::default();
        let engine = Engine::new(compile_dense(&models::tiny_cnn(3, 4, 1)), 1);
        let profiler = engine.profiler_handle();
        let metrics = Arc::new(ServerMetrics::with_config(1, true, config.events.clone()));
        let recorder = Arc::new(FlightRecorder::new(&TraceConfig::default(), 1));
        let mut r = IncidentRecorder::new(&config, profiler.clone(), 1, metrics, recorder);
        r.set_dir(None); // tests must not inherit PCNN_INCIDENT_DIR
        (r, profiler)
    }

    fn recorder_under_test() -> IncidentRecorder {
        recorder_with_profiler().0
    }

    /// A degraded-state report produced by a real evaluation against
    /// violating traffic.
    fn degraded_report(r: &IncidentRecorder) -> HealthReport {
        let h = HealthEngine::new(SloConfig {
            latency_target: Duration::from_nanos(1),
            min_samples: 5,
            ..SloConfig::default()
        });
        for _ in 0..50 {
            r.metrics
                .shard(0)
                .window_completed(Precision::F32, Duration::from_millis(5));
        }
        h.evaluate_at(&r.metrics, r.metrics.now_ns())
    }

    #[test]
    fn deterioration_captures_once_and_the_cooldown_absorbs_the_storm() {
        let r = recorder_under_test();
        let report = degraded_report(&r);
        assert_eq!(report.state, HealthState::Degraded);
        r.on_health_transition(HealthState::Healthy, HealthState::Degraded, &report);
        assert_eq!(r.captured(), 1);
        // The follow-up Overloaded step lands inside the cooldown.
        r.on_health_transition(HealthState::Degraded, HealthState::Overloaded, &report);
        assert_eq!(r.captured(), 1, "storm coalesced into one report");
        assert_eq!(r.suppressed(), 1);
        // Recoveries never capture, cooldown or not.
        r.on_health_transition(HealthState::Overloaded, HealthState::Degraded, &report);
        assert_eq!(r.captured(), 1);
        assert_eq!(r.suppressed(), 1, "recovery is not even a trigger");
        let incidents = r.incidents();
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].trigger, IncidentTrigger::HealthDegraded);
        assert_eq!(incidents[0].health.state, HealthState::Degraded);
    }

    #[test]
    fn only_the_first_engine_fault_is_an_incident() {
        let r = recorder_under_test();
        r.on_engine_fault();
        r.on_engine_fault();
        r.on_engine_fault();
        assert_eq!(r.captured(), 1);
        assert_eq!(
            r.incidents()[0].trigger,
            IncidentTrigger::EngineFault,
            "fault captures carry the fault trigger"
        );
        assert_eq!(
            r.incidents()[0].health.state,
            HealthState::Healthy,
            "no evaluation yet: the structural default report is used"
        );
    }

    #[test]
    fn drains_capture_only_when_they_failed() {
        let drain = |failed: u64| DrainReport {
            mode: ShutdownMode::Drain,
            completed: 10,
            aborted: 0,
            failed,
            expired: 0,
            cancelled: 0,
            rejected_at_shutdown: 0,
            precisions: Vec::new(),
            spans: Vec::new(),
            wall: Duration::ZERO,
        };
        let clean = recorder_under_test();
        clean.on_drain(&drain(0));
        assert_eq!(clean.captured(), 0);
        let dirty = recorder_under_test();
        dirty.on_drain(&drain(3));
        assert_eq!(dirty.captured(), 1);
        assert_eq!(dirty.incidents()[0].trigger, IncidentTrigger::DrainFailures);
    }

    #[test]
    fn diagnostics_bypasses_cooldown_and_never_occupies_the_ring() {
        let r = recorder_under_test();
        let snap = r.diagnostics();
        assert_eq!(snap.trigger, IncidentTrigger::OnDemand);
        let again = r.diagnostics();
        assert_eq!(again.trigger, IncidentTrigger::OnDemand);
        assert_eq!(r.captured(), 0, "on-demand snapshots are not incidents");
        assert!(r.incidents().is_empty());
    }

    #[test]
    fn snapshot_json_carries_the_documented_schema() {
        let r = recorder_under_test();
        r.metrics
            .events()
            .emit_at(500, EventCode::QueueFull, Severity::Warn, 256, 256);
        let report = degraded_report(&r);
        r.on_health_transition(HealthState::Healthy, HealthState::Degraded, &report);
        let snap = &r.incidents()[0];
        assert!(!snap.events.is_empty(), "event tail rides along");
        let json = snap.to_json();
        for key in [
            "\"trigger\":\"health_degraded\"",
            "\"captured_at_ns\":",
            "\"build\":{\"version\":\"",
            "\"config\":{\"queue_capacity\":256",
            "\"telemetry\":{",
            "\"health\":{\"state\":\"degraded\"",
            "\"attribution\":{\"analyzed\":",
            "\"spans\":[",
            "\"events\":[{\"seq\":1,\"code\":\"queue_full\"",
            "\"exec_profile\":null",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        let depth = json.chars().fold(0i32, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "balanced braces");
        let text = format!("{snap}");
        assert!(text.contains("incident[health_degraded]"));
        // Two events ride along: the seeded queue_full plus the
        // health_transition the evaluation itself journaled.
        assert!(text.contains("event tail (2 events):"));
        assert!(json.contains("\"code\":\"health_transition\""));
    }

    #[test]
    fn enabled_profiler_attaches_the_exec_profile() {
        let (r, profiler) = recorder_with_profiler();
        profiler.set_enabled(true);
        let snap = r.diagnostics();
        assert!(snap.exec_profile.is_some());
        assert!(snap.to_json().contains("\"exec_profile\":{"));
    }

    #[test]
    fn shard_restarts_capture_with_the_restart_trigger_under_cooldown() {
        let r = recorder_under_test();
        r.on_shard_restart();
        r.on_shard_restart();
        r.on_shard_restart();
        assert_eq!(r.captured(), 1, "crash-loop coalesced by the cooldown");
        assert_eq!(r.suppressed(), 2);
        assert_eq!(r.incidents()[0].trigger, IncidentTrigger::ShardRestart);
        assert!(r.incidents()[0]
            .to_json()
            .contains("\"trigger\":\"shard_restart\""));
    }

    #[test]
    fn incident_dir_persists_one_json_file_per_capture() {
        let dir = std::env::temp_dir().join(format!(
            "pcnn-incident-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut r = recorder_under_test();
        r.set_dir(Some(dir.clone()));
        let report = degraded_report(&r);
        r.on_health_transition(HealthState::Healthy, HealthState::Degraded, &report);
        let path = dir.join("incident-0001-health_degraded.json");
        let body = std::fs::read_to_string(&path).expect("incident persisted");
        assert!(body.starts_with("{\"trigger\":\"health_degraded\""));
        assert!(body.ends_with('}'));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
