//! The bounded, two-priority MPMC request queue.
//!
//! Admission control happens here: [`BoundedQueue::try_push`] never
//! blocks and never grows the queue past its capacity — a full queue
//! hands the item straight back ([`PushError::Full`]) so the caller can
//! surface backpressure instead of accumulating unbounded memory and
//! unbounded tail latency. Consumers block on [`BoundedQueue::pop_wait`]
//! with an optional timeout, which is what lets the micro-batcher
//! implement its `max_wait` coalescing deadline.
//!
//! The queue is MPMC on **both** sides: any number of producers push
//! and any number of consumers (one batcher per server shard) block in
//! [`BoundedQueue::pop_wait`] concurrently. The wakeup discipline is
//! written for that: the inner state tracks how many consumers are
//! asleep, a push notifies only when one is, and a consumer that pops
//! an item while more items remain and other consumers still sleep
//! passes the notification on (wakeup chaining). Without the chain, two
//! rapid pushes can land both their `notify_one` calls on the same
//! about-to-wake consumer, stranding an item in the queue while a
//! second consumer sleeps until the next push or close.
//!
//! Closing the queue ([`BoundedQueue::close`]) rejects new pushes but
//! keeps serving pops until the queue is empty — graceful drain is a
//! property of the queue, not a special shutdown code path.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use pcnn_sync::{Arc, Condvar, Mutex};

use crate::events::{EventCode, EventJournal, Severity};

/// Scheduling class of a request. `High` drains strictly before
/// `Normal`; arrival order is preserved within a class (FIFO per
/// priority).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive lane, always popped first.
    High,
    /// The default lane.
    Normal,
}

/// Number of priority lanes.
const LANES: usize = 2;

impl Priority {
    fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
        }
    }
}

/// Why a push was refused. The item comes back to the caller in both
/// cases — the queue never drops silently.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity (backpressure).
    Full(T),
    /// The queue was closed for shutdown.
    Closed(T),
}

/// Outcome of a blocking pop.
#[derive(Debug)]
pub enum Pop<T> {
    /// An item, highest priority lane first, FIFO within the lane.
    Item(T),
    /// The timeout elapsed with the queue still empty.
    TimedOut,
    /// The queue is closed **and** fully drained; no item will ever
    /// arrive again.
    Closed,
}

struct Inner<T> {
    lanes: [VecDeque<T>; LANES],
    len: usize,
    closed: bool,
    /// Consumers currently blocked inside `pop_wait`. Pushes skip the
    /// condvar when nobody sleeps, and poppers use it to decide whether
    /// a chained wakeup is needed.
    waiters: usize,
}

impl<T> Inner<T> {
    fn pop(&mut self) -> Option<T> {
        for lane in &mut self.lanes {
            if let Some(item) = lane.pop_front() {
                self.len -= 1;
                return Some(item);
            }
        }
        None
    }
}

/// A bounded MPMC queue with two FIFO priority lanes.
///
/// # Example
///
/// ```
/// use pcnn_serve::queue::{BoundedQueue, Pop, Priority, PushError};
///
/// let q: BoundedQueue<u32> = BoundedQueue::new(2);
/// q.try_push(1, Priority::Normal).unwrap();
/// q.try_push(2, Priority::High).unwrap();
/// assert!(matches!(q.try_push(3, Priority::Normal), Err(PushError::Full(3))));
/// // High drains before Normal.
/// assert!(matches!(q.pop_wait(None), Pop::Item(2)));
/// assert!(matches!(q.pop_wait(None), Pop::Item(1)));
/// ```
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_empty: Condvar,
    /// Forensics feed: when attached ([`BoundedQueue::set_journal`]),
    /// every full-queue rejection emits a `queue_full` event. The
    /// journal's emit is wait-free, so pushing never blocks on it.
    journal: Option<Arc<EventJournal>>,
    /// Model-check-only fault knob: when set, pops never chain wakeups,
    /// reproducing the pre-waiter-counting discipline whose stranded
    /// wakeup the interleaving tests must rediscover.
    #[cfg(any(pcnn_model_check, feature = "model-check"))]
    buggy_wakeups: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                lanes: [VecDeque::new(), VecDeque::new()],
                len: 0,
                closed: false,
                waiters: 0,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            journal: None,
            #[cfg(any(pcnn_model_check, feature = "model-check"))]
            buggy_wakeups: false,
        }
    }

    /// Model-check-only constructor re-creating the original (buggy)
    /// wakeup discipline: pushes still `notify_one`, but a consumer
    /// that pops while items remain never passes the wakeup on. The
    /// model checker uses this to prove it can rediscover the stranded
    /// wakeup this crate once shipped.
    #[cfg(any(pcnn_model_check, feature = "model-check"))]
    pub fn new_with_wakeup_bug(capacity: usize) -> Self {
        BoundedQueue {
            buggy_wakeups: true,
            ..BoundedQueue::new(capacity)
        }
    }

    #[cfg(any(pcnn_model_check, feature = "model-check"))]
    fn chain_wakeups(&self) -> bool {
        !self.buggy_wakeups
    }

    #[cfg(not(any(pcnn_model_check, feature = "model-check")))]
    fn chain_wakeups(&self) -> bool {
        true
    }

    /// Attaches the structured event journal this queue reports
    /// `queue_full` rejections to. Called before the queue is shared
    /// (the server wires it during construction), hence `&mut self`.
    pub(crate) fn set_journal(&mut self, journal: Arc<EventJournal>) {
        self.journal = Some(journal);
    }

    /// The admission limit.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (all lanes).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").len
    }

    /// Whether the queue holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`BoundedQueue::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue poisoned").closed
    }

    /// Non-blocking admission: enqueues `item` on `priority`'s lane, or
    /// returns it in the error when the queue is full or closed.
    pub fn try_push(&self, item: T, priority: Priority) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.len >= self.capacity {
            if let Some(journal) = &self.journal {
                journal.emit(
                    EventCode::QueueFull,
                    Severity::Warn,
                    inner.len as u64,
                    self.capacity as u64,
                );
            }
            return Err(PushError::Full(item));
        }
        inner.lanes[priority.lane()].push_back(item);
        inner.len += 1;
        let wake = inner.waiters > 0;
        drop(inner);
        if wake {
            self.not_empty.notify_one();
        }
        Ok(())
    }

    /// Pops under the lock, also reporting whether a chained wakeup is
    /// owed: items remain while other consumers still sleep. The chain
    /// is what makes `notify_one` safe with multiple consumers — even
    /// if several push-side notifications collapse onto one waiter,
    /// that waiter re-emits a wakeup for every item it leaves behind.
    /// Callers send the notification **after** dropping the lock (as
    /// `try_push` does), so the woken consumer doesn't immediately
    /// block on the mutex the notifier still holds.
    fn pop_flagged(inner: &mut Inner<T>) -> Option<(T, bool)> {
        let item = inner.pop()?;
        Some((item, inner.len > 0 && inner.waiters > 0))
    }

    /// Non-blocking pop: highest-priority item, or `None` when empty.
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        let (item, notify) = Self::pop_flagged(&mut inner)?;
        drop(inner);
        if notify && self.chain_wakeups() {
            self.not_empty.notify_one();
        }
        Some(item)
    }

    /// Blocking pop. With `timeout == None`, waits until an item
    /// arrives or the queue is closed and drained. With a timeout,
    /// additionally returns [`Pop::TimedOut`] when the deadline passes
    /// with the queue still empty.
    pub fn pop_wait(&self, timeout: Option<Duration>) -> Pop<T> {
        let deadline = timeout.map(|d| Instant::now() + d);
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some((item, notify)) = Self::pop_flagged(&mut inner) {
                drop(inner);
                if notify && self.chain_wakeups() {
                    self.not_empty.notify_one();
                }
                return Pop::Item(item);
            }
            if inner.closed {
                return Pop::Closed;
            }
            match deadline {
                None => {
                    inner.waiters += 1;
                    inner = self.not_empty.wait(inner).expect("queue wait poisoned");
                    inner.waiters -= 1;
                }
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Pop::TimedOut;
                    }
                    inner.waiters += 1;
                    let (guard, _) = self
                        .not_empty
                        .wait_timeout(inner, deadline - now)
                        .expect("queue wait poisoned");
                    inner = guard;
                    inner.waiters -= 1;
                }
            }
        }
    }

    /// Closes the queue: subsequent pushes fail with
    /// [`PushError::Closed`]; pops keep draining what is already queued
    /// and then report [`Pop::Closed`].
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_lane_high_first() {
        let q = BoundedQueue::new(8);
        q.try_push(1, Priority::Normal).unwrap();
        q.try_push(2, Priority::Normal).unwrap();
        q.try_push(10, Priority::High).unwrap();
        q.try_push(11, Priority::High).unwrap();
        let order: Vec<i32> = std::iter::from_fn(|| q.try_pop()).collect();
        assert_eq!(order, vec![10, 11, 1, 2]);
    }

    #[test]
    fn capacity_is_a_hard_limit() {
        let q = BoundedQueue::new(3);
        for i in 0..3 {
            q.try_push(i, Priority::Normal).unwrap();
        }
        assert!(matches!(
            q.try_push(99, Priority::High),
            Err(PushError::Full(99))
        ));
        assert_eq!(q.len(), 3);
        // Popping one frees one admission slot.
        assert!(matches!(q.pop_wait(None), Pop::Item(0)));
        q.try_push(99, Priority::High).unwrap();
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn close_rejects_pushes_but_drains_pops() {
        let q = BoundedQueue::new(4);
        q.try_push(7, Priority::Normal).unwrap();
        q.close();
        assert!(matches!(
            q.try_push(8, Priority::Normal),
            Err(PushError::Closed(8))
        ));
        assert!(matches!(q.pop_wait(None), Pop::Item(7)));
        assert!(matches!(q.pop_wait(None), Pop::Closed));
        assert!(q.try_pop().is_none());
    }

    #[test]
    fn pop_wait_times_out_on_empty() {
        let q: BoundedQueue<u8> = BoundedQueue::new(1);
        let t0 = Instant::now();
        assert!(matches!(
            q.pop_wait(Some(Duration::from_millis(20))),
            Pop::TimedOut
        ));
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let q = Arc::new(BoundedQueue::new(1));
        let q2 = q.clone();
        let popper = std::thread::spawn(move || match q2.pop_wait(None) {
            Pop::Item(v) => v,
            other => panic!("expected item, got {other:?}"),
        });
        std::thread::sleep(Duration::from_millis(10));
        q.try_push(42, Priority::Normal).unwrap();
        assert_eq!(popper.join().expect("popper"), 42);
    }

    /// Multi-consumer wakeup discipline: with several consumers asleep,
    /// a burst of pushes must wake enough of them to drain every item
    /// promptly. Under the old `notify_one`-on-push-only scheme, two
    /// rapid pushes could land both notifications on the same waiter,
    /// stranding an item while another consumer slept — this test then
    /// stalls at the round where it happens and fails on the deadline.
    #[test]
    fn burst_pushes_wake_enough_sleeping_consumers() {
        use std::sync::atomic::{AtomicU64, Ordering};

        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(64));
        let popped = Arc::new(AtomicU64::new(0));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = q.clone();
                let popped = popped.clone();
                std::thread::spawn(move || loop {
                    match q.pop_wait(None) {
                        Pop::Item(_) => {
                            popped.fetch_add(1, Ordering::SeqCst);
                        }
                        Pop::Closed => return,
                        Pop::TimedOut => unreachable!("untimed pop"),
                    }
                })
            })
            .collect();
        let rounds = 300u64;
        let per_round = 3u64;
        for round in 0..rounds {
            // Let the consumers re-block on the condvar so the burst hits
            // sleeping waiters, which is where notify_one can misfire.
            std::thread::sleep(Duration::from_micros(300));
            for i in 0..per_round {
                q.try_push((round * per_round + i) as u32, Priority::Normal)
                    .expect("capacity is ample");
            }
            let want = (round + 1) * per_round;
            let deadline = Instant::now() + Duration::from_secs(5);
            while popped.load(Ordering::SeqCst) < want {
                assert!(
                    Instant::now() < deadline,
                    "round {round}: item stranded in the queue \
                     ({} of {want} popped, len {})",
                    popped.load(Ordering::SeqCst),
                    q.len()
                );
                std::thread::yield_now();
            }
        }
        q.close();
        for c in consumers {
            c.join().expect("consumer");
        }
        assert_eq!(popped.load(Ordering::SeqCst), rounds * per_round);
        assert!(q.is_empty());
    }

    /// A consumer that pops while more items remain must pass the wakeup
    /// on: two items pushed while two consumers sleep end up one each,
    /// even when both push notifications collapse onto one waiter.
    #[test]
    fn chained_wakeup_drains_backlog_to_second_consumer() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(8));
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    // Each consumer takes exactly one item, then leaves.
                    match q.pop_wait(None) {
                        Pop::Item(v) => v,
                        other => panic!("expected an item, got {other:?}"),
                    }
                })
            })
            .collect();
        // Wait until both consumers are registered as asleep.
        let t0 = Instant::now();
        while q.inner.lock().expect("queue poisoned").waiters < 2 {
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "consumers never slept"
            );
            std::thread::yield_now();
        }
        q.try_push(1, Priority::Normal).unwrap();
        q.try_push(2, Priority::Normal).unwrap();
        let mut got: Vec<u32> = consumers
            .into_iter()
            .map(|c| c.join().expect("consumer"))
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn blocking_pop_wakes_on_close() {
        let q: Arc<BoundedQueue<u8>> = Arc::new(BoundedQueue::new(1));
        let q2 = q.clone();
        let popper = std::thread::spawn(move || matches!(q2.pop_wait(None), Pop::Closed));
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert!(popper.join().expect("popper"));
    }
}
