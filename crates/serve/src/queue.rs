//! The bounded, two-priority MPMC request queue.
//!
//! Admission control happens here: [`BoundedQueue::try_push`] never
//! blocks and never grows the queue past its capacity — a full queue
//! hands the item straight back ([`PushError::Full`]) so the caller can
//! surface backpressure instead of accumulating unbounded memory and
//! unbounded tail latency. Consumers block on [`BoundedQueue::pop_wait`]
//! with an optional timeout, which is what lets the micro-batcher
//! implement its `max_wait` coalescing deadline.
//!
//! Closing the queue ([`BoundedQueue::close`]) rejects new pushes but
//! keeps serving pops until the queue is empty — graceful drain is a
//! property of the queue, not a special shutdown code path.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Scheduling class of a request. `High` drains strictly before
/// `Normal`; arrival order is preserved within a class (FIFO per
/// priority).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive lane, always popped first.
    High,
    /// The default lane.
    Normal,
}

/// Number of priority lanes.
const LANES: usize = 2;

impl Priority {
    fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
        }
    }
}

/// Why a push was refused. The item comes back to the caller in both
/// cases — the queue never drops silently.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity (backpressure).
    Full(T),
    /// The queue was closed for shutdown.
    Closed(T),
}

/// Outcome of a blocking pop.
#[derive(Debug)]
pub enum Pop<T> {
    /// An item, highest priority lane first, FIFO within the lane.
    Item(T),
    /// The timeout elapsed with the queue still empty.
    TimedOut,
    /// The queue is closed **and** fully drained; no item will ever
    /// arrive again.
    Closed,
}

struct Inner<T> {
    lanes: [VecDeque<T>; LANES],
    len: usize,
    closed: bool,
}

impl<T> Inner<T> {
    fn pop(&mut self) -> Option<T> {
        for lane in &mut self.lanes {
            if let Some(item) = lane.pop_front() {
                self.len -= 1;
                return Some(item);
            }
        }
        None
    }
}

/// A bounded MPMC queue with two FIFO priority lanes.
///
/// # Example
///
/// ```
/// use pcnn_serve::queue::{BoundedQueue, Pop, Priority, PushError};
///
/// let q: BoundedQueue<u32> = BoundedQueue::new(2);
/// q.try_push(1, Priority::Normal).unwrap();
/// q.try_push(2, Priority::High).unwrap();
/// assert!(matches!(q.try_push(3, Priority::Normal), Err(PushError::Full(3))));
/// // High drains before Normal.
/// assert!(matches!(q.pop_wait(None), Pop::Item(2)));
/// assert!(matches!(q.pop_wait(None), Pop::Item(1)));
/// ```
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                lanes: [VecDeque::new(), VecDeque::new()],
                len: 0,
                closed: false,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
        }
    }

    /// The admission limit.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (all lanes).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").len
    }

    /// Whether the queue holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`BoundedQueue::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue poisoned").closed
    }

    /// Non-blocking admission: enqueues `item` on `priority`'s lane, or
    /// returns it in the error when the queue is full or closed.
    pub fn try_push(&self, item: T, priority: Priority) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.len >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.lanes[priority.lane()].push_back(item);
        inner.len += 1;
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Non-blocking pop: highest-priority item, or `None` when empty.
    pub fn try_pop(&self) -> Option<T> {
        self.inner.lock().expect("queue poisoned").pop()
    }

    /// Blocking pop. With `timeout == None`, waits until an item
    /// arrives or the queue is closed and drained. With a timeout,
    /// additionally returns [`Pop::TimedOut`] when the deadline passes
    /// with the queue still empty.
    pub fn pop_wait(&self, timeout: Option<Duration>) -> Pop<T> {
        let deadline = timeout.map(|d| Instant::now() + d);
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.pop() {
                return Pop::Item(item);
            }
            if inner.closed {
                return Pop::Closed;
            }
            match deadline {
                None => {
                    inner = self.not_empty.wait(inner).expect("queue wait poisoned");
                }
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Pop::TimedOut;
                    }
                    let (guard, _) = self
                        .not_empty
                        .wait_timeout(inner, deadline - now)
                        .expect("queue wait poisoned");
                    inner = guard;
                }
            }
        }
    }

    /// Closes the queue: subsequent pushes fail with
    /// [`PushError::Closed`]; pops keep draining what is already queued
    /// and then report [`Pop::Closed`].
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_lane_high_first() {
        let q = BoundedQueue::new(8);
        q.try_push(1, Priority::Normal).unwrap();
        q.try_push(2, Priority::Normal).unwrap();
        q.try_push(10, Priority::High).unwrap();
        q.try_push(11, Priority::High).unwrap();
        let order: Vec<i32> = std::iter::from_fn(|| q.try_pop()).collect();
        assert_eq!(order, vec![10, 11, 1, 2]);
    }

    #[test]
    fn capacity_is_a_hard_limit() {
        let q = BoundedQueue::new(3);
        for i in 0..3 {
            q.try_push(i, Priority::Normal).unwrap();
        }
        assert!(matches!(
            q.try_push(99, Priority::High),
            Err(PushError::Full(99))
        ));
        assert_eq!(q.len(), 3);
        // Popping one frees one admission slot.
        assert!(matches!(q.pop_wait(None), Pop::Item(0)));
        q.try_push(99, Priority::High).unwrap();
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn close_rejects_pushes_but_drains_pops() {
        let q = BoundedQueue::new(4);
        q.try_push(7, Priority::Normal).unwrap();
        q.close();
        assert!(matches!(
            q.try_push(8, Priority::Normal),
            Err(PushError::Closed(8))
        ));
        assert!(matches!(q.pop_wait(None), Pop::Item(7)));
        assert!(matches!(q.pop_wait(None), Pop::Closed));
        assert!(q.try_pop().is_none());
    }

    #[test]
    fn pop_wait_times_out_on_empty() {
        let q: BoundedQueue<u8> = BoundedQueue::new(1);
        let t0 = Instant::now();
        assert!(matches!(
            q.pop_wait(Some(Duration::from_millis(20))),
            Pop::TimedOut
        ));
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let q = Arc::new(BoundedQueue::new(1));
        let q2 = q.clone();
        let popper = std::thread::spawn(move || match q2.pop_wait(None) {
            Pop::Item(v) => v,
            other => panic!("expected item, got {other:?}"),
        });
        std::thread::sleep(Duration::from_millis(10));
        q.try_push(42, Priority::Normal).unwrap();
        assert_eq!(popper.join().expect("popper"), 42);
    }

    #[test]
    fn blocking_pop_wakes_on_close() {
        let q: Arc<BoundedQueue<u8>> = Arc::new(BoundedQueue::new(1));
        let q2 = q.clone();
        let popper = std::thread::spawn(move || matches!(q2.pop_wait(None), Pop::Closed));
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert!(popper.join().expect("popper"));
    }
}
