//! Request-lifecycle tracing: request IDs, span events, and a lock-free
//! per-shard ring-buffer **flight recorder**.
//!
//! Every request admitted by [`crate::Server::submit`] gets a unique ID
//! and ticks the always-on trace counters. One in
//! [`TraceConfig::sample_every`] requests additionally carries an
//! active span through its whole lifecycle — admitted → dequeued →
//! coalesced → dispatched-to-shard → executed → completed/failed/
//! aborted — and publishes a [`RecordedSpan`] into its shard's ring
//! when it resolves. The ring keeps the last K spans per shard, so a
//! postmortem (including an abort drain) can always reconstruct recent
//! timelines: [`crate::Server::flight_recorder`] dumps them as JSON,
//! and [`crate::DrainReport`] carries the final dump out of shutdown.
//!
//! The ring is a seqlock over plain atomic words: writers claim a slot
//! with one `fetch_add`, flip its sequence odd, store the encoded span,
//! and publish by storing the next even sequence; a writer that loses
//! the odd-flip race (a lap collision) drops its span and ticks the
//! drop counter instead of spinning. Readers copy the words and keep
//! the copy only when the sequence was even and unchanged around the
//! read. No locks anywhere, so recording can never stall the batcher
//! or the completion callbacks it instruments.

use pcnn_runtime::Precision;
use pcnn_sync::atomic::{fence, AtomicU64, Ordering};
use pcnn_sync::Arc;
use std::time::Instant;

use crate::events::{EventCode, EventJournal, Severity};

/// Sampling and retention knobs of the flight recorder.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Record the full span of every N-th request: `1` traces every
    /// request, `0` disables span recording entirely. Request IDs and
    /// the trace counters stay on regardless — sampling only gates the
    /// per-request timeline capture.
    pub sample_every: u64,
    /// Spans retained per shard ring; older spans are overwritten.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    /// 1-in-64 sampling into 256-span shard rings: cheap enough to
    /// leave on in production (the serving bench pins the closed-loop
    /// overhead under 2%), deep enough for a useful postmortem.
    fn default() -> Self {
        TraceConfig {
            sample_every: 64,
            ring_capacity: 256,
        }
    }
}

/// How a traced request's lifecycle ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// The ticket resolved with an output tensor.
    Completed,
    /// The engine failed the request ([`crate::ServeError::EngineFault`]),
    /// or its shard died mid-flight ([`crate::ServeError::ShardFailed`]).
    Failed,
    /// An abort shutdown resolved the ticket ([`crate::ServeError::Aborted`]).
    Aborted,
    /// The request's deadline passed before dispatch
    /// ([`crate::ServeError::DeadlineExceeded`]).
    Expired,
    /// The client cancelled the request before dispatch
    /// ([`crate::ServeError::Cancelled`]).
    Cancelled,
}

impl SpanOutcome {
    /// Stable label for JSON and Prometheus output.
    pub fn label(self) -> &'static str {
        match self {
            SpanOutcome::Completed => "completed",
            SpanOutcome::Failed => "failed",
            SpanOutcome::Aborted => "aborted",
            SpanOutcome::Expired => "expired",
            SpanOutcome::Cancelled => "cancelled",
        }
    }

    fn code(self) -> u64 {
        match self {
            SpanOutcome::Completed => 0,
            SpanOutcome::Failed => 1,
            SpanOutcome::Aborted => 2,
            SpanOutcome::Expired => 3,
            SpanOutcome::Cancelled => 4,
        }
    }

    fn from_code(code: u64) -> SpanOutcome {
        match code {
            0 => SpanOutcome::Completed,
            1 => SpanOutcome::Failed,
            3 => SpanOutcome::Expired,
            4 => SpanOutcome::Cancelled,
            _ => SpanOutcome::Aborted,
        }
    }
}

/// One fully resolved request timeline, timestamps in nanoseconds since
/// the recorder's epoch (the server's start).
///
/// Every event is always stamped: an aborted request that never reached
/// the engine carries the abort instant for its dispatch/execute/
/// complete events, so timelines stay complete and monotone in every
/// outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordedSpan {
    /// The request ID handed back on the ticket.
    pub id: u64,
    /// The shard whose batcher dispatched (or aborted) the request.
    pub shard: u32,
    /// The lowering the request executed on.
    pub precision: Precision,
    /// How the lifecycle ended.
    pub outcome: SpanOutcome,
    /// Size of the coalesced batch this request rode in.
    pub batch_len: u32,
    /// Admission: `Server::submit` accepted the request into the queue.
    pub admitted_ns: u64,
    /// A batcher popped the request off the shared queue.
    pub dequeued_ns: u64,
    /// The batch being built around (or including) the request closed.
    pub coalesced_ns: u64,
    /// The batch was handed to the shard's engine.
    pub dispatched_ns: u64,
    /// The engine pass finished.
    pub executed_ns: u64,
    /// The ticket resolved.
    pub completed_ns: u64,
}

/// Number of atomic words one encoded span occupies in a ring slot.
const SPAN_WORDS: usize = 8;

impl RecordedSpan {
    /// Whether the six lifecycle events are in order — the invariant
    /// the span property tests pin across multi-shard contention.
    pub fn is_monotone(&self) -> bool {
        self.admitted_ns <= self.dequeued_ns
            && self.dequeued_ns <= self.coalesced_ns
            && self.coalesced_ns <= self.dispatched_ns
            && self.dispatched_ns <= self.executed_ns
            && self.executed_ns <= self.completed_ns
    }

    /// The span as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"id\":{},\"shard\":{},\"precision\":\"{}\",\"outcome\":\"{}\",",
                "\"batch_len\":{},\"admitted_ns\":{},\"dequeued_ns\":{},",
                "\"coalesced_ns\":{},\"dispatched_ns\":{},\"executed_ns\":{},",
                "\"completed_ns\":{}}}"
            ),
            self.id,
            self.shard,
            self.precision.label(),
            self.outcome.label(),
            self.batch_len,
            self.admitted_ns,
            self.dequeued_ns,
            self.coalesced_ns,
            self.dispatched_ns,
            self.executed_ns,
            self.completed_ns,
        )
    }

    fn encode(&self) -> [u64; SPAN_WORDS] {
        let meta = ((self.shard as u64) << 48)
            | ((self.precision.index() as u64) << 40)
            | (self.outcome.code() << 32)
            | self.batch_len as u64;
        [
            self.id,
            meta,
            self.admitted_ns,
            self.dequeued_ns,
            self.coalesced_ns,
            self.dispatched_ns,
            self.executed_ns,
            self.completed_ns,
        ]
    }

    fn decode(words: &[u64; SPAN_WORDS]) -> RecordedSpan {
        let meta = words[1];
        RecordedSpan {
            id: words[0],
            shard: (meta >> 48) as u32,
            precision: Precision::ALL[((meta >> 40) & 0xff) as usize % 2],
            outcome: SpanOutcome::from_code((meta >> 32) & 0xff),
            batch_len: meta as u32,
            admitted_ns: words[2],
            dequeued_ns: words[3],
            coalesced_ns: words[4],
            dispatched_ns: words[5],
            executed_ns: words[6],
            completed_ns: words[7],
        }
    }
}

/// The pre-dispatch stamps a sampled request carries through the queue
/// and the batcher; the dispatch path fills in the rest and publishes.
#[derive(Debug)]
pub(crate) struct ActiveSpan {
    pub id: u64,
    pub admitted_ns: u64,
    /// Stamped by the first pop off the queue; 0 = not yet dequeued.
    pub dequeued_ns: u64,
}

/// One seqlock slot: an even, nonzero sequence publishes the words.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; SPAN_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// One shard's span ring.
struct ShardRing {
    /// Total slots ever claimed; `head % capacity` is the next slot.
    head: AtomicU64,
    slots: Vec<Slot>,
}

impl ShardRing {
    fn new(capacity: usize) -> ShardRing {
        ShardRing {
            head: AtomicU64::new(0),
            slots: (0..capacity.max(1)).map(|_| Slot::new()).collect(),
        }
    }

    /// Returns `false` when the slot was lost to a lap-racing writer
    /// (the span is dropped rather than ever spinning).
    fn push(&self, span: &RecordedSpan) -> bool {
        // ordering: ticket distribution only — the CAS below is what
        // transfers slot ownership, so the counter itself needs no
        // synchronization.
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let slot = &self.slots[(ticket % cap) as usize];
        let lap = ticket / cap;
        // The slot's sequence after its previous publish (lap L - 1
        // published 2L; a never-written slot holds 0 = lap 0's expected
        // value). Claim it by flipping odd; losing the race means a
        // writer `capacity` spans ahead already owns the slot.
        //
        let expected = 2 * lap;
        // ordering: AcqRel on success — Acquire to see the previous
        // lap's words before overwriting, Release to order our claim
        // after any prior writes. Relaxed on failure: a lost claim
        // touches nothing.
        if slot
            .seq
            .compare_exchange(expected, expected + 1, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return false;
        }
        // ordering: this Release fence pairs with the readers' Acquire
        // fence in `collect`. Without it the relaxed word stores below
        // are not ordered after the odd-sequence claim from the
        // reader's point of view, so a reader could observe fresh words
        // yet still see the old even sequence on its re-check and
        // validate a torn span. (Found by the model checker's seqlock
        // test; the claim CAS's AcqRel does not order *later* relaxed
        // stores for remote observers.)
        fence(Ordering::Release);
        for (w, v) in slot.words.iter().zip(span.encode()) {
            // ordering: plain data words; the surrounding fence/Release
            // seq protocol publishes them, per-word ordering is not
            // needed.
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store(expected + 2, Ordering::Release);
        true
    }

    fn collect(&self, out: &mut Vec<RecordedSpan>) {
        for slot in &self.slots {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                continue; // empty or mid-write
            }
            let mut words = [0u64; SPAN_WORDS];
            for (v, w) in words.iter_mut().zip(&slot.words) {
                // ordering: speculative snapshot; the Acquire fence +
                // sequence re-check below discards it if a writer
                // intervened, so the loads themselves can be relaxed.
                *v = w.load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            // ordering: the fence above pairs with the writer's Release
            // fence/store, so this re-check load needs no ordering of
            // its own — an unchanged even sequence proves the snapshot.
            if slot.seq.load(Ordering::Relaxed) == before {
                out.push(RecordedSpan::decode(&words));
            }
        }
    }
}

/// The per-server flight recorder: request IDs, always-on trace
/// counters, and one span ring per shard.
pub struct FlightRecorder {
    epoch: Instant,
    sample_every: u64,
    next_id: AtomicU64,
    rings: Vec<ShardRing>,
    recorded: AtomicU64,
    dropped: AtomicU64,
    /// Forensics feed: when attached ([`FlightRecorder::attach_journal`])
    /// every lap-race span drop emits a `trace_ring_overwrite` event;
    /// the journal's per-code rate limiter coalesces overwrite storms.
    journal: Option<Arc<EventJournal>>,
}

impl FlightRecorder {
    /// A recorder for `shards` shard rings.
    pub(crate) fn new(config: &TraceConfig, shards: usize) -> FlightRecorder {
        FlightRecorder {
            epoch: Instant::now(),
            sample_every: config.sample_every,
            next_id: AtomicU64::new(0),
            rings: (0..shards.max(1))
                .map(|_| ShardRing::new(config.ring_capacity))
                .collect(),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            journal: None,
        }
    }

    /// Attaches the structured event journal span-ring overwrites are
    /// reported to. Called before the recorder is shared (the server
    /// wires it during construction), hence `&mut self`.
    pub(crate) fn attach_journal(&mut self, journal: Arc<EventJournal>) {
        self.journal = Some(journal);
    }

    /// Assigns the next request ID (IDs start at 1).
    pub(crate) fn begin(&self) -> u64 {
        // ordering: uniqueness comes from the atomic RMW itself; IDs
        // carry no payload to publish.
        self.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Whether request `id` carries a sampled span.
    pub fn is_sampled(&self, id: u64) -> bool {
        self.sample_every > 0 && id.is_multiple_of(self.sample_every)
    }

    /// Nanoseconds since the recorder's epoch — the clock every span
    /// event is stamped on.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Publishes a resolved span into its shard's ring.
    pub(crate) fn record(&self, shard: usize, span: &RecordedSpan) {
        let ring = &self.rings[shard.min(self.rings.len() - 1)];
        // ordering: monotone statistics counters; readers tolerate lag
        // and read them independently of the span data they count.
        if ring.push(span) {
            self.recorded.fetch_add(1, Ordering::Relaxed);
        } else {
            let dropped = self.dropped.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(journal) = &self.journal {
                journal.emit(
                    EventCode::TraceRingOverwrite,
                    Severity::Info,
                    shard as u64,
                    dropped,
                );
            }
        }
    }

    /// The configured 1-in-N sampling rate (0 = spans off).
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Requests assigned an ID so far.
    pub fn requests(&self) -> u64 {
        // ordering: statistics read; staleness is acceptable.
        self.next_id.load(Ordering::Relaxed)
    }

    /// Spans successfully published.
    pub fn spans_recorded(&self) -> u64 {
        // ordering: statistics read; staleness is acceptable.
        self.recorded.load(Ordering::Relaxed)
    }

    /// Spans lost to lap-racing writers (never by blocking).
    pub fn spans_dropped(&self) -> u64 {
        // ordering: statistics read; staleness is acceptable.
        self.dropped.load(Ordering::Relaxed)
    }

    /// The retained spans across every shard ring, sorted by admission
    /// timestamp (ties broken by ID) — the order requests entered the
    /// server, which is what timeline reconstruction and latency
    /// attribution want. Retention is still completion-driven: each
    /// ring holds the last K spans *published* on its shard and
    /// overwrites oldest-publication-first, so after a wrap the
    /// surviving spans are the most recently resolved ones, whose
    /// admission order can differ from their slot order.
    pub fn spans(&self) -> Vec<RecordedSpan> {
        let mut out = Vec::new();
        for ring in &self.rings {
            ring.collect(&mut out);
        }
        out.sort_by_key(|s| (s.admitted_ns, s.id));
        out
    }

    /// The flight-recorder dump as one JSON object.
    pub fn to_json(&self) -> String {
        let spans: Vec<String> = self.spans().iter().map(RecordedSpan::to_json).collect();
        format!(
            concat!(
                "{{\"requests\":{},\"sample_every\":{},\"spans_recorded\":{},",
                "\"spans_dropped\":{},\"spans\":[{}]}}"
            ),
            self.requests(),
            self.sample_every,
            self.spans_recorded(),
            self.spans_dropped(),
            spans.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn span(id: u64, t0: u64) -> RecordedSpan {
        RecordedSpan {
            id,
            shard: 0,
            precision: Precision::F32,
            outcome: SpanOutcome::Completed,
            batch_len: 3,
            admitted_ns: t0,
            dequeued_ns: t0 + 1,
            coalesced_ns: t0 + 2,
            dispatched_ns: t0 + 3,
            executed_ns: t0 + 4,
            completed_ns: t0 + 5,
        }
    }

    #[test]
    fn spans_round_trip_through_the_ring() {
        let rec = FlightRecorder::new(
            &TraceConfig {
                sample_every: 1,
                ring_capacity: 8,
            },
            1,
        );
        for i in 0..5u64 {
            rec.record(0, &span(i + 1, 100 * i));
        }
        let got = rec.spans();
        assert_eq!(got.len(), 5);
        assert_eq!(rec.spans_recorded(), 5);
        assert_eq!(rec.spans_dropped(), 0);
        for (i, s) in got.iter().enumerate() {
            assert_eq!(s.id, i as u64 + 1, "sorted by admission");
            assert_eq!(
                *s,
                span(s.id, 100 * i as u64),
                "fields survive encode/decode"
            );
            assert!(s.is_monotone());
        }
    }

    #[test]
    fn ring_keeps_the_last_k_spans() {
        let rec = FlightRecorder::new(
            &TraceConfig {
                sample_every: 1,
                ring_capacity: 4,
            },
            1,
        );
        for i in 0..10u64 {
            rec.record(0, &span(i + 1, 100 * i));
        }
        let got = rec.spans();
        assert_eq!(got.len(), 4, "capacity bounds retention");
        let ids: Vec<u64> = got.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![7, 8, 9, 10], "the oldest spans were evicted");
    }

    #[test]
    fn wrapped_ring_sorts_by_admission_not_slot_order() {
        let rec = FlightRecorder::new(
            &TraceConfig {
                sample_every: 1,
                ring_capacity: 4,
            },
            1,
        );
        // Publish in *reverse* admission order so that after the ring
        // wraps, slot order disagrees with admission order: spans
        // admitted at t = 900, 800, ..., 100 published in that
        // sequence leave slots holding admissions 500..200 with the
        // oldest publication (t=500) in the lowest slot.
        for i in 0..9u64 {
            rec.record(0, &span(i + 1, 100 * (9 - i)));
        }
        let got = rec.spans();
        assert_eq!(got.len(), 4, "the ring wrapped: publications 1-5 evicted");
        let admitted: Vec<u64> = got.iter().map(|s| s.admitted_ns).collect();
        assert_eq!(admitted, vec![100, 200, 300, 400], "admission order");
        let ids: Vec<u64> = got.iter().map(|s| s.id).collect();
        assert_eq!(
            ids,
            vec![9, 8, 7, 6],
            "the survivors are the last published"
        );
    }

    #[test]
    fn sampling_gates_spans_but_not_ids() {
        let rec = FlightRecorder::new(
            &TraceConfig {
                sample_every: 4,
                ring_capacity: 8,
            },
            1,
        );
        let sampled: Vec<u64> = (0..16)
            .map(|_| rec.begin())
            .filter(|&id| rec.is_sampled(id))
            .collect();
        assert_eq!(rec.requests(), 16, "every request gets an id");
        assert_eq!(sampled, vec![4, 8, 12, 16], "one in four carries a span");
        let off = FlightRecorder::new(
            &TraceConfig {
                sample_every: 0,
                ring_capacity: 8,
            },
            1,
        );
        assert!(!(1..100).any(|id| off.is_sampled(id)), "0 disables spans");
    }

    #[test]
    fn decode_of_a_mixed_outcome_span_is_lossless() {
        let s = RecordedSpan {
            id: u64::MAX / 3,
            shard: 7,
            precision: Precision::Int8,
            outcome: SpanOutcome::Aborted,
            batch_len: u32::MAX,
            admitted_ns: 1,
            dequeued_ns: 2,
            coalesced_ns: 3,
            dispatched_ns: 4,
            executed_ns: 5,
            completed_ns: 6,
        };
        assert_eq!(RecordedSpan::decode(&s.encode()), s);
    }

    #[test]
    fn concurrent_writers_account_for_every_span() {
        let rec = Arc::new(FlightRecorder::new(
            &TraceConfig {
                sample_every: 1,
                ring_capacity: 32,
            },
            2,
        ));
        let writers: Vec<_> = (0..4u64)
            .map(|w| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        rec.record((w % 2) as usize, &span(w * 1000 + i, i));
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().expect("writer");
        }
        assert_eq!(rec.spans_recorded() + rec.spans_dropped(), 2000);
        let spans = rec.spans();
        assert!(spans.len() <= 64, "two rings of 32");
        assert!(spans.iter().all(|s| s.is_monotone()), "no torn reads");
    }

    #[test]
    fn json_dump_is_brace_balanced_and_carries_the_counters() {
        let rec = FlightRecorder::new(&TraceConfig::default(), 2);
        let id = rec.begin();
        let mut s = span(id, 50);
        s.shard = 1;
        rec.record(1, &s);
        let json = rec.to_json();
        assert!(json.contains("\"requests\":1"));
        assert!(json.contains("\"sample_every\":64"));
        assert!(json.contains("\"spans_recorded\":1"));
        assert!(json.contains("\"outcome\":\"completed\""));
        let depth = json.chars().fold(0i32, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "balanced braces");
    }
}

/// Interleaving tests for the span seqlock under the deterministic
/// model checker, including its simulated weak memory: the writer's
/// Release fence between the odd-sequence claim and the word stores is
/// load-bearing (without it a reader can observe fresh words yet
/// re-check against the stale even sequence and validate a torn span —
/// the reduced shape lives in `pcnn-sync`'s self-tests). Compiled only
/// under the `model-check` facade.
#[cfg(all(test, any(pcnn_model_check, feature = "model-check")))]
mod model_tests {
    use super::*;
    use pcnn_sync::model::{check, CheckOptions};
    use pcnn_sync::{thread, Arc};

    fn opts() -> CheckOptions {
        CheckOptions {
            exhaustive_schedules: 2_000,
            random_schedules: 1_000,
            ..CheckOptions::default()
        }
    }

    fn span(id: u64, t0: u64) -> RecordedSpan {
        RecordedSpan {
            id,
            shard: 0,
            precision: Precision::F32,
            outcome: SpanOutcome::Completed,
            batch_len: 3,
            admitted_ns: t0,
            dequeued_ns: t0 + 1,
            coalesced_ns: t0 + 2,
            dispatched_ns: t0 + 3,
            executed_ns: t0 + 4,
            completed_ns: t0 + 5,
        }
    }

    #[test]
    fn seqlock_ring_never_validates_a_torn_span() {
        let report = check("trace-seqlock-ring", opts(), || {
            // One slot, two writers, one concurrent reader: maximum
            // contention on the seq protocol.
            let ring = Arc::new(ShardRing::new(1));
            let a = span(1, 100);
            let b = span(2, 1_000);
            let w1 = {
                let ring = Arc::clone(&ring);
                thread::spawn(move || ring.push(&a))
            };
            let w2 = {
                let ring = Arc::clone(&ring);
                thread::spawn(move || ring.push(&b))
            };
            let reader = {
                let ring = Arc::clone(&ring);
                thread::spawn(move || {
                    let mut out = Vec::new();
                    ring.collect(&mut out);
                    out
                })
            };
            let mid = reader.join().unwrap();
            let published_1 = w1.join().unwrap();
            let published_2 = w2.join().unwrap();
            // Anything the racing reader validated is one of the two
            // spans in full — never a mix of their words.
            for s in &mid {
                assert!(*s == a || *s == b, "reader validated a torn span: {s:?}");
            }
            // The ticket-0 writer's claim always lands; a quiescent
            // collect decodes the last publisher's span intact.
            assert!(published_1 || published_2, "no writer claimed the slot");
            let mut fin = Vec::new();
            ring.collect(&mut fin);
            assert_eq!(fin.len(), 1, "slot published exactly one span");
            assert!(fin[0] == a || fin[0] == b);
        });
        assert!(report.schedules_run > 0);
    }

    #[test]
    fn recorder_counters_match_push_outcomes() {
        let report = check("trace-recorder-counters", opts(), || {
            // Two concurrent records into a single-slot shard: however
            // the lap race resolves, recorded + dropped == 2.
            let rec = Arc::new(FlightRecorder::new(
                &TraceConfig {
                    sample_every: 1,
                    ring_capacity: 1,
                },
                1,
            ));
            let writers: Vec<_> = (0..2u64)
                .map(|i| {
                    let rec = Arc::clone(&rec);
                    thread::spawn(move || rec.record(0, &span(i + 1, 100 * (i + 1))))
                })
                .collect();
            for w in writers {
                w.join().unwrap();
            }
            assert_eq!(rec.spans_recorded() + rec.spans_dropped(), 2);
            assert!(rec.spans_recorded() >= 1, "the first claim always lands");
        });
        assert!(report.schedules_run > 0);
    }
}
