//! Span-driven latency attribution: *where* did the end-to-end time go?
//!
//! The flight recorder ([`crate::trace::FlightRecorder`]) stamps every
//! sampled request at six lifecycle events. This module's analyzer
//! decomposes the gaps between consecutive stamps into five named
//! segments:
//!
//! | segment             | interval                  | owned by            |
//! |---------------------|---------------------------|---------------------|
//! | `queue_wait`        | admitted → dequeued       | shared request queue|
//! | `coalesce`          | dequeued → coalesced      | batch formation     |
//! | `dispatch_wait`     | coalesced → dispatched    | batcher hand-off    |
//! | `execute`           | dispatched → executed     | engine pass         |
//! | `completion_notify` | executed → completed      | ticket resolution   |
//!
//! and reports, per trailing window (1 s / 10 s / 60 s, anchored at the
//! newest completion) and overall: per-segment distributions (exact
//! quantiles — spans are bounded by ring capacity, so the read side can
//! afford to sort), each segment's share of total time, and the
//! **dominant contributor** — the segment with the largest pooled time.
//! A percentile-band breakdown then answers the tail question directly:
//! for the p95–p99 requests specifically, was it queueing or kernels?
//!
//! When an [`ExecProfile`] is attached, the opaque `execute` segment is
//! cross-referenced with the engine's own pad/kernel/epilogue phase
//! split, scaling the mean execute time into engine phases — the bridge
//! between serving-side spans and runtime-side layer profiling.
//!
//! Everything here is read-side analysis over an immutable span dump;
//! the recording path stays wait-free and untouched.

use crate::trace::{RecordedSpan, SpanOutcome};
use crate::window::WINDOWS;
use pcnn_runtime::{ExecProfile, Precision};

/// The five attribution segments, in lifecycle order.
pub const SEGMENTS: [&str; 5] = [
    "queue_wait",
    "coalesce",
    "dispatch_wait",
    "execute",
    "completion_notify",
];

/// The percentile bands of the tail breakdown, in ascending-latency
/// order.
pub const BANDS: [&str; 4] = ["p0-p50", "p50-p95", "p95-p99", "p99-p100"];

/// A span's five segment durations, in [`SEGMENTS`] order. Saturating:
/// a span whose stamps tie (an abort filled the tail events with one
/// instant) contributes zeros, never underflows.
fn segments_of(s: &RecordedSpan) -> [u64; 5] {
    [
        s.dequeued_ns.saturating_sub(s.admitted_ns),
        s.coalesced_ns.saturating_sub(s.dequeued_ns),
        s.dispatched_ns.saturating_sub(s.coalesced_ns),
        s.executed_ns.saturating_sub(s.dispatched_ns),
        s.completed_ns.saturating_sub(s.executed_ns),
    ]
}

fn e2e_of(s: &RecordedSpan) -> u64 {
    s.completed_ns.saturating_sub(s.admitted_ns)
}

/// Exact quantile over an ascending-sorted slice (nearest-rank).
fn quantile_sorted(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (sorted.len() as f64 * q).ceil() as usize;
    sorted[idx.saturating_sub(1).min(sorted.len() - 1)]
}

/// One segment's (or the e2e total's) distribution within a window.
#[derive(Debug, Clone)]
pub struct SegmentStats {
    /// Segment name from [`SEGMENTS`], or `"e2e"` for the total.
    pub name: &'static str,
    /// Pooled nanoseconds across the window's spans.
    pub total_ns: u64,
    /// Mean nanoseconds per span.
    pub mean_ns: f64,
    /// Exact median.
    pub p50_ns: u64,
    /// Exact 95th percentile.
    pub p95_ns: u64,
    /// Exact 99th percentile.
    pub p99_ns: u64,
    /// This segment's share of the window's pooled e2e time
    /// (1.0 for the `"e2e"` row itself).
    pub share: f64,
}

impl SegmentStats {
    fn compute(name: &'static str, mut samples: Vec<u64>, e2e_total: u64) -> SegmentStats {
        samples.sort_unstable();
        let total: u64 = samples.iter().sum();
        let mean = if samples.is_empty() {
            0.0
        } else {
            total as f64 / samples.len() as f64
        };
        SegmentStats {
            name,
            total_ns: total,
            mean_ns: mean,
            p50_ns: quantile_sorted(&samples, 0.50),
            p95_ns: quantile_sorted(&samples, 0.95),
            p99_ns: quantile_sorted(&samples, 0.99),
            share: if e2e_total == 0 {
                0.0
            } else {
                total as f64 / e2e_total as f64
            },
        }
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":\"{}\",\"total_ns\":{},\"mean_ns\":{:.1},",
                "\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"share\":{:.4}}}"
            ),
            self.name,
            self.total_ns,
            self.mean_ns,
            self.p50_ns,
            self.p95_ns,
            self.p99_ns,
            self.share,
        )
    }
}

/// Attribution over one trailing window (or the whole dump).
#[derive(Debug, Clone)]
pub struct WindowAttribution {
    /// `"1s"` / `"10s"` / `"60s"` / `"overall"`.
    pub label: String,
    /// Completed spans inside the window.
    pub spans: usize,
    /// The end-to-end distribution.
    pub e2e: SegmentStats,
    /// Per-segment distributions, in [`SEGMENTS`] order.
    pub segments: Vec<SegmentStats>,
    /// The segment with the largest pooled time — the window's answer
    /// to "where is latency coming from".
    pub dominant: &'static str,
}

impl WindowAttribution {
    fn analyze(label: String, spans: &[&RecordedSpan]) -> WindowAttribution {
        let e2e_samples: Vec<u64> = spans.iter().map(|s| e2e_of(s)).collect();
        let e2e_total: u64 = e2e_samples.iter().sum();
        let e2e = SegmentStats::compute("e2e", e2e_samples, e2e_total);
        let segments: Vec<SegmentStats> = (0..SEGMENTS.len())
            .map(|i| {
                let samples: Vec<u64> = spans.iter().map(|s| segments_of(s)[i]).collect();
                SegmentStats::compute(SEGMENTS[i], samples, e2e_total)
            })
            .collect();
        let dominant = segments
            .iter()
            .max_by_key(|s| s.total_ns)
            .map_or(SEGMENTS[0], |s| s.name);
        WindowAttribution {
            label,
            spans: spans.len(),
            e2e,
            segments,
            dominant,
        }
    }

    fn to_json(&self) -> String {
        let segments: Vec<String> = self.segments.iter().map(SegmentStats::to_json).collect();
        format!(
            "{{\"label\":\"{}\",\"spans\":{},\"dominant\":\"{}\",\"e2e\":{},\"segments\":[{}]}}",
            self.label,
            self.spans,
            self.dominant,
            self.e2e.to_json(),
            segments.join(","),
        )
    }
}

/// Mean segment breakdown of one latency percentile band.
#[derive(Debug, Clone)]
pub struct BandAttribution {
    /// Band name from [`BANDS`].
    pub band: &'static str,
    /// Spans that fell in the band.
    pub spans: usize,
    /// Mean end-to-end nanoseconds in the band.
    pub mean_e2e_ns: f64,
    /// Mean nanoseconds per segment, in [`SEGMENTS`] order.
    pub mean_segment_ns: [f64; 5],
    /// The segment with the largest mean in this band.
    pub dominant: &'static str,
}

impl BandAttribution {
    fn to_json(&self) -> String {
        let segs: Vec<String> = SEGMENTS
            .iter()
            .zip(self.mean_segment_ns)
            .map(|(name, ns)| format!("\"{name}\":{ns:.1}"))
            .collect();
        format!(
            concat!(
                "{{\"band\":\"{}\",\"spans\":{},\"mean_e2e_ns\":{:.1},",
                "\"dominant\":\"{}\",\"mean_segment_ns\":{{{}}}}}"
            ),
            self.band,
            self.spans,
            self.mean_e2e_ns,
            self.dominant,
            segs.join(","),
        )
    }
}

/// The `execute` segment cross-referenced with one lowering's engine
/// phase split: the mean execute time scaled by the profiler's
/// pad/kernel/epilogue shares.
#[derive(Debug, Clone)]
pub struct ExecPhaseShare {
    /// Lowering label (`"f32"` / `"int8"`).
    pub precision: &'static str,
    /// Engine-side phase fractions, summing to 1.
    pub pad_fraction: f64,
    /// See `pad_fraction`.
    pub kernel_fraction: f64,
    /// See `pad_fraction`.
    pub epilogue_fraction: f64,
    /// The overall mean execute segment, split by those fractions, in
    /// `(pad, kernel, epilogue)` order.
    pub execute_mean_ns: (f64, f64, f64),
}

impl ExecPhaseShare {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"precision\":\"{}\",\"pad_fraction\":{:.4},",
                "\"kernel_fraction\":{:.4},\"epilogue_fraction\":{:.4},",
                "\"execute_mean_ns\":{{\"pad\":{:.1},\"kernel\":{:.1},\"epilogue\":{:.1}}}}}"
            ),
            self.precision,
            self.pad_fraction,
            self.kernel_fraction,
            self.epilogue_fraction,
            self.execute_mean_ns.0,
            self.execute_mean_ns.1,
            self.execute_mean_ns.2,
        )
    }
}

/// The full latency-attribution report over a flight-recorder dump.
#[derive(Debug, Clone)]
pub struct AttributionReport {
    /// Completed spans analyzed.
    pub analyzed: usize,
    /// Failed/aborted spans excluded (their timelines measure shutdown,
    /// not serving latency).
    pub skipped: usize,
    /// One entry per trailing window in [`WINDOWS`] order (windows are
    /// anchored at the newest completion), plus a final `"overall"`.
    pub windows: Vec<WindowAttribution>,
    /// Non-empty percentile bands over the whole dump, ascending.
    pub bands: Vec<BandAttribution>,
    /// Engine phase cross-reference; empty until
    /// [`AttributionReport::attach_exec_profile`].
    pub exec_phases: Vec<ExecPhaseShare>,
}

impl AttributionReport {
    /// Analyzes a span dump (as returned by
    /// [`crate::trace::FlightRecorder::spans`]). Only completed spans
    /// contribute; windows are anchored at the newest completion
    /// timestamp so the report is deterministic for a fixed dump.
    pub fn analyze(spans: &[RecordedSpan]) -> AttributionReport {
        let completed: Vec<&RecordedSpan> = spans
            .iter()
            .filter(|s| s.outcome == SpanOutcome::Completed)
            .collect();
        let skipped = spans.len() - completed.len();
        let anchor = completed.iter().map(|s| s.completed_ns).max().unwrap_or(0);

        let mut windows = Vec::with_capacity(WINDOWS.len() + 1);
        for w in WINDOWS {
            let w_ns = w.as_nanos().min(u64::MAX as u128) as u64;
            let inside: Vec<&RecordedSpan> = completed
                .iter()
                .filter(|s| s.completed_ns + w_ns > anchor)
                .copied()
                .collect();
            windows.push(WindowAttribution::analyze(
                format!("{}s", w.as_secs()),
                &inside,
            ));
        }
        windows.push(WindowAttribution::analyze(
            "overall".to_string(),
            &completed,
        ));

        AttributionReport {
            analyzed: completed.len(),
            skipped,
            windows,
            bands: Self::bands_of(&completed),
            exec_phases: Vec::new(),
        }
    }

    fn bands_of(completed: &[&RecordedSpan]) -> Vec<BandAttribution> {
        let mut by_e2e: Vec<&RecordedSpan> = completed.to_vec();
        by_e2e.sort_by_key(|s| (e2e_of(s), s.id));
        let n = by_e2e.len();
        let cut = |q: f64| ((n as f64) * q).round() as usize;
        let edges = [0, cut(0.50), cut(0.95), cut(0.99), n];
        let mut bands = Vec::new();
        for (b, name) in BANDS.iter().enumerate() {
            let (lo, hi) = (edges[b], edges[b + 1].max(edges[b]));
            let slice = &by_e2e[lo..hi];
            if slice.is_empty() {
                continue; // tiny dumps have no distinct tail bands
            }
            let mut mean_segment_ns = [0.0f64; 5];
            let mut e2e_sum = 0u64;
            for s in slice {
                e2e_sum += e2e_of(s);
                for (acc, ns) in mean_segment_ns.iter_mut().zip(segments_of(s)) {
                    *acc += ns as f64;
                }
            }
            for acc in &mut mean_segment_ns {
                *acc /= slice.len() as f64;
            }
            let dominant = mean_segment_ns
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map_or(SEGMENTS[0], |(i, _)| SEGMENTS[i]);
            bands.push(BandAttribution {
                band: name,
                spans: slice.len(),
                mean_e2e_ns: e2e_sum as f64 / slice.len() as f64,
                mean_segment_ns,
                dominant,
            });
        }
        bands
    }

    /// Cross-references the opaque `execute` segment with the engine's
    /// own phase split: for each lowering the profiler recorded, the
    /// overall mean execute time is scaled by the engine's
    /// pad/kernel/epilogue fractions.
    pub fn attach_exec_profile(&mut self, profile: &ExecProfile) {
        let execute_mean = self
            .windows
            .last() // the "overall" entry
            .and_then(|w| w.segments.iter().find(|s| s.name == "execute"))
            .map_or(0.0, |s| s.mean_ns);
        self.exec_phases = Precision::ALL
            .iter()
            .filter_map(|&p| {
                let split = profile.phase_split(p)?;
                let (pad, kernel, epilogue) = split.fractions();
                Some(ExecPhaseShare {
                    precision: p.label(),
                    pad_fraction: pad,
                    kernel_fraction: kernel,
                    epilogue_fraction: epilogue,
                    execute_mean_ns: (
                        execute_mean * pad,
                        execute_mean * kernel,
                        execute_mean * epilogue,
                    ),
                })
            })
            .collect();
    }

    /// The dominant contributor of the whole dump (`None` when no
    /// completed span was analyzed).
    pub fn dominant(&self) -> Option<&'static str> {
        self.windows
            .last()
            .filter(|w| w.spans > 0)
            .map(|w| w.dominant)
    }

    /// The report as one JSON object — the `"attribution"` block of
    /// `PROFILE_serve.json`.
    pub fn to_json(&self) -> String {
        let windows: Vec<String> = self
            .windows
            .iter()
            .map(WindowAttribution::to_json)
            .collect();
        let bands: Vec<String> = self.bands.iter().map(BandAttribution::to_json).collect();
        let exec: Vec<String> = self
            .exec_phases
            .iter()
            .map(ExecPhaseShare::to_json)
            .collect();
        format!(
            concat!(
                "{{\"analyzed\":{},\"skipped\":{},\"windows\":[{}],",
                "\"bands\":[{}],\"exec_phases\":[{}]}}"
            ),
            self.analyzed,
            self.skipped,
            windows.join(","),
            bands.join(","),
            exec.join(","),
        )
    }
}

impl std::fmt::Display for AttributionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "latency attribution: {} spans analyzed, {} skipped",
            self.analyzed, self.skipped
        )?;
        for w in &self.windows {
            if w.spans == 0 {
                continue;
            }
            writeln!(
                f,
                "  {:>7}: {:>5} spans, e2e mean {:>9.1} µs, dominant {}",
                w.label,
                w.spans,
                w.e2e.mean_ns / 1e3,
                w.dominant
            )?;
            for s in &w.segments {
                writeln!(
                    f,
                    "    {:<17} {:>5.1}%  mean {:>9.1} µs  p99 {:>9.1} µs",
                    s.name,
                    s.share * 100.0,
                    s.mean_ns / 1e3,
                    s.p99_ns as f64 / 1e3
                )?;
            }
        }
        for b in &self.bands {
            writeln!(
                f,
                "  band {:<8} {:>5} spans, e2e mean {:>9.1} µs, dominant {}",
                b.band,
                b.spans,
                b.mean_e2e_ns / 1e3,
                b.dominant
            )?;
        }
        for e in &self.exec_phases {
            writeln!(
                f,
                "  execute[{}]: pad {:.1}% kernel {:.1}% epilogue {:.1}% of engine time",
                e.precision,
                e.pad_fraction * 100.0,
                e.kernel_fraction * 100.0,
                e.epilogue_fraction * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A completed span with the given segment durations, admitted at
    /// `t0`.
    fn span_with(id: u64, t0: u64, segs: [u64; 5]) -> RecordedSpan {
        RecordedSpan {
            id,
            shard: 0,
            precision: Precision::F32,
            outcome: SpanOutcome::Completed,
            batch_len: 1,
            admitted_ns: t0,
            dequeued_ns: t0 + segs[0],
            coalesced_ns: t0 + segs[0] + segs[1],
            dispatched_ns: t0 + segs[0] + segs[1] + segs[2],
            executed_ns: t0 + segs[0] + segs[1] + segs[2] + segs[3],
            completed_ns: t0 + segs.iter().sum::<u64>(),
        }
    }

    #[test]
    fn segments_decompose_the_e2e_exactly() {
        let segs = [100, 20, 30, 800, 50];
        let s = span_with(1, 5_000, segs);
        assert_eq!(segments_of(&s), segs);
        assert_eq!(e2e_of(&s), 1000);
        assert!(s.is_monotone());
        let r = AttributionReport::analyze(&[s]);
        assert_eq!(r.analyzed, 1);
        let overall = r.windows.last().unwrap();
        assert_eq!(overall.label, "overall");
        assert_eq!(overall.e2e.total_ns, 1000);
        assert_eq!(overall.dominant, "execute");
        // Shares recompose to 1.
        let share_sum: f64 = overall.segments.iter().map(|s| s.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
        assert_eq!(r.dominant(), Some("execute"));
    }

    #[test]
    fn windows_anchor_at_the_newest_completion() {
        // Two queue-dominated spans 30 s apart: the 1 s and 10 s
        // windows only see the recent one, 60 s and overall see both.
        let old = span_with(1, 0, [900, 10, 10, 50, 30]);
        let new = span_with(2, 30_000_000_000, [900, 10, 10, 50, 30]);
        let r = AttributionReport::analyze(&[old, new]);
        assert_eq!(r.windows[0].label, "1s");
        assert_eq!(r.windows[0].spans, 1);
        assert_eq!(r.windows[1].label, "10s");
        assert_eq!(r.windows[1].spans, 1);
        assert_eq!(r.windows[2].label, "60s");
        assert_eq!(r.windows[2].spans, 2);
        assert_eq!(r.windows[3].spans, 2);
        assert_eq!(r.windows[0].dominant, "queue_wait");
    }

    #[test]
    fn failed_and_aborted_spans_are_skipped() {
        let ok = span_with(1, 0, [10, 10, 10, 10, 10]);
        let mut failed = span_with(2, 0, [10, 10, 10, 10, 10]);
        failed.outcome = SpanOutcome::Failed;
        let mut aborted = span_with(3, 0, [10, 10, 10, 10, 10]);
        aborted.outcome = SpanOutcome::Aborted;
        let r = AttributionReport::analyze(&[ok, failed, aborted]);
        assert_eq!(r.analyzed, 1);
        assert_eq!(r.skipped, 2);
        assert_eq!(r.windows.last().unwrap().spans, 1);
    }

    #[test]
    fn empty_dump_produces_an_empty_but_valid_report() {
        let r = AttributionReport::analyze(&[]);
        assert_eq!(r.analyzed, 0);
        assert_eq!(r.dominant(), None);
        assert!(r.bands.is_empty());
        let json = r.to_json();
        assert!(json.contains("\"analyzed\":0"));
        let depth = json.chars().fold(0i32, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "balanced");
    }

    #[test]
    fn bands_single_out_the_tail() {
        // 99 fast execute-bound spans and one huge queue-bound outlier:
        // the top band must finger queue_wait while the body says
        // execute.
        let mut spans: Vec<RecordedSpan> = (0..99)
            .map(|i| span_with(i, 1000 * i, [10, 5, 5, 500, 10]))
            .collect();
        spans.push(span_with(99, 990_000, [5_000_000, 5, 5, 500, 10]));
        let r = AttributionReport::analyze(&spans);
        assert_eq!(r.bands.len(), 4, "100 spans populate every band");
        let body = &r.bands[0];
        assert_eq!(body.band, "p0-p50");
        assert_eq!(body.dominant, "execute");
        let tail = r.bands.last().unwrap();
        assert_eq!(tail.band, "p99-p100");
        assert_eq!(tail.spans, 1);
        assert_eq!(tail.dominant, "queue_wait");
        assert!(tail.mean_e2e_ns > 5_000_000.0);
        // Whole-dump dominant follows the pooled outlier too.
        assert_eq!(r.dominant(), Some("queue_wait"));
    }

    #[test]
    fn quantiles_are_exact_over_the_window() {
        let spans: Vec<RecordedSpan> = (1..=100)
            .map(|i| span_with(i, 10 * i, [0, 0, 0, i * 1000, 0]))
            .collect();
        let r = AttributionReport::analyze(&spans);
        let overall = r.windows.last().unwrap();
        let exec = &overall.segments[3];
        assert_eq!(exec.name, "execute");
        assert_eq!(exec.p50_ns, 50_000);
        assert_eq!(exec.p95_ns, 95_000);
        assert_eq!(exec.p99_ns, 99_000);
        assert!((exec.mean_ns - 50_500.0).abs() < 1e-6);
    }

    #[test]
    fn tied_stamps_saturate_to_zero_segments() {
        // An abort-style span where the tail events share one instant.
        let mut s = span_with(1, 100, [50, 0, 0, 0, 0]);
        s.coalesced_ns = s.dequeued_ns;
        s.dispatched_ns = s.dequeued_ns;
        s.executed_ns = s.dequeued_ns;
        s.completed_ns = s.dequeued_ns;
        assert_eq!(segments_of(&s), [50, 0, 0, 0, 0]);
        let r = AttributionReport::analyze(&[s]);
        assert_eq!(r.windows.last().unwrap().dominant, "queue_wait");
    }

    #[test]
    fn json_carries_the_documented_schema() {
        let spans: Vec<RecordedSpan> = (0..10)
            .map(|i| span_with(i, 100 * i, [10, 5, 5, 200, 10]))
            .collect();
        let r = AttributionReport::analyze(&spans);
        let json = r.to_json();
        for key in [
            "\"analyzed\":10",
            "\"windows\":[",
            "\"label\":\"1s\"",
            "\"label\":\"overall\"",
            "\"dominant\":\"execute\"",
            "\"bands\":[",
            "\"exec_phases\":[]",
            "\"queue_wait\"",
            "\"completion_notify\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let text = format!("{r}");
        assert!(text.contains("latency attribution: 10 spans"));
        assert!(text.contains("dominant execute"));
    }
}
