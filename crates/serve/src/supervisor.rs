//! Shard supervision: heartbeats, automatic batcher restarts, retry
//! budgets, and the per-shard circuit breaker.
//!
//! A served request's worst enemy is not a failed inference — the
//! engine already contains chunk panics and fails the affected tickets
//! — but a **dead batcher**: a panicked or wedged consumer thread whose
//! in-flight tickets would otherwise hang their waiters forever. The
//! [`Supervisor`] is the recovery layer above the batchers:
//!
//! * **Heartbeats.** Every batcher publishes a phase
//!   (idle / active / stopped / dead) and a beat timestamp on the
//!   server's epoch clock. Idle batchers (parked on an empty queue) are
//!   exempt from staleness; an *active* batcher whose beat goes stale
//!   past [`SupervisorConfig::stall_timeout`] is declared wedged. A
//!   panic is caught structurally: a drop guard flips the phase to
//!   `dead` during unwind, so crashes are detected on the next tick
//!   without waiting out the stall timeout.
//! * **In-flight registry.** Each popped request is registered
//!   (ticket cell + precision) until its completion callback claims it
//!   back. Claiming is a single `HashMap::remove` under a mutex, so
//!   when the supervisor tears a dead shard down it can *drain* the
//!   registry and fail every orphaned ticket with
//!   [`ServeError::ShardFailed`] — and a late engine callback that
//!   raced the drain finds its entry gone and skips, which is what
//!   makes "every submit resolves exactly once" hold through a crash.
//! * **Restarts.** A dead shard's engine pool is torn down and
//!   respawned from the shared compiled graph
//!   ([`Engine::respawn`] — graph and profiler are `Arc`-shared, only
//!   the worker pool is rebuilt), a fresh batcher generation is
//!   spawned, and the restart is journaled (`shard_restart`) and
//!   captured as an incident. Generations make stale threads inert: a
//!   wedged batcher that eventually wakes sees the bumped generation
//!   and exits without touching the queue.
//! * **Circuit breaker.** More than [`SupervisorConfig::max_restarts`]
//!   deaths inside [`SupervisorConfig::restart_window`] trip the
//!   shard's breaker to `Open`: no respawn, and (with a shared queue)
//!   surviving shards keep serving the backlog. After
//!   [`SupervisorConfig::open_duration`] the breaker half-opens with a
//!   probe batcher; [`SupervisorConfig::probe_batches`] completed
//!   batches close it again, another death reopens it.
//! * **Retry budget.** Transient engine faults are retried on a
//!   *different* shard under [`RetryPolicy`], metered by a per-shard
//!   token bucket ([`RetryBudget`]) refilled by completions — a
//!   persistent fault burns its budget and degrades to plain failures
//!   instead of amplifying load, and no retries are attempted while
//!   the health engine reports `Overloaded`.
//!
//! The supervisor thread is a cheap periodic tick (a fraction of the
//! stall timeout): per shard, two relaxed atomic loads in the common
//! healthy case. All coordination with batchers goes through the slot
//! structures in this module; the batcher's hot path pays one registry
//! insert/remove per request and one heartbeat store per loop.

use crate::batcher::Request;
use crate::events::{EventCode, Severity};
use crate::incident::IncidentRecorder;
use crate::metrics::ServerMetrics;
use crate::queue::{BoundedQueue, Priority};
use crate::ticket::{ServeError, TicketCell};
use pcnn_runtime::{Engine, Precision};
use pcnn_sync::atomic::{AtomicU64, Ordering};
use pcnn_sync::{thread, Arc, Condvar, Mutex};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Retry policy for transient engine faults, applied per failed
/// request in the dispatch completion callback.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts a request gets (first try included). `1` — the
    /// default — disables retries entirely, and the batchers then skip
    /// the input clone retries would need.
    pub max_attempts: u32,
    /// Delay before a retry re-enters the queue. Zero (default)
    /// re-queues immediately from the completion callback; non-zero
    /// delays are parked and flushed by the supervisor tick (so they
    /// require supervision to be enabled).
    pub backoff: Duration,
    /// Retry-budget tokens earned per completed request (token-bucket
    /// refill rate). `0.1` means one retry is earned per ten
    /// completions.
    pub budget_ratio: f64,
    /// Cap of the retry budget (burst size). The bucket starts full.
    pub budget_burst: u32,
}

impl Default for RetryPolicy {
    /// Retries off (`max_attempts: 1`); budget knobs at one retry per
    /// ten completions, burst of 16, for servers that turn them on.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
            budget_ratio: 0.1,
            budget_burst: 16,
        }
    }
}

/// Knobs of the shard supervisor.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Whether the supervisor thread runs at all. Off, batcher panics
    /// still fail fast (their tickets resolve at shutdown) but nothing
    /// restarts shards; the slot bookkeeping stays inert.
    pub enabled: bool,
    /// How long an **active** batcher's heartbeat may go stale before
    /// the shard is declared wedged. Must comfortably exceed
    /// `max_wait` plus the slowest expected batch service time —
    /// heartbeats advance on dispatch progress, not on a timer.
    pub stall_timeout: Duration,
    /// Deaths tolerated inside [`SupervisorConfig::restart_window`]
    /// before the shard's circuit breaker opens instead of respawning.
    pub max_restarts: u32,
    /// Trailing window the death count is evaluated over.
    pub restart_window: Duration,
    /// How long an open breaker waits before half-opening a probe.
    pub open_duration: Duration,
    /// Completed batches a half-open probe must serve before the
    /// breaker closes again.
    pub probe_batches: u64,
}

impl Default for SupervisorConfig {
    /// Supervision on: 1 s stall timeout, breaker at 3 deaths per
    /// 10 s, 2 s open, 4 probe batches.
    fn default() -> Self {
        SupervisorConfig {
            enabled: true,
            stall_timeout: Duration::from_secs(1),
            max_restarts: 3,
            restart_window: Duration::from_secs(10),
            open_duration: Duration::from_secs(2),
            probe_batches: 4,
        }
    }
}

/// Batcher lifecycle phase, published in the heartbeat. Idle batchers
/// (parked on an empty queue) are exempt from stall detection.
pub(crate) const PHASE_IDLE: u64 = 0;
/// The batcher holds work (popped, coalescing, or dispatching).
pub(crate) const PHASE_ACTIVE: u64 = 1;
/// The batcher exited cleanly (queue closed, or stale generation).
pub(crate) const PHASE_STOPPED: u64 = 2;
/// The batcher thread panicked (set by the unwind guard).
pub(crate) const PHASE_DEAD: u64 = 3;

/// One shard's liveness signal: a phase and a beat timestamp on the
/// server's epoch clock, both written by the batcher, read by the
/// supervisor tick.
#[derive(Debug)]
pub(crate) struct Heartbeat {
    phase: AtomicU64,
    beat_ns: AtomicU64,
}

impl Heartbeat {
    fn new() -> Self {
        Heartbeat {
            phase: AtomicU64::new(PHASE_IDLE),
            beat_ns: AtomicU64::new(0),
        }
    }

    /// Publishes liveness at `now_ns`.
    pub(crate) fn beat(&self, now_ns: u64) {
        // ordering: the beat is a freshness timestamp, not a
        // publication of other state; a supervisor read delayed by one
        // tick only delays detection, never corrupts it (teardown is
        // serialized by the registry mutex).
        self.beat_ns.store(now_ns, Ordering::Relaxed);
    }

    /// Publishes the lifecycle phase.
    pub(crate) fn set_phase(&self, phase: u64) {
        // ordering: see `beat` — detection tolerates one tick of lag,
        // and every correctness-bearing handoff rides the registry and
        // slot mutexes instead.
        self.phase.store(phase, Ordering::Relaxed);
    }

    pub(crate) fn phase(&self) -> u64 {
        // ordering: supervisor-side freshness read; see `beat`.
        self.phase.load(Ordering::Relaxed)
    }

    fn beat_ns(&self) -> u64 {
        // ordering: supervisor-side freshness read; see `beat`.
        self.beat_ns.load(Ordering::Relaxed)
    }
}

/// Unwind guard a batcher holds for its whole run: drop during a panic
/// publishes `dead` (crash detection without waiting out the stall
/// timeout), a clean drop publishes `stopped`. A stale generation —
/// the supervisor already moved on — never clobbers the phase of its
/// replacement.
pub(crate) struct HeartbeatGuard {
    slot: Arc<ShardSlot>,
    generation: u64,
}

impl HeartbeatGuard {
    pub(crate) fn new(slot: Arc<ShardSlot>, generation: u64) -> Self {
        HeartbeatGuard { slot, generation }
    }
}

impl Drop for HeartbeatGuard {
    fn drop(&mut self) {
        // ordering: generation gate only — a stale thread must not
        // write over the live generation's phase; the supervisor's
        // bump happened before this thread could observe it as stale.
        if self.slot.generation.load(Ordering::Relaxed) != self.generation {
            return;
        }
        self.slot.heartbeat.set_phase(if thread::panicking() {
            PHASE_DEAD
        } else {
            PHASE_STOPPED
        });
    }
}

/// What the registry remembers about an in-flight request: enough to
/// fail its ticket with attribution if the shard dies under it.
pub(crate) struct InflightEntry {
    pub(crate) cell: Arc<TicketCell>,
    pub(crate) precision: Precision,
}

/// The set of requests a shard has popped and not yet resolved.
/// Exactly-once resolution between the engine callback and the
/// supervisor's teardown is decided here: whoever removes an entry
/// owns completing (and accounting) its ticket.
#[derive(Default)]
pub(crate) struct InflightRegistry {
    map: Mutex<HashMap<u64, InflightEntry>>,
}

impl InflightRegistry {
    /// Registers a popped request under its trace ID.
    pub(crate) fn register(&self, id: u64, entry: InflightEntry) {
        self.map
            .lock()
            .expect("inflight registry poisoned")
            .insert(id, entry);
    }

    /// Claims a request back for resolution. `None` means someone else
    /// (the supervisor's drain, or a racing claim) already owns it —
    /// the caller must not touch the ticket.
    pub(crate) fn claim(&self, id: u64) -> Option<InflightEntry> {
        self.map
            .lock()
            .expect("inflight registry poisoned")
            .remove(&id)
    }

    /// Empties the registry, returning every orphaned entry. Called by
    /// the supervisor with the dead generation already bumped; tickets
    /// are completed *outside* the lock.
    pub(crate) fn drain(&self) -> Vec<InflightEntry> {
        let mut map = self.map.lock().expect("inflight registry poisoned");
        map.drain().map(|(_, e)| e).collect()
    }

    /// Requests currently registered (tests and introspection).
    pub(crate) fn len(&self) -> usize {
        self.map.lock().expect("inflight registry poisoned").len()
    }
}

/// Token bucket metering retries, in milli-tokens so fractional refill
/// ratios stay integer arithmetic. Starts full (burst capacity);
/// completions refill it, each retry spends one whole token.
pub(crate) struct RetryBudget {
    milli: AtomicU64,
    refill_milli: u64,
    cap_milli: u64,
}

impl RetryBudget {
    pub(crate) fn new(policy: &RetryPolicy) -> Self {
        let cap_milli = u64::from(policy.budget_burst) * 1000;
        RetryBudget {
            milli: AtomicU64::new(cap_milli),
            refill_milli: (policy.budget_ratio.max(0.0) * 1000.0) as u64,
            cap_milli,
        }
    }

    /// Credits one completion toward future retries.
    pub(crate) fn on_success(&self) {
        if self.refill_milli == 0 || self.cap_milli == 0 {
            return;
        }
        // ordering: budget accounting only; the CAS loop itself keeps
        // the balance consistent, and no other memory is published
        // through it.
        let mut cur = self.milli.load(Ordering::Relaxed);
        loop {
            let next = (cur + self.refill_milli).min(self.cap_milli);
            if next == cur {
                return;
            }
            // ordering: see the budget-accounting contract above.
            match self
                .milli
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Spends one token; `false` means the budget is exhausted and the
    /// fault must fail through instead of retrying.
    pub(crate) fn try_acquire(&self) -> bool {
        // ordering: see the budget-accounting contract in `on_success`
        // — the CAS guarantees each token is spent at most once.
        let mut cur = self.milli.load(Ordering::Relaxed);
        while cur >= 1000 {
            // ordering: see the budget-accounting contract above.
            match self.milli.compare_exchange_weak(
                cur,
                cur - 1000,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
        false
    }

    /// Whole tokens currently available (tests and introspection).
    pub(crate) fn tokens(&self) -> u64 {
        // ordering: statistics read; readers tolerate lag.
        self.milli.load(Ordering::Relaxed) / 1000
    }
}

/// Public circuit-breaker state of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; deaths respawn the shard.
    Closed,
    /// Too many deaths: the shard stays down (its backlog drains
    /// through the other shards of the shared queue).
    Open,
    /// A probe batcher is serving; enough completed batches close the
    /// breaker, another death reopens it.
    HalfOpen,
}

impl BreakerState {
    /// Stable snake_case label.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Stable numeric code (the `circuit_breaker` event's `b` field
    /// and the Prometheus gauge value): 0 closed, 1 open, 2 half-open.
    pub fn code(self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What a death does to the breaker.
#[derive(Debug, PartialEq, Eq)]
enum DeathAction {
    /// Under the restart budget: respawn the shard.
    Respawn,
    /// Budget exceeded (or the probe died): stay down, breaker open.
    Open,
}

/// Mutex-guarded breaker bookkeeping of one shard. Pure state-machine
/// logic, separated from the supervisor's side effects so it unit-tests
/// without threads.
#[derive(Debug, Default)]
struct BreakerInner {
    state_code: u64,
    /// Epoch-ns instant an open breaker may half-open.
    open_until_ns: u64,
    /// `batches` counter reading when the probe started.
    probe_baseline: u64,
    /// Epoch-ns stamps of recent deaths, pruned to the restart window.
    death_stamps: Vec<u64>,
}

impl BreakerInner {
    fn state(&self) -> BreakerState {
        match self.state_code {
            1 => BreakerState::Open,
            2 => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    /// Registers a death at `now_ns` and decides the shard's fate. A
    /// death during a half-open probe always reopens.
    fn on_death(&mut self, now_ns: u64, cfg: &SupervisorConfig) -> DeathAction {
        if self.state() == BreakerState::HalfOpen {
            self.state_code = BreakerState::Open.code();
            self.open_until_ns = now_ns.saturating_add(ns(cfg.open_duration));
            return DeathAction::Open;
        }
        let window = ns(cfg.restart_window);
        self.death_stamps
            .retain(|&t| now_ns.saturating_sub(t) < window);
        self.death_stamps.push(now_ns);
        if self.death_stamps.len() > cfg.max_restarts as usize {
            self.state_code = BreakerState::Open.code();
            self.open_until_ns = now_ns.saturating_add(ns(cfg.open_duration));
            DeathAction::Open
        } else {
            DeathAction::Respawn
        }
    }

    /// Whether an open breaker is due to half-open at `now_ns`; flips
    /// the state and records the probe baseline when it is.
    fn try_half_open(&mut self, now_ns: u64, batches_now: u64) -> bool {
        if self.state() == BreakerState::Open && now_ns >= self.open_until_ns {
            self.state_code = BreakerState::HalfOpen.code();
            self.probe_baseline = batches_now;
            true
        } else {
            false
        }
    }

    /// Whether a half-open probe has served enough batches to close;
    /// flips the state (and forgives past deaths) when it has.
    fn try_close(&mut self, batches_now: u64, cfg: &SupervisorConfig) -> bool {
        if self.state() == BreakerState::HalfOpen
            && batches_now.saturating_sub(self.probe_baseline) >= cfg.probe_batches
        {
            self.state_code = BreakerState::Closed.code();
            self.death_stamps.clear();
            true
        } else {
            false
        }
    }
}

fn ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

/// Everything the supervisor tracks about one shard. The batcher holds
/// an `Arc` to its slot (heartbeat, generation, registry, budget); the
/// supervisor holds the same `Arc`s plus the engine and thread handle
/// it replaces on restart.
pub(crate) struct ShardSlot {
    pub(crate) index: usize,
    /// The shard's current engine. Replaced wholesale on restart —
    /// late callbacks of the previous engine keep their own `Arc` and
    /// find their registry entries already drained.
    pub(crate) engine: Mutex<Arc<Engine>>,
    pub(crate) heartbeat: Heartbeat,
    /// Bumped on every restart; a batcher observing a generation newer
    /// than its own exits without touching the queue.
    pub(crate) generation: AtomicU64,
    pub(crate) registry: InflightRegistry,
    pub(crate) budget: RetryBudget,
    pub(crate) handle: Mutex<Option<thread::JoinHandle<()>>>,
    breaker: Mutex<BreakerInner>,
    restarts: AtomicU64,
}

impl ShardSlot {
    pub(crate) fn new(index: usize, engine: Arc<Engine>, retry: &RetryPolicy) -> Arc<Self> {
        Arc::new(ShardSlot {
            index,
            engine: Mutex::new(engine),
            heartbeat: Heartbeat::new(),
            generation: AtomicU64::new(0),
            registry: InflightRegistry::default(),
            budget: RetryBudget::new(retry),
            handle: Mutex::new(None),
            breaker: Mutex::new(BreakerInner::default()),
            restarts: AtomicU64::new(0),
        })
    }

    /// This shard's current breaker state.
    pub(crate) fn breaker_state(&self) -> BreakerState {
        self.breaker.lock().expect("breaker poisoned").state()
    }

    /// Lifetime restarts of this shard.
    pub(crate) fn restart_count(&self) -> u64 {
        // ordering: statistics read; readers tolerate lag.
        self.restarts.load(Ordering::Relaxed)
    }

    /// The batcher generation currently authoritative for this shard.
    pub(crate) fn current_generation(&self) -> u64 {
        // ordering: a stale read only delays a retiring thread by one
        // loop iteration; the supervisor's teardown does not depend on
        // when the old thread notices.
        self.generation.load(Ordering::Relaxed)
    }
}

/// A shard's supervision status, for tests and operators
/// ([`crate::Server::shard_status`]).
#[derive(Debug, Clone)]
pub struct ShardStatus {
    /// Shard index.
    pub shard: usize,
    /// Batcher generation currently serving (0 = the original).
    pub generation: u64,
    /// Times the supervisor restarted this shard.
    pub restarts: u64,
    /// Circuit-breaker state.
    pub breaker: BreakerState,
    /// Requests popped by this shard and not yet resolved.
    pub inflight_registered: usize,
    /// Whole retry tokens currently available.
    pub retry_tokens: u64,
}

/// A retry parked until its backoff elapses, flushed by the supervisor
/// tick (or failed at shutdown).
pub(crate) struct DelayedRetry {
    pub(crate) due: Instant,
    pub(crate) request: Request,
}

/// The spawn hook the server installs: given a slot and the generation
/// to run as, start a batcher thread for it. Lives in `lib.rs` so the
/// supervisor never constructs a `BatcherContext` itself.
pub(crate) type SpawnFn = Box<dyn Fn(Arc<ShardSlot>, u64) -> thread::JoinHandle<()> + Send + Sync>;

struct StopSignal {
    stop: Mutex<bool>,
    wake: Condvar,
}

/// The supervisor: owns the shard slots and (when enabled) a monitor
/// thread driving detection, teardown, respawn, the circuit breakers,
/// and delayed-retry flushing.
pub(crate) struct Supervisor {
    config: SupervisorConfig,
    slots: Vec<Arc<ShardSlot>>,
    delayed: Arc<Mutex<Vec<DelayedRetry>>>,
    queue: Arc<BoundedQueue<Request>>,
    metrics: Arc<ServerMetrics>,
    incidents: Arc<IncidentRecorder>,
    spawn: SpawnFn,
    stop: StopSignal,
    monitor: Mutex<Option<thread::JoinHandle<()>>>,
}

impl Supervisor {
    /// Builds the supervisor over already-spawned generation-0 batchers
    /// and starts the monitor thread when supervision is enabled.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn start(
        config: SupervisorConfig,
        slots: Vec<Arc<ShardSlot>>,
        delayed: Arc<Mutex<Vec<DelayedRetry>>>,
        queue: Arc<BoundedQueue<Request>>,
        metrics: Arc<ServerMetrics>,
        incidents: Arc<IncidentRecorder>,
        spawn: SpawnFn,
    ) -> Arc<Supervisor> {
        let enabled = config.enabled;
        let sup = Arc::new(Supervisor {
            config,
            slots,
            delayed,
            queue,
            metrics,
            incidents,
            spawn,
            stop: StopSignal {
                stop: Mutex::new(false),
                wake: Condvar::new(),
            },
            monitor: Mutex::new(None),
        });
        if enabled {
            let me = Arc::clone(&sup);
            let handle = thread::Builder::new()
                .name("pcnn-serve-supervisor".to_string())
                .spawn(move || me.run())
                .expect("spawn supervisor thread");
            *sup.monitor.lock().expect("monitor handle poisoned") = Some(handle);
        }
        sup
    }

    /// The monitor loop: sleep a tick (interruptible by stop), flush
    /// due retries, evaluate every slot.
    fn run(&self) {
        let tick = self
            .config
            .stall_timeout
            .checked_div(4)
            .unwrap_or(Duration::from_millis(250))
            .clamp(Duration::from_millis(2), Duration::from_millis(250));
        loop {
            {
                let guard = self.stop.stop.lock().expect("stop flag poisoned");
                if *guard {
                    return;
                }
                let (guard, _) = self
                    .stop
                    .wake
                    .wait_timeout(guard, tick)
                    .expect("stop wait poisoned");
                if *guard {
                    return;
                }
            }
            self.flush_due_retries();
            let now_ns = self.metrics.now_ns();
            for slot in &self.slots {
                self.evaluate_slot(slot, now_ns);
            }
        }
    }

    /// One tick's worth of decisions for one shard.
    fn evaluate_slot(&self, slot: &Arc<ShardSlot>, now_ns: u64) {
        let state = slot.breaker_state();
        match state {
            BreakerState::Open => {
                let opened = {
                    let mut b = slot.breaker.lock().expect("breaker poisoned");
                    b.try_half_open(now_ns, self.batches_of(slot))
                };
                if opened {
                    self.emit_breaker(slot, BreakerState::HalfOpen);
                    self.respawn(slot, now_ns);
                }
            }
            BreakerState::Closed | BreakerState::HalfOpen => {
                let phase = slot.heartbeat.phase();
                if phase == PHASE_DEAD {
                    self.handle_death(slot, now_ns, true);
                } else if phase == PHASE_ACTIVE
                    && now_ns.saturating_sub(slot.heartbeat.beat_ns())
                        > ns(self.config.stall_timeout)
                {
                    self.handle_death(slot, now_ns, false);
                } else if state == BreakerState::HalfOpen {
                    let closed = {
                        let mut b = slot.breaker.lock().expect("breaker poisoned");
                        b.try_close(self.batches_of(slot), &self.config)
                    };
                    if closed {
                        self.emit_breaker(slot, BreakerState::Closed);
                    }
                }
            }
        }
    }

    fn batches_of(&self, slot: &ShardSlot) -> u64 {
        self.metrics.shard(slot.index).batches.get()
    }

    fn emit_breaker(&self, slot: &ShardSlot, state: BreakerState) {
        self.metrics.events().emit(
            EventCode::CircuitBreaker,
            if state == BreakerState::Open {
                Severity::Error
            } else {
                Severity::Warn
            },
            slot.index as u64,
            state.code(),
        );
    }

    /// Tears a dead shard down: retire the generation, fail every
    /// orphaned in-flight ticket with attribution, then either respawn
    /// or open the breaker.
    fn handle_death(&self, slot: &Arc<ShardSlot>, now_ns: u64, crashed: bool) {
        // Retire the generation FIRST: from here on the old thread (if
        // it is merely wedged and wakes later) is inert, and any late
        // engine callback resolves against the drained registry.
        // ordering: the registry mutex below is the real
        // synchronization point for ticket handoff; the bump only has
        // to be visible eventually to the retiring thread.
        slot.generation.fetch_add(1, Ordering::Relaxed);
        slot.heartbeat.set_phase(PHASE_STOPPED);
        self.fail_inflight(slot);
        let handle = slot.handle.lock().expect("slot handle poisoned").take();
        if crashed {
            // A panicked thread is already unwinding; join reaps it
            // (and waits out the old engine pool's teardown).
            if let Some(h) = handle {
                let _ = h.join();
            }
        }
        // A wedged thread is NOT joined — it may be blocked inside the
        // stalled engine for a long time; dropping the handle detaches
        // it, and the generation bump retires it whenever it wakes.
        let action = {
            let mut b = slot.breaker.lock().expect("breaker poisoned");
            b.on_death(now_ns, &self.config)
        };
        match action {
            DeathAction::Respawn => self.respawn(slot, now_ns),
            DeathAction::Open => self.emit_breaker(slot, BreakerState::Open),
        }
    }

    /// Fails every ticket the dead generation left in its registry.
    fn fail_inflight(&self, slot: &Arc<ShardSlot>) {
        let orphans = slot.registry.drain();
        if orphans.is_empty() {
            return;
        }
        let shard = self.metrics.shard(slot.index);
        for entry in orphans {
            shard.failed.inc();
            shard.precision(entry.precision).failed.inc();
            shard.window_failed(entry.precision);
            entry.cell.complete(Err(ServeError::ShardFailed));
        }
    }

    /// Rebuilds the shard's engine pool from the shared graph and
    /// spawns the next batcher generation.
    fn respawn(&self, slot: &Arc<ShardSlot>, _now_ns: u64) {
        let fresh = {
            let mut engine = slot.engine.lock().expect("slot engine poisoned");
            let fresh = Arc::new(engine.respawn());
            *engine = Arc::clone(&fresh);
            fresh
        };
        drop(fresh);
        let generation = slot.current_generation();
        slot.heartbeat.beat(self.metrics.now_ns());
        slot.heartbeat.set_phase(PHASE_IDLE);
        let handle = (self.spawn)(Arc::clone(slot), generation);
        *slot.handle.lock().expect("slot handle poisoned") = Some(handle);
        // ordering: statistics counter; the spawn above is the real
        // publication of the restart.
        slot.restarts.fetch_add(1, Ordering::Relaxed);
        self.metrics.shard_restarts.inc();
        self.metrics.events().emit(
            EventCode::ShardRestart,
            Severity::Warn,
            slot.index as u64,
            generation,
        );
        self.incidents.on_shard_restart();
    }

    /// Re-queues every delayed retry whose backoff has elapsed. A push
    /// that fails (queue full or closed) fails the ticket with the
    /// fault that caused the retry — never silently dropped.
    fn flush_due_retries(&self) {
        let now = Instant::now();
        let due: Vec<DelayedRetry> = {
            let mut delayed = self.delayed.lock().expect("delayed retries poisoned");
            let mut due = Vec::new();
            let mut i = 0;
            while i < delayed.len() {
                if delayed[i].due <= now {
                    due.push(delayed.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            due
        };
        for d in due {
            self.push_or_fail(d.request);
        }
    }

    fn push_or_fail(&self, request: Request) {
        let origin = request.avoid_shard.unwrap_or(0);
        let cell = request.cell.clone();
        let precision = request.precision;
        if self.queue.try_push(request, Priority::High).is_err() {
            // Charge the failure to the shard whose fault triggered
            // the retry — that is where the request actually died.
            let shard = self
                .metrics
                .shard(origin.min(self.metrics.shard_count() - 1));
            shard.failed.inc();
            shard.precision(precision).failed.inc();
            shard.window_failed(precision);
            cell.complete(Err(ServeError::EngineFault));
        }
    }

    /// Fails every still-parked retry (shutdown: the queue is closed,
    /// so re-queueing is pointless) — the last step that guarantees no
    /// parked ticket outlives the server unresolved.
    pub(crate) fn final_flush(&self) {
        let parked: Vec<DelayedRetry> = {
            let mut delayed = self.delayed.lock().expect("delayed retries poisoned");
            std::mem::take(&mut *delayed)
        };
        for d in parked {
            self.push_or_fail(d.request);
        }
    }

    /// Stops the monitor thread (idempotent).
    pub(crate) fn stop_and_join(&self) {
        {
            let mut stop = self.stop.stop.lock().expect("stop flag poisoned");
            *stop = true;
        }
        self.stop.wake.notify_all();
        let handle = self.monitor.lock().expect("monitor handle poisoned").take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    /// Joins every live batcher (shutdown path; dead shards have no
    /// handle and are skipped).
    pub(crate) fn join_batchers(&self) {
        for slot in &self.slots {
            let handle = slot.handle.lock().expect("slot handle poisoned").take();
            if let Some(h) = handle {
                let _ = h.join();
            }
        }
    }

    /// Fails whatever the dead shards' registries still hold (shutdown
    /// path, after the live batchers joined).
    pub(crate) fn fail_orphans(&self) {
        for slot in &self.slots {
            self.fail_inflight(slot);
        }
    }

    /// The supervision status of shard `i`.
    pub(crate) fn status(&self, i: usize) -> ShardStatus {
        let slot = &self.slots[i];
        ShardStatus {
            shard: i,
            generation: slot.current_generation(),
            restarts: slot.restart_count(),
            breaker: slot.breaker_state(),
            inflight_registered: slot.registry.len(),
            retry_tokens: slot.budget.tokens(),
        }
    }

    pub(crate) fn slots(&self) -> &[Arc<ShardSlot>] {
        &self.slots
    }
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("config", &self.config)
            .field("shards", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SupervisorConfig {
        SupervisorConfig {
            max_restarts: 2,
            restart_window: Duration::from_secs(10),
            open_duration: Duration::from_secs(1),
            probe_batches: 3,
            ..SupervisorConfig::default()
        }
    }

    #[test]
    fn breaker_respawns_until_the_restart_budget_is_spent() {
        let mut b = BreakerInner::default();
        let c = cfg();
        assert_eq!(b.on_death(1_000, &c), DeathAction::Respawn);
        assert_eq!(b.on_death(2_000, &c), DeathAction::Respawn);
        assert_eq!(
            b.on_death(3_000, &c),
            DeathAction::Open,
            "third death in window trips"
        );
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn deaths_outside_the_window_are_forgiven() {
        let mut b = BreakerInner::default();
        let c = cfg();
        let window = ns(c.restart_window);
        assert_eq!(b.on_death(0, &c), DeathAction::Respawn);
        assert_eq!(b.on_death(1, &c), DeathAction::Respawn);
        // Both early stamps age out before the next death.
        assert_eq!(b.on_death(window + 10, &c), DeathAction::Respawn);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn breaker_half_opens_probes_and_closes() {
        let mut b = BreakerInner::default();
        let c = cfg();
        for t in [10, 20, 30] {
            let _ = b.on_death(t, &c);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.try_half_open(40, 100), "open holds until open_duration");
        let reopen_at = 30 + ns(c.open_duration);
        assert!(b.try_half_open(reopen_at, 100));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(
            !b.try_close(102, &c),
            "probe needs probe_batches completions"
        );
        assert!(b.try_close(103, &c));
        assert_eq!(b.state(), BreakerState::Closed);
        // Closing forgives history: the next death respawns again.
        assert_eq!(b.on_death(reopen_at + 1, &c), DeathAction::Respawn);
    }

    #[test]
    fn probe_death_reopens_immediately() {
        let mut b = BreakerInner::default();
        let c = cfg();
        for t in [10, 20, 30] {
            let _ = b.on_death(t, &c);
        }
        let reopen_at = 30 + ns(c.open_duration);
        assert!(b.try_half_open(reopen_at, 0));
        assert_eq!(b.on_death(reopen_at + 5, &c), DeathAction::Open);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn retry_budget_starts_full_spends_whole_tokens_and_refills_capped() {
        let budget = RetryBudget::new(&RetryPolicy {
            budget_ratio: 0.5,
            budget_burst: 2,
            ..RetryPolicy::default()
        });
        assert_eq!(budget.tokens(), 2);
        assert!(budget.try_acquire());
        assert!(budget.try_acquire());
        assert!(!budget.try_acquire(), "burst spent");
        budget.on_success();
        assert!(!budget.try_acquire(), "half a token is not a retry");
        budget.on_success();
        assert!(budget.try_acquire(), "two completions earned one retry");
        for _ in 0..100 {
            budget.on_success();
        }
        assert_eq!(budget.tokens(), 2, "refill caps at the burst");
    }

    #[test]
    fn zero_ratio_budget_never_refills() {
        let budget = RetryBudget::new(&RetryPolicy {
            budget_ratio: 0.0,
            budget_burst: 1,
            ..RetryPolicy::default()
        });
        assert!(budget.try_acquire());
        budget.on_success();
        assert!(!budget.try_acquire());
    }

    #[test]
    fn registry_claim_and_drain_are_exclusive() {
        let reg = InflightRegistry::default();
        reg.register(
            7,
            InflightEntry {
                cell: TicketCell::new(),
                precision: Precision::F32,
            },
        );
        reg.register(
            8,
            InflightEntry {
                cell: TicketCell::new(),
                precision: Precision::F32,
            },
        );
        assert_eq!(reg.len(), 2);
        assert!(reg.claim(7).is_some());
        assert!(reg.claim(7).is_none(), "claims are consume-once");
        let orphans = reg.drain();
        assert_eq!(orphans.len(), 1);
        assert_eq!(reg.len(), 0);
    }

    #[test]
    fn heartbeat_guard_reports_panic_as_dead_and_exit_as_stopped() {
        let engine = Arc::new(Engine::new(
            pcnn_runtime::compile::compile_dense(&pcnn_nn::models::tiny_cnn(3, 4, 1)),
            1,
        ));
        let slot = ShardSlot::new(0, engine, &RetryPolicy::default());
        {
            let clean = HeartbeatGuard::new(Arc::clone(&slot), 0);
            drop(clean);
        }
        assert_eq!(slot.heartbeat.phase(), PHASE_STOPPED);
        let panicking = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || {
                let _guard = HeartbeatGuard::new(slot, 0);
                panic!("injected");
            })
        };
        assert!(panicking.join().is_err());
        assert_eq!(slot.heartbeat.phase(), PHASE_DEAD);
        // A stale generation's guard must not clobber the live phase.
        slot.heartbeat.set_phase(PHASE_ACTIVE);
        // ordering: test-side setup store.
        slot.generation.store(3, Ordering::Relaxed);
        drop(HeartbeatGuard::new(Arc::clone(&slot), 2));
        assert_eq!(slot.heartbeat.phase(), PHASE_ACTIVE, "stale guard is inert");
    }
}

/// Interleaving tests for the exactly-once handoffs this module's
/// recovery paths rest on, under the deterministic model checker.
#[cfg(all(test, any(pcnn_model_check, feature = "model-check")))]
mod model_tests {
    use super::*;
    use crate::ticket::Ticket;
    use pcnn_sync::model::{check, CheckOptions};
    use pcnn_tensor::Tensor;

    fn opts() -> CheckOptions {
        CheckOptions {
            exhaustive_schedules: 2_000,
            random_schedules: 1_000,
            ..CheckOptions::default()
        }
    }

    /// The engine callback and the supervisor's teardown race for the
    /// same in-flight entry; exactly one side may own the ticket.
    #[test]
    fn claim_vs_drain_hands_each_entry_to_exactly_one_owner() {
        let report = check("supervisor-claim-vs-drain", opts(), || {
            let reg = Arc::new(InflightRegistry::default());
            reg.register(
                1,
                InflightEntry {
                    cell: TicketCell::new(),
                    precision: Precision::F32,
                },
            );
            let claimer = {
                let reg = Arc::clone(&reg);
                thread::spawn(move || reg.claim(1).is_some())
            };
            let drainer = {
                let reg = Arc::clone(&reg);
                thread::spawn(move || reg.drain().len())
            };
            let claimed = claimer.join().unwrap();
            let drained = drainer.join().unwrap();
            assert_eq!(
                usize::from(claimed) + drained,
                1,
                "entry owned by exactly one of claim/drain"
            );
        });
        assert!(report.schedules_run > 0);
    }

    /// Two faults race one remaining retry token: exactly one retries.
    #[test]
    fn single_retry_token_is_spent_exactly_once() {
        let report = check("supervisor-budget-race", opts(), || {
            let budget = Arc::new(RetryBudget::new(&RetryPolicy {
                budget_burst: 1,
                ..RetryPolicy::default()
            }));
            let racers: Vec<_> = (0..2)
                .map(|_| {
                    let b = Arc::clone(&budget);
                    thread::spawn(move || b.try_acquire())
                })
                .collect();
            let wins: usize = racers
                .into_iter()
                .map(|h| usize::from(h.join().unwrap()))
                .sum();
            assert_eq!(wins, 1, "one token, one winner");
        });
        assert!(report.schedules_run > 0);
    }

    /// The supervisor failing an orphan races the callback completing
    /// it: the waiter observes exactly one outcome, served or
    /// `ShardFailed`, never both and never neither.
    #[test]
    fn supervisor_abort_vs_completion_resolves_once() {
        let report = check("supervisor-abort-vs-complete", opts(), || {
            let reg = Arc::new(InflightRegistry::default());
            let cell = TicketCell::new();
            let ticket = Ticket::new(cell.clone(), 9);
            reg.register(
                9,
                InflightEntry {
                    cell,
                    precision: Precision::F32,
                },
            );
            let callback = {
                let reg = Arc::clone(&reg);
                thread::spawn(move || {
                    if let Some(e) = reg.claim(9) {
                        e.cell.complete(Ok(Tensor::ones(&[1])));
                    }
                })
            };
            let teardown = {
                let reg = Arc::clone(&reg);
                thread::spawn(move || {
                    for e in reg.drain() {
                        e.cell.complete(Err(ServeError::ShardFailed));
                    }
                })
            };
            let out = ticket.wait();
            callback.join().unwrap();
            teardown.join().unwrap();
            assert!(
                matches!(out, Ok(_) | Err(ServeError::ShardFailed)),
                "exactly one owner resolved the ticket"
            );
        });
        assert!(report.schedules_run > 0);
    }
}
