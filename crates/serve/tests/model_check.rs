//! Interleaving tests for the serving stack's concurrent structures,
//! run under the deterministic model checker. Compiled only with the
//! `model-check` feature (or `--cfg pcnn_model_check`), where the
//! `pcnn-sync` facade routes every atomic, mutex, condvar, and thread
//! operation in this crate through the controlled scheduler — so each
//! `check` call explores real interleavings (and simulated weak-memory
//! reorderings) of the production code, not a reimplementation.
//!
//! Run with: `cargo test -p pcnn-serve --features model-check`.
#![cfg(any(pcnn_model_check, feature = "model-check"))]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use pcnn_serve::events::{EventCode, EventConfig, EventJournal, Severity};
use pcnn_serve::queue::{BoundedQueue, Pop, Priority};
use pcnn_serve::window::{WindowedCounter, WindowedHistogram};
use pcnn_sync::model::{check, CheckOptions};
use pcnn_sync::{thread, Arc};

fn opts(exhaustive: usize, random: usize) -> CheckOptions {
    CheckOptions {
        exhaustive_schedules: exhaustive,
        random_schedules: random,
        max_steps: 20_000,
        ..CheckOptions::default()
    }
}

/// Runs a check that must fail; returns the panic message (which
/// carries the replay instructions).
fn expect_failure(name: &str, o: CheckOptions, f: impl Fn() + Send + Sync + 'static) -> String {
    match catch_unwind(AssertUnwindSafe(|| check(name, o, f))) {
        Ok(report) => panic!(
            "model check '{name}' was expected to find a bug but passed \
             ({} schedules, exhausted={})",
            report.schedules_run, report.exhausted
        ),
        Err(p) => {
            if let Some(s) = p.downcast_ref::<String>() {
                s.clone()
            } else if let Some(s) = p.downcast_ref::<&str>() {
                (*s).to_string()
            } else {
                panic!("model check '{name}' failed with a non-string payload")
            }
        }
    }
}

/// Pulls the `PCNN_MC_SEED=<n>` replay seed out of a failure message.
fn replay_seed_of(msg: &str) -> u64 {
    let tail = msg
        .split("PCNN_MC_SEED=")
        .nth(1)
        .unwrap_or_else(|| panic!("failure message carries no replay seed: {msg}"));
    let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().expect("malformed replay seed")
}

/// The stranded-wakeup scenario this crate shipped before the
/// waiter-counting fix: two blocked consumers, two pushes, each push a
/// `notify_one`. Both signals can collapse onto the first consumer
/// (it absorbs the second while woken-but-not-yet-reacquired), and
/// without chained wakeups the second consumer sleeps forever over a
/// non-empty queue.
fn stranded_wakeup_scenario(q: Arc<BoundedQueue<u32>>) {
    let consumers: Vec<_> = (0..2)
        .map(|_| {
            let q = Arc::clone(&q);
            thread::spawn(move || match q.pop_wait(None) {
                Pop::Item(v) => v,
                other => panic!("consumer saw {other:?} on an open queue"),
            })
        })
        .collect();
    let producer = {
        let q = Arc::clone(&q);
        thread::spawn(move || {
            q.try_push(1, Priority::Normal).expect("push 1");
            q.try_push(2, Priority::Normal).expect("push 2");
        })
    };
    producer.join().unwrap();
    let mut got: Vec<u32> = consumers.into_iter().map(|c| c.join().unwrap()).collect();
    got.sort_unstable();
    assert_eq!(got, vec![1, 2]);
}

#[test]
fn queue_stranded_wakeup_bug_is_rediscovered() {
    let msg = expect_failure("queue-stranded-wakeup", opts(2_000, 2_000), || {
        stranded_wakeup_scenario(Arc::new(BoundedQueue::new_with_wakeup_bug(4)));
    });
    assert!(
        msg.contains("deadlock"),
        "the stranded consumer must surface as a deadlock: {msg}"
    );
    assert!(
        msg.contains("PCNN_MC_SEED=") || msg.contains("PCNN_MC_SCHEDULE="),
        "failure must print replay instructions: {msg}"
    );
}

#[test]
fn queue_stranded_wakeup_replays_from_its_seed() {
    // Deterministic replay end-to-end: harvest the seed the failing
    // exploration prints, then reproduce the failure from that seed
    // alone with exploration disabled. The harvest run skips the DFS
    // phase (whose failures replay by schedule path, not by seed) so
    // the bug is found by a seeded random/PCT schedule.
    let msg = expect_failure("queue-stranded-wakeup-harvest", opts(0, 4_000), || {
        stranded_wakeup_scenario(Arc::new(BoundedQueue::new_with_wakeup_bug(4)));
    });
    let seed = replay_seed_of(&msg);
    let replay = expect_failure(
        "queue-stranded-wakeup-replay",
        CheckOptions {
            replay_seed: Some(seed),
            ..CheckOptions::default()
        },
        || stranded_wakeup_scenario(Arc::new(BoundedQueue::new_with_wakeup_bug(4))),
    );
    assert!(
        replay.contains("deadlock"),
        "pinned seed {seed} must reproduce the stranded wakeup: {replay}"
    );
}

#[test]
fn queue_chained_wakeups_fix_passes() {
    // The exact scenario above, on the shipped (waiter-counting,
    // chained-wakeup) queue: no interleaving strands a consumer.
    let report = check("queue-chained-wakeup", opts(2_000, 1_000), || {
        stranded_wakeup_scenario(Arc::new(BoundedQueue::new(4)));
    });
    assert!(report.schedules_run > 0);
}

#[test]
fn queue_close_vs_concurrent_push_pop_loses_nothing() {
    // Close/drain contract under every interleaving: items admitted
    // before the close are all handed out before `Pop::Closed`, items
    // racing the close either land (and are drained) or bounce with
    // `PushError::Closed` — never silently vanish; and nobody hangs.
    let report = check("queue-close-drain", opts(3_000, 1_000), || {
        let q = Arc::new(BoundedQueue::new(2));
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                (0..2u32)
                    .filter(|&i| q.try_push(i, Priority::Normal).is_ok())
                    .count()
            })
        };
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut got = 0usize;
                loop {
                    match q.pop_wait(None) {
                        Pop::Item(_) => got += 1,
                        Pop::Closed => return got,
                        Pop::TimedOut => unreachable!("no timeout configured"),
                    }
                }
            })
        };
        q.close();
        let accepted = producer.join().unwrap();
        let drained = consumer.join().unwrap();
        assert_eq!(
            drained, accepted,
            "closed queue dropped admitted items (accepted {accepted}, drained {drained})"
        );
    });
    assert!(report.schedules_run > 0);
}

#[test]
fn window_counter_rotation_loses_no_increments() {
    // Two writers race to rotate the same slot to a new bucket (abs 0
    // and abs 2 share slot 0 in a 2-slot ring). Whoever wins the
    // rotation, both new-bucket events must survive — the lost-update
    // window between an epoch CAS and a separate zeroing store is what
    // the packed-word counter exists to close.
    let report = check("window-rotation", opts(3_000, 1_000), || {
        let c = Arc::new(WindowedCounter::with_geometry(100, 2));
        c.add_at(0, 5); // old lap of slot 0; must never leak forward
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || c.add_at(200, 1))
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(
            c.sum_over(200, Duration::from_nanos(100)),
            2,
            "an increment racing the rotation was lost or the old lap leaked in"
        );
    });
    assert!(report.schedules_run > 0);
}

#[test]
fn window_counter_concurrent_reader_never_sees_stale_lap() {
    // A reader concurrent with the rotation reads tag and count in one
    // word: it sees the old lap attributed to the old bucket or the
    // new lap attributed to the new bucket, never the old count under
    // the new tag.
    let report = check("window-rotation-reader", opts(3_000, 1_000), || {
        let c = Arc::new(WindowedCounter::with_geometry(100, 2));
        c.add_at(0, 5);
        let writer = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.add_at(200, 1))
        };
        let reader = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.sum_over(200, Duration::from_nanos(100)))
        };
        let mid = reader.join().unwrap();
        writer.join().unwrap();
        assert!(
            mid <= 1,
            "reader counted the old lap's events against the new bucket: {mid}"
        );
        assert_eq!(c.sum_over(200, Duration::from_nanos(100)), 1);
    });
    assert!(report.schedules_run > 0);
}

#[test]
fn event_journal_concurrent_emit_and_read_through_the_public_api() {
    // The forensics journal end-to-end: two writers emitting distinct
    // codes below every limit while a reader walks the ring. No
    // interleaving may lose an emission (both publish), coalesce it
    // (below the burst), or hand the reader a torn record — every
    // record the reader validates must be exactly one of the two
    // payloads, with `b = a + 1` intact.
    let report = check(
        "events-public-api",
        CheckOptions {
            exhaustive_schedules: 2_000,
            random_schedules: 1_000,
            max_steps: 20_000,
            ..CheckOptions::default()
        },
        || {
            let j = Arc::new(EventJournal::new(
                &EventConfig {
                    ring_capacity: 8,
                    rate_burst: 8,
                    ..EventConfig::default()
                },
                std::time::Instant::now(),
            ));
            let writers: Vec<_> = [EventCode::QueueFull, EventCode::Shed]
                .into_iter()
                .enumerate()
                .map(|(i, code)| {
                    let j = Arc::clone(&j);
                    let a = (i as u64 + 1) * 100;
                    thread::spawn(move || j.emit_at(50, code, Severity::Warn, a, a + 1))
                })
                .collect();
            let reader = {
                let j = Arc::clone(&j);
                thread::spawn(move || j.events())
            };
            let mid = reader.join().unwrap();
            for e in &mid {
                assert!(
                    (e.a == 100 || e.a == 200) && e.b == e.a + 1,
                    "reader validated a torn record: {e:?}"
                );
            }
            for w in writers {
                w.join().unwrap();
            }
            assert_eq!(j.emitted(), 2);
            assert_eq!(j.published(), 2, "an emission below every limit was lost");
            assert_eq!(j.suppressed(), 0);
            assert_eq!(j.dropped(), 0);
            let fin = j.events();
            assert_eq!(fin.len(), 2);
            assert!(fin.windows(2).all(|w| w[0].seq < w[1].seq));
        },
    );
    assert!(report.schedules_run > 0);
}

#[test]
fn window_histogram_rotation_loss_is_bounded() {
    // The histogram ring keeps the two-cell claim() scheme (its payload
    // is a whole LogHistogram), accepting that a sample racing the
    // rotation instant can be swept by the winner's clear. The model
    // checker pins the bound: of two samples racing a rotation, the
    // rotating winner's own sample always survives and no interleaving
    // corrupts the bucket beyond dropping the racer.
    let report = check("window-histogram-rotation", opts(3_000, 1_000), || {
        let h = Arc::new(WindowedHistogram::with_geometry(100, 2));
        h.record_at(0, 1_000); // old lap of slot 0
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let h = Arc::clone(&h);
                thread::spawn(move || h.record_at(200, 2_000))
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let merged = pcnn_serve::metrics::LogHistogram::new();
        h.merge_over(200, Duration::from_nanos(100), &merged);
        let n = merged.count();
        assert!(
            (1..=2).contains(&n),
            "rotation must keep the winner's sample and lose at most the racer: {n}"
        );
    });
    assert!(report.schedules_run > 0);
}

#[test]
fn shutdown_leftover_drain_vs_surviving_batcher_double_serves_nothing() {
    // The fault-tolerant shutdown path: when a shard died with its
    // breaker open, `shutdown` closes the queue and then sweeps
    // whatever is left with `try_pop` — while a surviving shard's
    // batcher may still be draining the same queue through `pop_wait`.
    // Under every interleaving, each admitted item must be handed to
    // exactly one of the two (served by the batcher, or failed as
    // aborted by the sweep), and the sweep must never hang.
    let report = check("shutdown-leftover-drain", opts(3_000, 1_000), || {
        let q = Arc::new(BoundedQueue::new(4));
        for i in 0..3u32 {
            q.try_push(i, Priority::Normal).unwrap();
        }
        let batcher = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut served = 0usize;
                loop {
                    match q.pop_wait(None) {
                        Pop::Item(_) => served += 1,
                        Pop::Closed => return served,
                        Pop::TimedOut => unreachable!("no timeout configured"),
                    }
                }
            })
        };
        // The shutdown side: close admissions, join nothing (the
        // batcher here stands in for a *surviving* shard that exits on
        // its own), sweep the leftovers.
        q.close();
        let mut swept = 0usize;
        while q.try_pop().is_some() {
            swept += 1;
        }
        let served = batcher.join().unwrap();
        assert_eq!(
            served + swept,
            3,
            "each admitted item resolves exactly once (served {served}, swept {swept})"
        );
    });
    assert!(report.schedules_run > 0);
}
