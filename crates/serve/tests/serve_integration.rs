//! Deterministic chaos suite for the fault-tolerant serving stack.
//!
//! Every test drives real servers through injected failures from
//! [`FaultPlan`] — batcher crashes, stalls, engine faults, forced
//! admission rejections — and asserts the supervision contract: **every
//! admitted request resolves exactly once** (success, attributed
//! failure, expiry, cancellation, or abort — never a hung ticket),
//! restarts are journaled and incident-captured, and traffic after
//! recovery runs at full parity.
//!
//! The injection points are deterministic (consumed at fixed spots in
//! the batcher loop / completion callback); the cross-thread timing
//! around them is real. Tests therefore poll observable state with
//! generous timeouts rather than sleeping fixed amounts, and assert
//! outcomes that hold on every interleaving.

use std::time::{Duration, Instant};

use pcnn_nn::models;
use pcnn_runtime::compile::compile_dense;
use pcnn_runtime::Engine;
use pcnn_serve::{
    BreakerState, EventCode, FaultPlan, Priority, RetryPolicy, ServeConfig, ServeError, Server,
    ShutdownMode, SupervisorConfig, Ticket,
};
use pcnn_tensor::Tensor;

fn server_with(threads: usize, config: ServeConfig) -> Server {
    let engine = Engine::new(compile_dense(&models::tiny_cnn(3, 4, 1)), threads);
    Server::start(engine, config)
}

fn input() -> Tensor {
    Tensor::ones(&[1, 3, 8, 8])
}

/// Polls `pred` until it holds or `timeout` elapses; returns whether it
/// held.
fn wait_for(timeout: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    pred()
}

/// Redeems a ticket that must resolve (any outcome) within `timeout` —
/// the "no ticket lost" assertion.
fn must_resolve(t: Ticket, timeout: Duration) -> Result<Tensor, ServeError> {
    match t.wait_timeout(timeout) {
        Ok(result) => result,
        Err(_) => panic!("ticket never resolved within {timeout:?} — a request was lost"),
    }
}

fn restart_count(server: &Server, shard: usize) -> u64 {
    server.shard_status(shard).restarts
}

fn journal_has(server: &Server, code: EventCode) -> bool {
    server
        .metrics()
        .events()
        .events()
        .iter()
        .any(|e| e.code == code)
}

/// The acceptance scenario: a shard batcher crash under load. Every
/// in-flight ticket resolves (completed by a callback that won the
/// claim race, or failed with `ShardFailed` by the supervisor's drain),
/// the restart lands in the journal and the incident ring, and traffic
/// after the respawn completes at full parity.
#[test]
fn shard_crash_under_load_loses_no_ticket_and_recovers() {
    let faults = FaultPlan::new();
    let server = server_with(
        2,
        ServeConfig {
            shards: 2,
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            queue_capacity: 1024,
            supervision: SupervisorConfig {
                stall_timeout: Duration::from_millis(500),
                ..SupervisorConfig::default()
            },
            faults: Some(faults.clone()),
            ..ServeConfig::default()
        },
    );
    let mut tickets = Vec::new();
    for i in 0..96 {
        if i == 32 {
            // Armed mid-load: shard 0's batcher panics at its next trip
            // through the loop top, with registered requests in flight.
            faults.crash_batcher(0, 1);
        }
        tickets.push(server.submit(input()).expect("admitted"));
    }
    let (mut completed, mut shard_failed) = (0u64, 0u64);
    for t in tickets {
        match must_resolve(t, Duration::from_secs(10)) {
            Ok(_) => completed += 1,
            Err(ServeError::ShardFailed) => shard_failed += 1,
            Err(e) => panic!("unexpected outcome: {e}"),
        }
    }
    assert_eq!(completed + shard_failed, 96, "every submit resolved");
    assert!(
        wait_for(Duration::from_secs(5), || restart_count(&server, 0) >= 1),
        "the supervisor restarted the crashed shard"
    );
    assert_eq!(faults.crashes_fired(), 1);
    assert!(journal_has(&server, EventCode::ShardRestart));
    assert!(
        server.incidents().captured() >= 1,
        "the restart triggered an incident capture"
    );
    assert_eq!(server.shard_status(0).breaker, BreakerState::Closed);
    // Full parity after recovery: both shards serve again.
    let after: Vec<Ticket> = (0..16).map(|_| server.submit(input()).unwrap()).collect();
    for t in after {
        must_resolve(t, Duration::from_secs(10)).expect("post-recovery traffic completes");
    }
    let report = server.shutdown(ShutdownMode::Drain);
    assert_eq!(report.completed, completed + 16);
    assert_eq!(report.failed, shard_failed);
}

/// A forced crash loop: deaths past the restart budget trip the
/// breaker; after `open_duration` a half-open probe respawns, serves,
/// and closes it again. The request queued while the (only) shard was
/// down is served by the probe — delayed, not lost.
#[test]
fn crash_loop_trips_breaker_and_half_open_probe_recovers() {
    let faults = FaultPlan::new();
    // Two crashes against a budget of one death per window: the first
    // death respawns, the second opens the breaker.
    faults.crash_batcher(0, 2);
    let server = server_with(
        1,
        ServeConfig {
            shards: 1,
            supervision: SupervisorConfig {
                stall_timeout: Duration::from_millis(200),
                max_restarts: 1,
                restart_window: Duration::from_secs(30),
                open_duration: Duration::from_millis(150),
                probe_batches: 1,
                ..SupervisorConfig::default()
            },
            faults: Some(faults.clone()),
            ..ServeConfig::default()
        },
    );
    assert!(
        wait_for(Duration::from_secs(5), || {
            server.shard_status(0).breaker == BreakerState::Open
        }),
        "two deaths inside the window open the breaker"
    );
    assert_eq!(faults.crashes_fired(), 2);
    // Admission stays open while the breaker is: the request waits in
    // the queue for the probe.
    let queued = server
        .submit(input())
        .expect("admission outlives the shard");
    let out = must_resolve(queued, Duration::from_secs(10));
    assert!(
        out.is_ok(),
        "the half-open probe served the backlog: {out:?}"
    );
    assert!(
        wait_for(Duration::from_secs(5), || {
            server.shard_status(0).breaker == BreakerState::Closed
        }),
        "a successful probe closes the breaker"
    );
    let status = server.shard_status(0);
    assert!(
        status.restarts >= 2,
        "one budgeted respawn plus the half-open probe (got {})",
        status.restarts
    );
    assert!(journal_has(&server, EventCode::CircuitBreaker));
    assert!(journal_has(&server, EventCode::ShardRestart));
    // Closed again means normal service.
    let t = server.submit(input()).unwrap();
    must_resolve(t, Duration::from_secs(10)).expect("served after recovery");
    let report = server.shutdown(ShutdownMode::Drain);
    assert!(report.completed >= 2);
}

/// A wedged batcher (no heartbeat progress while active) is declared
/// dead at the stall timeout and replaced; the stale thread retires via
/// the generation check when its stall ends.
#[test]
fn wedged_batcher_is_detected_and_replaced() {
    let faults = FaultPlan::new();
    let server = server_with(
        1,
        ServeConfig {
            shards: 1,
            supervision: SupervisorConfig {
                stall_timeout: Duration::from_millis(150),
                ..SupervisorConfig::default()
            },
            faults: Some(faults.clone()),
            ..ServeConfig::default()
        },
    );
    // Prime: one served request parks the batcher just past the fault
    // check, blocked on the empty queue.
    server.submit(input()).unwrap().wait().expect("primed");
    // The next request drags the batcher through a dispatch and back to
    // the loop top, where the armed stall holds it — active, beat going
    // stale — for far longer than the stall timeout.
    faults.stall_batcher(0, Duration::from_secs(1));
    let during = server.submit(input()).unwrap();
    match must_resolve(during, Duration::from_secs(10)) {
        Ok(_) | Err(ServeError::ShardFailed) => {}
        Err(e) => panic!("unexpected outcome: {e}"),
    }
    assert!(
        wait_for(Duration::from_secs(5), || restart_count(&server, 0) >= 1),
        "the stalled shard was declared wedged and replaced"
    );
    assert_eq!(faults.stalls_fired(), 1);
    assert!(journal_has(&server, EventCode::ShardRestart));
    // The replacement generation serves.
    let after = server.submit(input()).unwrap();
    must_resolve(after, Duration::from_secs(10)).expect("served by the new generation");
    server.shutdown(ShutdownMode::Drain);
}

/// A request whose deadline elapses before dispatch resolves with
/// `DeadlineExceeded` instead of occupying an engine pass, and the
/// expiry is visible in the journal, the metrics, and the drain report.
#[test]
fn expired_deadline_fails_fast_without_an_engine_pass() {
    let faults = FaultPlan::new();
    // Hold the batcher at startup so the deadline expires while queued.
    faults.stall_batcher(0, Duration::from_millis(400));
    let server = server_with(
        1,
        ServeConfig {
            shards: 1,
            faults: Some(faults),
            ..ServeConfig::default()
        },
    );
    let t = server
        .submit_with_deadline(
            input(),
            Priority::Normal,
            pcnn_serve::Precision::F32,
            Duration::from_millis(50),
        )
        .expect("admitted");
    match must_resolve(t, Duration::from_secs(10)) {
        Err(ServeError::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(journal_has(&server, EventCode::DeadlineExceeded));
    let snap = server.metrics().snapshot();
    assert_eq!(snap.expired, 1);
    assert_eq!(snap.completed, 0, "no engine pass was spent on it");
    let report = server.shutdown(ShutdownMode::Drain);
    assert_eq!(report.expired, 1);
}

/// `ServeConfig::default_deadline` stamps every plain `submit`.
#[test]
fn default_deadline_applies_to_plain_submits() {
    let faults = FaultPlan::new();
    faults.stall_batcher(0, Duration::from_millis(400));
    let server = server_with(
        1,
        ServeConfig {
            shards: 1,
            default_deadline: Some(Duration::from_millis(50)),
            faults: Some(faults),
            ..ServeConfig::default()
        },
    );
    let t = server.submit(input()).expect("admitted");
    assert!(matches!(
        must_resolve(t, Duration::from_secs(10)),
        Err(ServeError::DeadlineExceeded)
    ));
    let report = server.shutdown(ShutdownMode::Drain);
    assert_eq!(report.expired, 1);
}

/// A cancelled ticket is reclaimed at dequeue: the input is dropped
/// without an engine pass and the cancellation is counted.
#[test]
fn cancelled_ticket_is_reclaimed_at_dequeue() {
    let faults = FaultPlan::new();
    faults.stall_batcher(0, Duration::from_millis(300));
    let server = server_with(
        1,
        ServeConfig {
            shards: 1,
            faults: Some(faults),
            ..ServeConfig::default()
        },
    );
    let t = server.submit(input()).expect("admitted");
    assert!(
        t.cancel().is_none(),
        "cancel before dispatch finds the ticket unresolved"
    );
    assert!(
        wait_for(Duration::from_secs(5), || {
            server.metrics().snapshot().cancelled == 1
        }),
        "the batcher reclaimed the cancelled request at dequeue"
    );
    assert_eq!(server.metrics().snapshot().completed, 0);
    let report = server.shutdown(ShutdownMode::Drain);
    assert_eq!(report.cancelled, 1);
}

/// A transient engine fault retries on a different shard and succeeds:
/// the client sees plain success, the retry is metered and journaled.
#[test]
fn transient_fault_retries_on_another_shard_and_succeeds() {
    let faults = FaultPlan::new();
    // Trace IDs are 1-based in admission order: fault the first request
    // exactly once.
    faults.fail_request(1, 1);
    let server = server_with(
        2,
        ServeConfig {
            shards: 2,
            retry: RetryPolicy {
                max_attempts: 2,
                budget_ratio: 1.0,
                budget_burst: 4,
                ..RetryPolicy::default()
            },
            faults: Some(faults.clone()),
            ..ServeConfig::default()
        },
    );
    let t = server.submit(input()).expect("admitted");
    let out = must_resolve(t, Duration::from_secs(10));
    assert!(out.is_ok(), "the retry masked the fault: {out:?}");
    assert_eq!(faults.engine_faults_fired(), 1);
    assert!(wait_for(Duration::from_secs(2), || {
        server.metrics().snapshot().retries == 1
    }));
    assert!(journal_has(&server, EventCode::Retry));
    let report = server.shutdown(ShutdownMode::Drain);
    assert_eq!(report.completed, 1);
    assert_eq!(report.failed, 0, "a masked fault is not a failure");
}

/// With retries off (the default), the same injected fault surfaces as
/// `EngineFault` — the pre-existing contract is unchanged.
#[test]
fn without_retries_an_injected_fault_surfaces_to_the_client() {
    let faults = FaultPlan::new();
    faults.fail_request(1, 1);
    let server = server_with(
        1,
        ServeConfig {
            shards: 1,
            faults: Some(faults),
            ..ServeConfig::default()
        },
    );
    let t = server.submit(input()).expect("admitted");
    assert!(matches!(
        must_resolve(t, Duration::from_secs(10)),
        Err(ServeError::EngineFault)
    ));
    let report = server.shutdown(ShutdownMode::Drain);
    assert_eq!(report.failed, 1);
}

/// A fault that outlives the retry budget degrades to a plain failure
/// — retries never amplify a persistent fault indefinitely.
#[test]
fn persistent_fault_exhausts_attempts_and_fails() {
    let faults = FaultPlan::new();
    // Both attempts of request 1 fault.
    faults.fail_request(1, 2);
    let server = server_with(
        2,
        ServeConfig {
            shards: 2,
            retry: RetryPolicy {
                max_attempts: 2,
                budget_ratio: 1.0,
                budget_burst: 4,
                ..RetryPolicy::default()
            },
            faults: Some(faults.clone()),
            ..ServeConfig::default()
        },
    );
    let t = server.submit(input()).expect("admitted");
    assert!(matches!(
        must_resolve(t, Duration::from_secs(10)),
        Err(ServeError::EngineFault)
    ));
    assert_eq!(faults.engine_faults_fired(), 2);
    let report = server.shutdown(ShutdownMode::Drain);
    assert_eq!(report.failed, 1, "one request, one failure — not two");
}

/// Forced admission rejections consume exactly their budget.
#[test]
fn forced_queue_full_rejects_exactly_n_submissions() {
    let faults = FaultPlan::new();
    faults.force_queue_full(2);
    let server = server_with(
        1,
        ServeConfig {
            shards: 1,
            faults: Some(faults.clone()),
            ..ServeConfig::default()
        },
    );
    assert!(matches!(server.submit(input()), Err(ServeError::QueueFull)));
    assert!(matches!(server.submit(input()), Err(ServeError::QueueFull)));
    let t = server
        .submit(input())
        .expect("budget exhausted, admission resumes");
    must_resolve(t, Duration::from_secs(10)).expect("served");
    assert!(faults.exhausted());
    server.shutdown(ShutdownMode::Drain);
}

/// Supervision disabled: the slot bookkeeping stays inert, no monitor
/// thread runs, and a healthy server serves exactly as before.
#[test]
fn disabled_supervision_serves_normally() {
    let server = server_with(
        2,
        ServeConfig {
            shards: 2,
            supervision: SupervisorConfig {
                enabled: false,
                ..SupervisorConfig::default()
            },
            ..ServeConfig::default()
        },
    );
    let tickets: Vec<Ticket> = (0..16).map(|_| server.submit(input()).unwrap()).collect();
    for t in tickets {
        must_resolve(t, Duration::from_secs(10)).expect("served");
    }
    assert_eq!(server.shard_status(0).restarts, 0);
    assert_eq!(server.shard_status(1).generation, 0);
    let report = server.shutdown(ShutdownMode::Drain);
    assert_eq!(report.completed, 16);
}

/// The Prometheus rendering carries the new fault-tolerance series.
#[test]
fn prometheus_rendering_exposes_fault_metrics() {
    let server = server_with(1, ServeConfig::default());
    server.submit(input()).unwrap().wait().expect("served");
    let text = server.render_prometheus();
    for name in [
        "pcnn_shard_restarts_total",
        "pcnn_retries_total",
        "pcnn_deadline_exceeded_total",
        "pcnn_requests_cancelled_total",
        "pcnn_shard_breaker_state",
    ] {
        assert!(text.contains(name), "missing series {name}:\n{text}");
    }
    server.shutdown(ShutdownMode::Drain);
}
