//! Property tests for the bounded request queue: the three invariants
//! backpressure and ticketing rest on.
//!
//! * **Capacity** — under any interleaving of pushes and pops the live
//!   count never exceeds capacity, and a push is refused iff the queue
//!   is at capacity (or closed).
//! * **FIFO per priority** — popped items of one priority class appear
//!   in their push order, and High always precedes queued Normal.
//! * **No lost tickets** — every accepted item is popped exactly once,
//!   including across close(); rejected items come back to the caller.

use pcnn_serve::queue::{BoundedQueue, Pop, Priority, PushError};
use pcnn_serve::{ServeConfig, Server, SpanOutcome, TraceConfig};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

/// One scripted queue operation: push (with priority and id) or pop.
#[derive(Debug, Clone, Copy)]
enum OpKind {
    PushNormal,
    PushHigh,
    PopOne,
}

fn op_strategy() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        2 => Just(OpKind::PushNormal),
        1 => Just(OpKind::PushHigh),
        2 => Just(OpKind::PopOne),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn capacity_never_exceeded_and_full_iff_at_capacity(
        cap in 1usize..8,
        ops in prop::collection::vec(op_strategy(), 1..200),
    ) {
        let q: BoundedQueue<u32> = BoundedQueue::new(cap);
        let mut next_id = 0u32;
        let mut live = 0usize;
        for op in ops {
            match op {
                OpKind::PushNormal | OpKind::PushHigh => {
                    let pri = if matches!(op, OpKind::PushHigh) {
                        Priority::High
                    } else {
                        Priority::Normal
                    };
                    match q.try_push(next_id, pri) {
                        Ok(()) => {
                            live += 1;
                            prop_assert!(live <= cap, "accepted past capacity");
                        }
                        Err(PushError::Full(item)) => {
                            prop_assert_eq!(item, next_id, "rejected item must come back");
                            prop_assert_eq!(live, cap, "refused below capacity");
                        }
                        Err(PushError::Closed(_)) => unreachable!("queue never closed here"),
                    }
                    next_id += 1;
                }
                OpKind::PopOne => {
                    if q.try_pop().is_some() {
                        live -= 1;
                    } else {
                        prop_assert_eq!(live, 0, "pop missed a queued item");
                    }
                }
            }
            prop_assert_eq!(q.len(), live);
        }
    }

    #[test]
    fn fifo_per_priority_with_high_first(
        ops in prop::collection::vec(op_strategy(), 1..150),
    ) {
        // Large capacity: this property is about ordering, not admission.
        let q: BoundedQueue<(Priority, u32)> = BoundedQueue::new(1024);
        let mut next_id = 0u32;
        let mut last_popped = [None::<u32>; 2]; // per-priority watermark
        for op in ops {
            match op {
                OpKind::PushNormal | OpKind::PushHigh => {
                    let pri = if matches!(op, OpKind::PushHigh) {
                        Priority::High
                    } else {
                        Priority::Normal
                    };
                    q.try_push((pri, next_id), pri).expect("capacity is ample");
                    next_id += 1;
                }
                OpKind::PopOne => {
                    if let Some((pri, id)) = q.try_pop() {
                        let lane = (pri == Priority::Normal) as usize;
                        if let Some(prev) = last_popped[lane] {
                            prop_assert!(
                                id > prev,
                                "priority {pri:?} popped {id} after {prev}"
                            );
                        }
                        last_popped[lane] = Some(id);
                    }
                }
            }
        }
        // Drain the rest: everything High must precede everything Normal.
        let rest: Vec<(Priority, u32)> = std::iter::from_fn(|| q.try_pop()).collect();
        let first_normal = rest.iter().position(|(p, _)| *p == Priority::Normal);
        if let Some(first_n) = first_normal {
            prop_assert!(
                rest[first_n..].iter().all(|(p, _)| *p == Priority::Normal),
                "High item popped after a Normal one in final drain"
            );
        }
    }

    #[test]
    fn no_ticket_lost_across_concurrent_producers_consumers_and_close(
        cap in 1usize..32,
        per_producer in 1usize..40,
    ) {
        // 3 producers push distinct ids as fast as they can; 2 consumers
        // drain concurrently (the sharded-server shape: one batcher per
        // shard popping the same queue); the queue closes midway. Every
        // id must end up exactly once in (popped ∪ rejected), never
        // dropped, never duplicated.
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(cap));
        let producers: Vec<_> = (0..3u32)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut rejected = Vec::new();
                    for i in 0..per_producer as u32 {
                        let id = p * 10_000 + i;
                        match q.try_push(id, Priority::Normal) {
                            Ok(()) => {}
                            Err(PushError::Full(v)) | Err(PushError::Closed(v)) => {
                                rejected.push(v)
                            }
                        }
                    }
                    rejected
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut popped = Vec::new();
                    loop {
                        match q.pop_wait(None) {
                            Pop::Item(v) => popped.push(v),
                            Pop::Closed => break,
                            Pop::TimedOut => unreachable!("untimed pop"),
                        }
                    }
                    popped
                })
            })
            .collect();
        let mut rejected: Vec<u32> = Vec::new();
        for p in producers {
            rejected.extend(p.join().expect("producer"));
        }
        q.close();
        let mut popped: Vec<u32> = Vec::new();
        for c in consumers {
            popped.extend(c.join().expect("consumer"));
        }

        let mut all: Vec<u32> = popped.iter().chain(rejected.iter()).copied().collect();
        all.sort_unstable();
        let before_dedup = all.len();
        all.dedup();
        prop_assert_eq!(all.len(), before_dedup, "an id was popped twice");
        prop_assert_eq!(
            all.len(),
            3 * per_producer,
            "ids lost: {} popped + {} rejected != {} submitted",
            popped.len(),
            rejected.len(),
            3 * per_producer
        );
    }
}

// ---------------------------------------------------------------------
// Span-ordering properties of the flight recorder: under any server
// topology (shard count, batch size, request volume — multi-shard runs
// contend on the shared queue), every traced request's lifecycle is
// *complete* (one span per request survives to the ring) and *monotone*
// (admitted ≤ dequeued ≤ coalesced ≤ dispatched ≤ executed ≤ completed).
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn traced_spans_are_complete_monotone_and_unique(
        shards in 1usize..4,
        max_batch in 1usize..5,
        requests in 1usize..40,
    ) {
        let model = pcnn_nn::models::tiny_cnn(4, 4, 17);
        let graph = pcnn_runtime::compile::compile_dense(&model);
        let server = Server::start(
            pcnn_runtime::engine::Engine::new(graph, shards.max(2)),
            ServeConfig {
                max_batch,
                max_wait: Duration::from_micros(200),
                shards,
                trace: TraceConfig {
                    sample_every: 1, // trace every request
                    ring_capacity: 64,
                },
                ..ServeConfig::default()
            },
        );

        let mut ids = Vec::with_capacity(requests);
        let mut tickets = Vec::with_capacity(requests);
        for _ in 0..requests {
            let ticket = server
                .submit(pcnn_tensor::Tensor::ones(&[1, 3, 8, 8]))
                .expect("capacity is ample");
            ids.push(ticket.request_id());
            tickets.push(ticket);
        }
        for ticket in tickets {
            prop_assert!(ticket.wait().is_ok());
        }

        let spans = server.flight_recorder().spans();
        prop_assert_eq!(
            spans.len(),
            requests,
            "every traced request must retire exactly one span"
        );
        let submitted: HashSet<u64> = ids.iter().copied().collect();
        let mut seen = HashSet::new();
        for span in &spans {
            prop_assert!(submitted.contains(&span.id), "span id from a real ticket");
            prop_assert!(seen.insert(span.id), "span id {} recorded twice", span.id);
            prop_assert_eq!(span.outcome, SpanOutcome::Completed);
            prop_assert!((span.shard as usize) < shards);
            prop_assert!(span.batch_len >= 1 && span.batch_len as usize <= max_batch);
            prop_assert!(
                span.is_monotone(),
                "span {} not monotone: admitted={} dequeued={} coalesced={} \
                 dispatched={} executed={} completed={}",
                span.id,
                span.admitted_ns,
                span.dequeued_ns,
                span.coalesced_ns,
                span.dispatched_ns,
                span.executed_ns,
                span.completed_ns
            );
        }
        prop_assert_eq!(server.flight_recorder().requests(), requests as u64);
        prop_assert_eq!(server.flight_recorder().spans_dropped(), 0);
    }
}
