//! Profiler accounting suite: for every proxy network of the paper's
//! zoo, the per-layer phase times recorded by [`ExecProfiler`] must sum
//! to within 10% of the engine service time measured around the same
//! calls — the profiler is only trustworthy if its phase split accounts
//! for (essentially) all of the wall clock it claims to explain.

use pcnn_core::PrunePlan;
use pcnn_nn::models::{resnet18_proxy, tiny_cnn, vgg16_proxy, ResNetProxyConfig, VggProxyConfig};
use pcnn_nn::Model;
use pcnn_runtime::compile::{prune_and_compile, CompileOptions};
use pcnn_runtime::engine::Engine;
use pcnn_runtime::quant_conv::{Precision, QuantOptions};
use pcnn_tensor::{simd, Tensor};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::time::Instant;

fn random_input(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = SmallRng::seed_from_u64(seed);
    let len = shape.iter().product();
    Tensor::from_vec(
        (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        shape,
    )
}

/// Compiles `model`, serves `iters` single-image passes at `precision`
/// with profiling on, and checks the profiler's books against the
/// measured service time.
fn assert_profile_accounts(
    mut model: Model,
    prunable: usize,
    input_hw: usize,
    precision: Precision,
    iters: u32,
    seed: u64,
) {
    let plan = PrunePlan::uniform(prunable, 2, 32);
    let (graph, _, _) =
        prune_and_compile(&mut model, &plan, &CompileOptions::default()).expect("compile");
    let graph = match precision {
        Precision::F32 => graph,
        Precision::Int8 => graph.with_int8(&QuantOptions::default()),
    };
    let engine = Engine::new(graph, 2);
    engine.enable_profiling();
    assert!(engine.profiler().is_enabled());

    let x = random_input(&[1, 3, input_hw, input_hw], seed);
    // Warm-up pass outside the measurement, then reset so the books
    // cover exactly the timed window.
    let _ = engine.infer_with(&x, precision);
    engine.profiler().reset();

    let start = Instant::now();
    for _ in 0..iters {
        let _ = engine.infer_with(&x, precision);
    }
    let wall_ns = start.elapsed().as_nanos() as u64;

    let profile = engine.exec_profile();
    let total_ns = profile.total_ns(precision);
    assert!(total_ns > 0, "profiled time recorded");
    // The phases are nested strictly inside the measured window, so the
    // sum can never exceed it (beyond clock granularity) and must cover
    // at least 90% of it — the acceptance criterion.
    assert!(
        total_ns <= wall_ns + wall_ns / 50,
        "phase sum {total_ns}ns exceeds measured service time {wall_ns}ns"
    );
    assert!(
        total_ns * 10 >= wall_ns * 9,
        "phase sum {total_ns}ns covers <90% of measured service time {wall_ns}ns"
    );

    let slice = profile
        .precisions
        .iter()
        .find(|p| p.precision == precision.label())
        .expect("profiled lowering present");
    assert!(!slice.layers.is_empty());
    for layer in &slice.layers {
        assert_eq!(
            layer.calls,
            u64::from(iters),
            "layer {} ({}) ran once per pass",
            layer.layer,
            layer.label
        );
        assert_eq!(layer.images, u64::from(iters), "one image per pass");
        assert_eq!(
            layer.total_ns,
            layer.pad_ns + layer.kernel_ns + layer.epilogue_ns,
            "phase split sums to the layer total"
        );
        // Convolution layers must attribute their SIMD tier; everything
        // else stays on the "-" placeholder.
        if layer.simd_level != "-" {
            assert_eq!(layer.simd_level, simd::active().label());
        }
    }
    assert_eq!(profile.simd_level, simd::active().label());
}

#[test]
fn vgg16_proxy_profile_accounts_for_service_time() {
    let cfg = VggProxyConfig::default();
    assert_profile_accounts(
        vgg16_proxy(&cfg, 3),
        13,
        cfg.input_hw,
        Precision::F32,
        40,
        11,
    );
}

#[test]
fn resnet18_proxy_profile_accounts_for_service_time() {
    let cfg = ResNetProxyConfig::default();
    assert_profile_accounts(
        resnet18_proxy(&cfg, 4),
        17,
        cfg.input_hw,
        Precision::F32,
        40,
        12,
    );
}

#[test]
fn tiny_cnn_profile_accounts_for_service_time() {
    assert_profile_accounts(tiny_cnn(10, 4, 5), 2, 8, Precision::F32, 200, 13);
}

#[test]
fn int8_lowering_profile_accounts_for_service_time() {
    let cfg = VggProxyConfig::default();
    assert_profile_accounts(
        vgg16_proxy(&cfg, 6),
        13,
        cfg.input_hw,
        Precision::Int8,
        40,
        14,
    );
}

#[test]
fn profiler_disabled_records_nothing() {
    let mut model = tiny_cnn(4, 4, 9);
    let (graph, _, _) = prune_and_compile(
        &mut model,
        &PrunePlan::uniform(2, 2, 32),
        &CompileOptions::default(),
    )
    .expect("compile");
    let engine = Engine::new(graph, 2);
    let x = random_input(&[1, 3, 8, 8], 21);
    let _ = engine.infer(&x);
    let profile = engine.exec_profile();
    assert_eq!(profile.total_ns(Precision::F32), 0);
    assert!(profile
        .precisions
        .iter()
        .all(|p| p.layers.iter().all(|l| l.calls == 0)));
}
