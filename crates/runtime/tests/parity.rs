//! Parity suite: pattern-sparse execution must match the dense im2col
//! reference within 1e-5 for every proxy network of the paper's zoo
//! (VGG-16, ResNet-18, tiny CNN topologies) at n = 2 and n = 4, with
//! fusion on and off.

use pcnn_core::PrunePlan;
use pcnn_nn::models::{resnet18_proxy, tiny_cnn, vgg16_proxy, ResNetProxyConfig, VggProxyConfig};
use pcnn_nn::Model;
use pcnn_runtime::compile::{prune_and_compile, CompileOptions};
use pcnn_tensor::Tensor;
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn random_input(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = SmallRng::seed_from_u64(seed);
    let len = shape.iter().product();
    Tensor::from_vec(
        (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        shape,
    )
}

/// Moves the batch-norm running statistics off their initial values so
/// BN folding is exercised non-trivially.
fn warm_batchnorm(model: &mut Model, input_hw: usize, seed: u64) {
    for i in 0..3 {
        let x = random_input(&[2, 3, input_hw, input_hw], seed + i);
        let _ = model.forward(&x, true);
    }
}

fn assert_parity(mut model: Model, prunable: usize, n: usize, input_hw: usize, seed: u64) {
    warm_batchnorm(&mut model, input_hw, seed);
    let plan = PrunePlan::uniform(prunable, n, 32);

    for (fused, opts) in [
        (true, CompileOptions::default()),
        (
            false,
            CompileOptions {
                fuse_batchnorm: false,
                fuse_relu: false,
                ..Default::default()
            },
        ),
    ] {
        let mut m = model.clone();
        let (graph, report, _) = prune_and_compile(&mut m, &plan, &opts)
            .unwrap_or_else(|e| panic!("compile (fused={fused}): {e}"));
        assert_eq!(
            report.sparse_layers, prunable,
            "every prunable layer lowered sparse (fused={fused})"
        );
        assert_eq!(report.dense_fallbacks, 0);

        let x = random_input(&[2, 3, input_hw, input_hw], seed + 50);
        let want = m.forward(&x, false);
        let got = graph.run(&x);
        assert_eq!(got.shape(), want.shape());
        pcnn_tensor::assert_slices_close(got.as_slice(), want.as_slice(), 1e-5);
    }
}

#[test]
fn vgg16_proxy_parity_n2() {
    let cfg = VggProxyConfig::default();
    assert_parity(vgg16_proxy(&cfg, 1), 13, 2, cfg.input_hw, 10);
}

#[test]
fn vgg16_proxy_parity_n4() {
    let cfg = VggProxyConfig::default();
    assert_parity(vgg16_proxy(&cfg, 2), 13, 4, cfg.input_hw, 20);
}

#[test]
fn resnet18_proxy_parity_n2() {
    let cfg = ResNetProxyConfig::default();
    assert_parity(resnet18_proxy(&cfg, 3), 17, 2, cfg.input_hw, 30);
}

#[test]
fn resnet18_proxy_parity_n4() {
    let cfg = ResNetProxyConfig::default();
    assert_parity(resnet18_proxy(&cfg, 4), 17, 4, cfg.input_hw, 40);
}

#[test]
fn tiny_cnn_parity_n2() {
    assert_parity(tiny_cnn(10, 8, 5), 2, 2, 8, 50);
}

#[test]
fn tiny_cnn_parity_n4() {
    assert_parity(tiny_cnn(10, 8, 6), 2, 4, 8, 60);
}

#[test]
fn paper_various_plans_lower_end_to_end() {
    // The paper's Table I/II "various" rows: mixed n per layer.
    let cfg = VggProxyConfig::default();
    let mut model = vgg16_proxy(&cfg, 7);
    warm_batchnorm(&mut model, cfg.input_hw, 70);
    let plan = PrunePlan::vgg16_various();
    let (graph, report, _) =
        prune_and_compile(&mut model, &plan, &CompileOptions::default()).expect("compile");
    assert_eq!(report.sparse_layers, 13);
    let x = random_input(&[1, 3, cfg.input_hw, cfg.input_hw], 71);
    let want = model.forward(&x, false);
    let got = graph.run(&x);
    pcnn_tensor::assert_slices_close(got.as_slice(), want.as_slice(), 1e-5);
}

#[test]
fn batched_engine_matches_sequential_graph() {
    use pcnn_runtime::engine::Engine;
    let mut model = tiny_cnn(4, 8, 9);
    warm_batchnorm(&mut model, 8, 80);
    let plan = PrunePlan::uniform(2, 2, 32);
    let (graph, _, _) =
        prune_and_compile(&mut model, &plan, &CompileOptions::default()).expect("compile");
    let engine = Engine::new(graph, 4);
    let inputs: Vec<Tensor> = (0..16)
        .map(|i| random_input(&[1, 3, 8, 8], 90 + i))
        .collect();
    let sequential: Vec<Tensor> = inputs.iter().map(|x| engine.graph().run(x)).collect();
    let (parallel, stats) = engine.serve(inputs);
    assert_eq!(stats.requests, 16);
    for (a, b) in sequential.iter().zip(&parallel) {
        pcnn_tensor::assert_slices_close(a.as_slice(), b.as_slice(), 1e-6);
    }
}

/// Pattern-grouped execution must match the legacy oc-major walk **bit
/// for bit** on every zoo proxy: per output channel the grouped
/// schedule delivers the same `(ic, kernel)` contributions in the same
/// ascending-`ic` order through the same kernel dispatches, so even f32
/// rounding agrees. Runs both precisions when the graph carries int8.
fn assert_grouping_parity(mut model: Model, prunable: usize, n: usize, input_hw: usize, seed: u64) {
    use pcnn_runtime::compile::prune_and_compile_quant;
    use pcnn_runtime::{Precision, QuantOptions};
    warm_batchnorm(&mut model, input_hw, seed);
    let plan = PrunePlan::uniform(prunable, n, 32);
    let mut grouped_model = model.clone();
    let (grouped, _, _) = prune_and_compile_quant(
        &mut grouped_model,
        &plan,
        &CompileOptions::default(),
        &QuantOptions::default(),
    )
    .expect("grouped compile");
    let mut oc_model = model.clone();
    let (oc_major, _, _) = prune_and_compile_quant(
        &mut oc_model,
        &plan,
        &CompileOptions {
            pattern_grouped: false,
            ..Default::default()
        },
        &QuantOptions::default(),
    )
    .expect("oc-major compile");
    for batch in [1usize, 3] {
        let x = random_input(&[batch, 3, input_hw, input_hw], seed + 77 + batch as u64);
        for precision in [Precision::F32, Precision::Int8] {
            let a = grouped.run_with(&x, precision);
            let b = oc_major.run_with(&x, precision);
            assert_eq!(a.shape(), b.shape());
            for (i, (x1, x2)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
                assert_eq!(
                    x1.to_bits(),
                    x2.to_bits(),
                    "grouped/oc-major divergence at {i} ({x1} vs {x2}), \
                     precision {precision}, batch {batch}"
                );
            }
        }
    }
}

#[test]
fn vgg16_proxy_grouping_parity_n2() {
    let cfg = VggProxyConfig::default();
    assert_grouping_parity(vgg16_proxy(&cfg, 11), 13, 2, cfg.input_hw, 110);
}

#[test]
fn vgg16_proxy_grouping_parity_n4() {
    let cfg = VggProxyConfig::default();
    assert_grouping_parity(vgg16_proxy(&cfg, 12), 13, 4, cfg.input_hw, 120);
}

#[test]
fn resnet18_proxy_grouping_parity_n2() {
    let cfg = ResNetProxyConfig::default();
    assert_grouping_parity(resnet18_proxy(&cfg, 13), 17, 2, cfg.input_hw, 130);
}

#[test]
fn resnet18_proxy_grouping_parity_n4() {
    let cfg = ResNetProxyConfig::default();
    assert_grouping_parity(resnet18_proxy(&cfg, 14), 17, 4, cfg.input_hw, 140);
}

#[test]
fn tiny_cnn_grouping_parity_n2() {
    assert_grouping_parity(tiny_cnn(10, 8, 15), 2, 2, 8, 150);
}

#[test]
fn tiny_cnn_grouping_parity_n4() {
    assert_grouping_parity(tiny_cnn(10, 8, 16), 2, 4, 8, 160);
}
