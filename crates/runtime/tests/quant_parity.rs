//! Int8 parity suite: the quantised engine must match the
//! dequantise-then-f32 reference within 1e-5 for every proxy network of
//! the paper's zoo (VGG-16, ResNet-18, tiny CNN topologies) at n = 2 and
//! n = 4 — including layers with coarse-pruned (all-zero) kernels, whose
//! skip path must agree between the integer and reference datapaths.
//!
//! The reference executes the **same** quantisation decisions (per-layer
//! weight codes, per-image activation codes) in f32 arithmetic
//! ([`pcnn_runtime::ExecutableGraph::run_int8_reference`]), so any
//! disagreement beyond float rounding is a bug in the integer kernels,
//! not quantisation noise.

use pcnn_core::PrunePlan;
use pcnn_nn::models::{resnet18_proxy, tiny_cnn, vgg16_proxy, ResNetProxyConfig, VggProxyConfig};
use pcnn_nn::Model;
use pcnn_runtime::compile::{prune_and_compile_quant, CompileOptions};
use pcnn_runtime::{Engine, Precision, QuantOptions};
use pcnn_tensor::Tensor;
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn random_input(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = SmallRng::seed_from_u64(seed);
    let len = shape.iter().product();
    Tensor::from_vec(
        (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        shape,
    )
}

/// Moves the batch-norm running statistics off their initial values so
/// the folded BN scales/shifts the quantiser sees are non-trivial.
fn warm_batchnorm(model: &mut Model, input_hw: usize, seed: u64) {
    for i in 0..3 {
        let x = random_input(&[2, 3, input_hw, input_hw], seed + i);
        let _ = model.forward(&x, true);
    }
}

fn assert_int8_parity(mut model: Model, prunable: usize, n: usize, input_hw: usize, seed: u64) {
    warm_batchnorm(&mut model, input_hw, seed);
    let plan = PrunePlan::uniform(prunable, n, 32);
    let (graph, report, _) = prune_and_compile_quant(
        &mut model,
        &plan,
        &CompileOptions::default(),
        &QuantOptions::default(),
    )
    .unwrap_or_else(|e| panic!("compile: {e}"));
    assert_eq!(report.sparse_layers, prunable);
    assert_eq!(
        graph.quant_op_count(),
        prunable,
        "every pattern conv gained an int8 twin"
    );

    // Batched (n=2) input: per-image activation scales must hold inside
    // a batch too.
    let x = random_input(&[2, 3, input_hw, input_hw], seed + 50);
    let got = graph.run_with(&x, Precision::Int8);
    let want = graph.run_int8_reference(&x);
    assert_eq!(got.shape(), want.shape());
    pcnn_tensor::assert_slices_close(got.as_slice(), want.as_slice(), 1e-5);

    // The f32 lowering is untouched by enabling int8.
    let f32_out = graph.run_with(&x, Precision::F32);
    let f32_want = graph.run(&x);
    pcnn_tensor::assert_slices_close(f32_out.as_slice(), f32_want.as_slice(), 0.0);
}

#[test]
fn vgg16_proxy_int8_parity_n2() {
    let cfg = VggProxyConfig::default();
    assert_int8_parity(vgg16_proxy(&cfg, 1), 13, 2, cfg.input_hw, 110);
}

#[test]
fn vgg16_proxy_int8_parity_n4() {
    let cfg = VggProxyConfig::default();
    assert_int8_parity(vgg16_proxy(&cfg, 2), 13, 4, cfg.input_hw, 120);
}

#[test]
fn resnet18_proxy_int8_parity_n2() {
    let cfg = ResNetProxyConfig::default();
    assert_int8_parity(resnet18_proxy(&cfg, 3), 17, 2, cfg.input_hw, 130);
}

#[test]
fn resnet18_proxy_int8_parity_n4() {
    let cfg = ResNetProxyConfig::default();
    assert_int8_parity(resnet18_proxy(&cfg, 4), 17, 4, cfg.input_hw, 140);
}

#[test]
fn tiny_cnn_int8_parity_n2() {
    assert_int8_parity(tiny_cnn(10, 8, 5), 2, 2, 8, 150);
}

#[test]
fn tiny_cnn_int8_parity_n4() {
    assert_int8_parity(tiny_cnn(10, 8, 6), 2, 4, 8, 160);
}

/// Coarse-pruned (all-zero) kernels: zero out two output channels of
/// the first prunable conv *before* compiling, so both lowerings carry
/// skip flags, and check int8 still matches the reference — and that
/// the skips really registered.
#[test]
fn int8_parity_with_zero_kernel_layers() {
    let mut model = tiny_cnn(6, 8, 7);
    warm_batchnorm(&mut model, 8, 170);
    let plan = PrunePlan::uniform(2, 2, 32);
    // Prune first, then coarse-prune on top (the orthogonal fusion the
    // runtime skip path exists for), then compile the mutated model.
    let outcome = pcnn_core::pruner::prune_model(&mut model, &plan);
    {
        let mut convs = model.prunable_convs_mut();
        let conv = &mut convs[0];
        let per_oc = {
            let s = conv.shape();
            s.in_c * s.kernel_area()
        };
        let w = conv.weight_mut().as_mut_slice();
        w[..2 * per_oc].fill(0.0); // output channels 0 and 1
    }
    let (graph, _report) = pcnn_runtime::compile::compile_quant(
        &model,
        &outcome.sets,
        &CompileOptions::default(),
        &QuantOptions::default(),
    )
    .expect("compile");
    let summaries = graph.summary_at(Precision::Int8);
    assert!(
        summaries.iter().any(|s| s.contains("skip")),
        "int8 lowering records skipped kernels: {summaries:?}"
    );
    let x = random_input(&[2, 3, 8, 8], 171);
    let got = graph.run_with(&x, Precision::Int8);
    let want = graph.run_int8_reference(&x);
    pcnn_tensor::assert_slices_close(got.as_slice(), want.as_slice(), 1e-5);
}

/// Engine-level: batched int8 through the coalescing path equals
/// per-request int8 bit-for-bit (per-image activation scales make the
/// result batch-composition independent).
#[test]
fn engine_int8_coalescing_is_batch_invariant() {
    let mut model = vgg16_proxy(&VggProxyConfig::default(), 9);
    warm_batchnorm(&mut model, 16, 180);
    let plan = PrunePlan::uniform(13, 2, 32);
    let (graph, _, _) = prune_and_compile_quant(
        &mut model,
        &plan,
        &CompileOptions::default(),
        &QuantOptions::default(),
    )
    .expect("compile");
    let engine = Engine::new(graph, 3);
    let inputs: Vec<Tensor> = (0..7)
        .map(|i| random_input(&[1, 3, 16, 16], 190 + i))
        .collect();
    let single: Vec<Tensor> = inputs
        .iter()
        .map(|x| engine.infer_with(x, Precision::Int8))
        .collect();
    let mut scratch = pcnn_runtime::engine::BatchScratch::new();
    let coalesced = engine.infer_coalesced_at(Precision::Int8, inputs, &mut scratch);
    for (a, b) in single.iter().zip(&coalesced) {
        pcnn_tensor::assert_slices_close(a.as_slice(), b.as_slice(), 0.0);
    }
}
