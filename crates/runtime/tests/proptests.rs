//! Property tests for the runtime: kernel-registry round-trips over
//! arbitrary pattern assignments, and sparse/dense execution
//! equivalence under random geometry and weights.

use pcnn_core::pattern::{Pattern, PatternSet};
use pcnn_core::project::project_onto_set;
use pcnn_runtime::pattern_conv::PatternConv;
use pcnn_runtime::registry::{CompiledPattern, KernelRegistry};
use pcnn_tensor::conv::{conv2d_direct, Conv2dShape};
use pcnn_tensor::Tensor;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_pattern_roundtrips_through_the_registry(mask in 0u16..512) {
        let p = Pattern::new(mask, 9);
        let compiled = CompiledPattern::compile(p);
        prop_assert_eq!(compiled.reconstruct(), p);
        prop_assert_eq!(compiled.tap_count(), p.weight());
        // Tap order is SPM rank order: ascending kernel positions.
        let positions: Vec<usize> = compiled
            .taps()
            .iter()
            .map(|&(ky, kx)| ky * 3 + kx)
            .collect();
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&positions, &sorted);
        prop_assert_eq!(positions, p.positions());
    }

    #[test]
    fn random_assignment_executes_exactly(
        codes in prop::collection::vec(0usize..126, 6),
        vals in prop::collection::vec(-1.0f32..1.0, 6 * 9),
        xvals in prop::collection::vec(-1.0f32..1.0, 2 * 36),
    ) {
        // Assign each of the 3×2 kernels an arbitrary n=4 pattern, build
        // the conforming weight, and check sparse == dense execution.
        let set = PatternSet::full(9, 4);
        let mut w = Tensor::from_vec(vals, &[3, 2, 3, 3]);
        for (ki, kernel) in w.as_mut_slice().chunks_mut(9).enumerate() {
            set.get(codes[ki]).apply(kernel);
        }
        let shape = Conv2dShape::new(2, 3, 3, 1, 1);
        let x = Tensor::from_vec(xvals, &[1, 2, 6, 6]);
        let conv = PatternConv::from_dense(&w, shape, &set).expect("conforming weights");
        let got = conv.forward(&x);
        let want = conv2d_direct(&x, &w, None, &shape);
        for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4, "{} vs {}", a, b);
        }
    }

    #[test]
    fn projected_weights_execute_exactly_for_all_n(
        vals in prop::collection::vec(-1.0f32..1.0, 4 * 2 * 9),
        xvals in prop::collection::vec(-1.0f32..1.0, 2 * 25),
        n in 1usize..=5,
        stride in 1usize..=2,
    ) {
        let set = PatternSet::full(9, n);
        let mut w = Tensor::from_vec(vals, &[4, 2, 3, 3]);
        for kernel in w.as_mut_slice().chunks_mut(9) {
            let _ = project_onto_set(kernel, &set);
        }
        let shape = Conv2dShape::new(2, 4, 3, stride, 1);
        let x = Tensor::from_vec(xvals, &[1, 2, 5, 5]);
        let conv = PatternConv::from_dense(&w, shape, &set).expect("projected weights conform");
        let got = conv.forward(&x);
        let want = conv2d_direct(&x, &w, None, &shape);
        prop_assert_eq!(got.shape(), want.shape());
        for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4, "{} vs {}", a, b);
        }
    }

    #[test]
    fn full_registry_offsets_are_consistent(pw in 3usize..64) {
        let reg = KernelRegistry::full_3x3();
        for code in [0usize, 1, 7, 100, 511] {
            let c = reg.get(code);
            let offs = c.offsets(pw);
            for (&off, &(ky, kx)) in offs.iter().zip(c.taps()) {
                prop_assert_eq!(off, ky * pw + kx);
            }
        }
    }
}
