//! The layer compiler: lowering a (pruned) `pcnn_nn::Model` into an
//! executable graph.
//!
//! Lowering walks the model's layers and peephole-fuses the standard
//! conv→BN→ReLU triple into a single convolution op:
//!
//! * eval-mode batch norm is an affine `y = s·x + t` per channel, so the
//!   scale `s` folds into the convolution weights (and the SPM non-zero
//!   sequences) and the shift `t` becomes the conv bias;
//! * the ReLU becomes the convolution's epilogue.
//!
//! Every *prunable* convolution (3×3, in `Model::prunable_convs` order)
//! is paired with its distilled [`PatternSet`] and lowered to a
//! [`PatternConv`] through the kernel registry; non-prunable 1×1
//! convolutions and encode fallbacks lower to dense im2col ops. Kernels
//! zeroed by an orthogonal coarse-grained pass (see `pcnn_core::fuse`)
//! are skipped by the sparse executor, so fused coarse+pattern pruning
//! compounds at runtime exactly as it does in the paper's storage
//! accounting.

use crate::graph::ExecutableGraph;
use crate::ops::Op;
use crate::pattern_conv::PatternConv;
use crate::quant_conv::QuantOptions;
use pcnn_core::pattern::PatternSet;
use pcnn_core::plan::PrunePlan;
use pcnn_core::pruner;
use pcnn_core::spm::{EncodeSpmError, SpmLayer};
use pcnn_nn::layers::{BatchNorm2d, Conv2d};
use pcnn_nn::model::{Layer, Model};
use pcnn_tensor::Tensor;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Lowering failures.
#[derive(Debug, Clone)]
pub enum CompileError {
    /// The pattern-set list does not match the model's prunable layers.
    PlanMismatch {
        /// Prunable convolutions in the model.
        expected: usize,
        /// Pattern sets supplied.
        got: usize,
    },
    /// Strict mode: a layer's weights fit no pattern of its set.
    Encode {
        /// The offending layer's name.
        layer: String,
        /// The underlying SPM encode error.
        error: EncodeSpmError,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::PlanMismatch { expected, got } => write!(
                f,
                "pattern-set list covers {got} layers but the model has {expected} prunable convolutions"
            ),
            CompileError::Encode { layer, error } => {
                write!(f, "layer {layer} cannot be SPM-encoded: {error}")
            }
        }
    }
}

impl Error for CompileError {}

/// Compiler options.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Fold eval-mode batch norm into the preceding convolution.
    pub fuse_batchnorm: bool,
    /// Fuse a following ReLU into the convolution epilogue.
    pub fuse_relu: bool,
    /// Lower every convolution densely (the reference path used by the
    /// parity tests and speedup baselines).
    pub force_dense: bool,
    /// Fail compilation when a prunable layer cannot be SPM-encoded
    /// instead of falling back to a dense op.
    pub strict: bool,
    /// Lower pattern convolutions onto the pattern-grouped execution
    /// schedule (ic-major, per-pattern-ID kernel groups with packed
    /// weights — one offset-table load per group, each padded input
    /// plane streamed through all of its consumers). `false` keeps the
    /// legacy oc-major walk; results are bit-identical either way.
    pub pattern_grouped: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            fuse_batchnorm: true,
            fuse_relu: true,
            force_dense: false,
            strict: false,
            pattern_grouped: true,
        }
    }
}

impl CompileOptions {
    /// Options lowering everything to the dense reference path.
    pub fn dense_reference() -> Self {
        CompileOptions {
            force_dense: true,
            ..Default::default()
        }
    }
}

/// What the compiler did, plus SPM storage accounting over the sparse
/// layers (the runtime-side view of the paper's compression tables).
#[derive(Debug, Clone, Default)]
pub struct CompileReport {
    /// Layers lowered to pattern-sparse execution.
    pub sparse_layers: usize,
    /// Layers lowered densely (1×1, unpruned, or forced).
    pub dense_layers: usize,
    /// Prunable layers that fell back to dense because encoding failed.
    pub dense_fallbacks: usize,
    /// Kernels skipped as all-zero (orthogonal coarse pruning).
    pub skipped_kernels: usize,
    /// Total kernels across sparse layers.
    pub total_kernels: usize,
    /// Bits of packed non-zero weights (fp32) across sparse layers.
    pub spm_weight_bits: u64,
    /// Bits of per-kernel SPM codes across sparse layers.
    pub spm_index_bits: u64,
    /// Bits of pattern mapping tables across sparse layers.
    pub spm_table_bits: u64,
    /// Bits the same layers would cost dense (fp32).
    pub dense_bits: u64,
}

impl CompileReport {
    /// Weight compression of the sparse layers including index and
    /// table overhead (the paper's "with index" number, at fp32).
    pub fn compression(&self) -> f64 {
        let sparse = self.spm_weight_bits + self.spm_index_bits + self.spm_table_bits;
        if sparse == 0 {
            1.0
        } else {
            self.dense_bits as f64 / sparse as f64
        }
    }
}

/// Compiles a model whose prunable convolutions follow `sets` (one
/// [`PatternSet`] per prunable layer, in network order — the `sets`
/// field of [`pcnn_core::pruner::PruneOutcome`]).
///
/// # Errors
///
/// [`CompileError::PlanMismatch`] when `sets` does not cover the model's
/// prunable convolutions; [`CompileError::Encode`] in strict mode when a
/// layer's weights fit no pattern.
pub fn compile(
    model: &Model,
    sets: &[PatternSet],
    opts: &CompileOptions,
) -> Result<(ExecutableGraph, CompileReport), CompileError> {
    let prunable = model.prunable_convs().len();
    if sets.len() != prunable {
        return Err(CompileError::PlanMismatch {
            expected: prunable,
            got: sets.len(),
        });
    }
    let mut report = CompileReport::default();
    let mut next_set = 0usize;
    let ops = lower_layers(model.layers(), sets, &mut next_set, opts, &mut report)?;
    debug_assert_eq!(next_set, sets.len(), "every set consumed");
    Ok((ExecutableGraph::new(ops), report))
}

/// Compiles a model entirely onto the dense reference path (no pattern
/// sets required) — the baseline the benches and parity tests compare
/// against.
pub fn compile_dense(model: &Model) -> ExecutableGraph {
    let mut report = CompileReport::default();
    let mut next_set = 0usize;
    let opts = CompileOptions::dense_reference();
    let sets: Vec<PatternSet> = Vec::new();
    let ops = lower_layers_dense(model.layers(), &sets, &mut next_set, &opts, &mut report);
    ExecutableGraph::new(ops)
}

/// Hard-prunes `model` under `plan` (distillation + projection + masks,
/// via [`pcnn_core::pruner::prune_model`]) and compiles the result in
/// one step. Returns the graph, the compile report, and the prune
/// outcome for inspection.
///
/// # Errors
///
/// Propagates [`compile`] errors.
pub fn prune_and_compile(
    model: &mut Model,
    plan: &PrunePlan,
    opts: &CompileOptions,
) -> Result<(ExecutableGraph, CompileReport, pruner::PruneOutcome), CompileError> {
    let outcome = pruner::prune_model(model, plan);
    let (graph, report) = compile(model, &outcome.sets, opts)?;
    Ok((graph, report, outcome))
}

/// [`compile`] plus the quantised lowering: the f32 graph compiles as
/// usual, then every pattern convolution quantises per layer through
/// `pcnn_core::quant` (reusing its SPM codes and compiled registry) into
/// the graph's int8 op sequence. The returned graph runs at **either**
/// [`crate::Precision`] — one compiled topology, two datapaths.
///
/// # Errors
///
/// Propagates [`compile`] errors.
pub fn compile_quant(
    model: &Model,
    sets: &[PatternSet],
    opts: &CompileOptions,
    qopts: &QuantOptions,
) -> Result<(ExecutableGraph, CompileReport), CompileError> {
    let (graph, report) = compile(model, sets, opts)?;
    Ok((graph.with_int8(qopts), report))
}

/// [`prune_and_compile`] with the quantised lowering enabled — the
/// one-call path from a trainable model to a dual-precision engine.
///
/// # Errors
///
/// Propagates [`compile`] errors.
pub fn prune_and_compile_quant(
    model: &mut Model,
    plan: &PrunePlan,
    opts: &CompileOptions,
    qopts: &QuantOptions,
) -> Result<(ExecutableGraph, CompileReport, pruner::PruneOutcome), CompileError> {
    let outcome = pruner::prune_model(model, plan);
    let (graph, report) = compile_quant(model, &outcome.sets, opts, qopts)?;
    Ok((graph, report, outcome))
}

fn lower_layers(
    layers: &[Layer],
    sets: &[PatternSet],
    next_set: &mut usize,
    opts: &CompileOptions,
    report: &mut CompileReport,
) -> Result<Vec<Op>, CompileError> {
    let mut ops = Vec::new();
    let mut i = 0;
    while i < layers.len() {
        match &layers[i] {
            Layer::Conv2d(conv) => {
                // Peephole: conv [+ BN] [+ ReLU].
                let bn = match layers.get(i + 1) {
                    Some(Layer::BatchNorm2d(b)) => Some(b),
                    _ => None,
                };
                let relu_at = i + 1 + usize::from(bn.is_some());
                let relu = matches!(layers.get(relu_at), Some(Layer::Relu(_)));
                let set = take_set_for(conv, sets, next_set);
                ops.extend(lower_conv(conv, set, bn, relu, opts, report)?);
                i = relu_at + usize::from(relu);
            }
            Layer::BatchNorm2d(bn) => {
                let (scale, shift) = bn.eval_scale_shift();
                ops.push(Op::Affine { scale, shift });
                i += 1;
            }
            Layer::Relu(_) => {
                ops.push(Op::Relu);
                i += 1;
            }
            Layer::MaxPool2d(p) => {
                ops.push(Op::MaxPool { window: p.window() });
                i += 1;
            }
            Layer::GlobalAvgPool(_) => {
                ops.push(Op::GlobalAvgPool);
                i += 1;
            }
            Layer::Flatten(_) => {
                ops.push(Op::Flatten);
                i += 1;
            }
            Layer::Linear(l) => {
                ops.push(Op::Linear {
                    weight: Arc::new(l.weight().clone()),
                    bias: Arc::new(l.bias().clone()),
                });
                i += 1;
            }
            Layer::Residual(block) => {
                let (conv1, bn1, conv2, bn2, downsample) = block.parts();
                let set1 = take_set_for(conv1, sets, next_set);
                let mut main = lower_conv(conv1, set1, Some(bn1), true, opts, report)?;
                let set2 = take_set_for(conv2, sets, next_set);
                // The block's final ReLU runs after the skip add, so
                // conv2 carries none.
                main.extend(lower_conv(conv2, set2, Some(bn2), false, opts, report)?);
                let shortcut = match downsample {
                    Some((ds, ds_bn)) => lower_conv(ds, None, Some(ds_bn), false, opts, report)?,
                    None => Vec::new(),
                };
                ops.push(Op::Residual { main, shortcut });
                i += 1;
            }
        }
    }
    Ok(ops)
}

/// Infallible dense-only walk used by [`compile_dense`].
fn lower_layers_dense(
    layers: &[Layer],
    sets: &[PatternSet],
    next_set: &mut usize,
    opts: &CompileOptions,
    report: &mut CompileReport,
) -> Vec<Op> {
    lower_layers(layers, sets, next_set, opts, report)
        .expect("dense lowering cannot fail: no sets are consumed")
}

/// Pops the next pattern set when `conv` is a prunable (k ≥ 2) layer —
/// mirroring `Model::prunable_convs` order exactly.
fn take_set_for<'a>(
    conv: &Conv2d,
    sets: &'a [PatternSet],
    next_set: &mut usize,
) -> Option<&'a PatternSet> {
    if conv.shape().kernel >= 2 && *next_set < sets.len() {
        let s = &sets[*next_set];
        *next_set += 1;
        Some(s)
    } else {
        None
    }
}

/// Lowers one convolution (+ optional BN fold, + optional ReLU) to ops.
fn lower_conv(
    conv: &Conv2d,
    set: Option<&PatternSet>,
    bn: Option<&BatchNorm2d>,
    relu: bool,
    opts: &CompileOptions,
    report: &mut CompileReport,
) -> Result<Vec<Op>, CompileError> {
    let shape = *conv.shape();
    let mut weight = conv.weight().clone();
    let mut bias: Option<Vec<f32>> = conv.bias().map(|b| b.as_slice().to_vec());

    let fold_bn = bn.is_some() && opts.fuse_batchnorm;
    if let (Some(bn), true) = (bn, fold_bn) {
        let (scale, shift) = bn.eval_scale_shift();
        let per_oc = shape.in_c * shape.kernel_area();
        for (oc, chunk) in weight.as_mut_slice().chunks_mut(per_oc).enumerate() {
            for w in chunk.iter_mut() {
                *w *= scale[oc];
            }
        }
        let folded: Vec<f32> = match &bias {
            Some(b) => b
                .iter()
                .zip(scale.iter().zip(&shift))
                .map(|(&b, (&s, &t))| s * b + t)
                .collect(),
            None => shift,
        };
        bias = Some(folded);
    }

    // The conv op can only absorb the ReLU when nothing sits between it
    // and the activation (i.e. BN was folded or absent).
    let epilogue_relu = relu && opts.fuse_relu && (fold_bn || bn.is_none());

    let mut ops = Vec::with_capacity(3);
    let sparse = match (set, opts.force_dense) {
        (Some(set), false) if set.area() == shape.kernel_area() => {
            match SpmLayer::encode(&weight, set) {
                Ok(spm) => {
                    report.sparse_layers += 1;
                    report.total_kernels += spm.kernel_count();
                    report.spm_weight_bits += spm.weight_bits(32);
                    report.spm_index_bits += spm.index_bits();
                    report.spm_table_bits += spm.table_bits();
                    report.dense_bits += spm.dense_bits(32);
                    let mut pc = PatternConv::from_spm(spm, shape)
                        .with_relu(epilogue_relu)
                        .with_grouping(opts.pattern_grouped);
                    if let Some(b) = bias.clone() {
                        pc = pc.with_bias(b);
                    }
                    report.skipped_kernels += pc.skipped_kernels();
                    Some(Op::PatternConv(pc))
                }
                Err(error) => {
                    if opts.strict {
                        return Err(CompileError::Encode {
                            layer: conv.name.clone(),
                            error,
                        });
                    }
                    report.dense_fallbacks += 1;
                    None
                }
            }
        }
        _ => None,
    };
    match sparse {
        Some(op) => ops.push(op),
        None => {
            report.dense_layers += 1;
            ops.push(Op::DenseConv {
                weight: Arc::new(weight),
                bias: bias.map(|b| {
                    let len = b.len();
                    Arc::new(Tensor::from_vec(b, &[len]))
                }),
                shape,
                relu: epilogue_relu,
            });
        }
    }

    if let (Some(bn), false) = (bn, fold_bn) {
        let (scale, shift) = bn.eval_scale_shift();
        ops.push(Op::Affine { scale, shift });
    }
    if relu && !epilogue_relu {
        ops.push(Op::Relu);
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnn_nn::models;

    #[test]
    fn dense_compile_matches_model_eval() {
        let mut model = models::tiny_cnn(4, 4, 3);
        let graph = compile_dense(&model);
        let x = Tensor::ones(&[2, 3, 8, 8]);
        let want = model.forward(&x, false);
        let got = graph.run(&x);
        pcnn_tensor::assert_slices_close(got.as_slice(), want.as_slice(), 1e-5);
    }

    #[test]
    fn plan_mismatch_is_reported() {
        let model = models::tiny_cnn(4, 4, 3);
        let err = compile(&model, &[], &CompileOptions::default()).unwrap_err();
        match err {
            CompileError::PlanMismatch { expected, got } => {
                assert_eq!(expected, 2);
                assert_eq!(got, 0);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn pruned_compile_produces_sparse_layers() {
        let mut model = models::tiny_cnn(4, 4, 3);
        let plan = PrunePlan::uniform(2, 2, 32);
        let (graph, report, _outcome) =
            prune_and_compile(&mut model, &plan, &CompileOptions::default()).expect("compile");
        assert_eq!(report.sparse_layers, 2);
        assert_eq!(report.dense_fallbacks, 0);
        assert!(report.compression() > 1.0);
        let x = Tensor::ones(&[1, 3, 8, 8]);
        let want = model.forward(&x, false);
        let got = graph.run(&x);
        pcnn_tensor::assert_slices_close(got.as_slice(), want.as_slice(), 1e-4);
    }

    #[test]
    fn unfused_compile_still_matches() {
        let mut model = models::tiny_cnn(3, 4, 5);
        let plan = PrunePlan::uniform(2, 4, 16);
        let opts = CompileOptions {
            fuse_batchnorm: false,
            fuse_relu: false,
            ..Default::default()
        };
        let (graph, _report, _) = prune_and_compile(&mut model, &plan, &opts).expect("compile");
        let x = Tensor::ones(&[1, 3, 8, 8]);
        let want = model.forward(&x, false);
        let got = graph.run(&x);
        pcnn_tensor::assert_slices_close(got.as_slice(), want.as_slice(), 1e-5);
    }
}
