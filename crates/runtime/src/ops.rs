//! The executable operator set of a lowered network.
//!
//! A lowered graph is a straight-line sequence of [`Op`]s (residual
//! blocks nest two sub-sequences). Every op is immutable and `Sync`, so
//! one compiled graph serves arbitrarily many concurrent inference
//! requests — unlike the trainable `pcnn_nn::Model`, whose forward pass
//! requires `&mut self` for gradient caches.

use crate::pattern_conv::PatternConv;
use crate::profile::LayerStats;
use crate::quant_conv::QuantPatternConv;
use pcnn_tensor::conv::{conv2d_forward, Conv2dShape};
use pcnn_tensor::{ops as tops, pool, Tensor};
use std::sync::Arc;
use std::time::Instant;

/// One executable operator.
#[derive(Debug, Clone)]
pub enum Op {
    /// Dense im2col convolution (optionally with folded BN bias and
    /// fused ReLU).
    DenseConv {
        /// OIHW weights (already BN-scaled when folded). Behind an
        /// `Arc`: dense fallback layers carry over unchanged into the
        /// int8 lowering, so both op sequences of a dual-precision
        /// graph share one copy of these tensors.
        weight: Arc<Tensor>,
        /// Per-output-channel bias (shared like the weights).
        bias: Option<Arc<Tensor>>,
        /// Convolution geometry.
        shape: Conv2dShape,
        /// Fused ReLU epilogue.
        relu: bool,
    },
    /// Pattern-sparse convolution through the compiled kernel registry.
    PatternConv(PatternConv),
    /// Quantised pattern-sparse convolution: i8 weights × i8
    /// activations, i32 accumulation, requantised in the epilogue.
    QuantConv(QuantPatternConv),
    /// Per-channel affine `y = scale·x + shift` (unfused eval-mode BN).
    Affine {
        /// Per-channel scale.
        scale: Vec<f32>,
        /// Per-channel shift.
        shift: Vec<f32>,
    },
    /// Standalone ReLU.
    Relu,
    /// Non-overlapping max pooling.
    MaxPool {
        /// Window side = stride.
        window: usize,
    },
    /// Global average pooling (NCHW → NC11).
    GlobalAvgPool,
    /// NCHW → `N × (C·H·W)`.
    Flatten,
    /// Fully-connected layer.
    Linear {
        /// `out × in` weights (shared across lowerings like
        /// `DenseConv`'s).
        weight: Arc<Tensor>,
        /// `out` bias.
        bias: Arc<Tensor>,
    },
    /// Residual block: `relu(main(x) + shortcut(x))`; an empty shortcut
    /// is the identity.
    Residual {
        /// The conv1→bn1→relu→conv2→bn2 path, lowered.
        main: Vec<Op>,
        /// The optional 1×1 downsample path, lowered.
        shortcut: Vec<Op>,
    },
}

impl Op {
    /// Executes the op on an input activation.
    pub fn run(&self, x: &Tensor) -> Tensor {
        match self {
            Op::DenseConv {
                weight,
                bias,
                shape,
                relu,
            } => {
                let mut y = conv2d_forward(x, weight, bias.as_deref(), shape);
                if *relu {
                    for v in y.as_mut_slice() {
                        if *v < 0.0 {
                            *v = 0.0;
                        }
                    }
                }
                y
            }
            Op::PatternConv(conv) => conv.forward(x),
            Op::QuantConv(conv) => conv.forward(x),
            Op::Affine { scale, shift } => {
                let dims = x.shape();
                assert_eq!(dims.len(), 4, "affine expects NCHW");
                let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
                assert_eq!(c, scale.len(), "affine channel mismatch");
                let plane = h * w;
                let mut y = x.clone();
                for ni in 0..n {
                    for ci in 0..c {
                        let off = (ni * c + ci) * plane;
                        let (s, t) = (scale[ci], shift[ci]);
                        for v in y.as_mut_slice()[off..off + plane].iter_mut() {
                            *v = s * *v + t;
                        }
                    }
                }
                y
            }
            Op::Relu => tops::relu_forward(x),
            Op::MaxPool { window } => pool::maxpool2d_forward(x, *window).output,
            Op::GlobalAvgPool => pool::global_avgpool_forward(x),
            Op::Flatten => {
                let n = x.shape()[0];
                let rest: usize = x.shape()[1..].iter().product();
                x.reshaped(&[n, rest])
            }
            Op::Linear { weight, bias } => tops::linear_forward(x, weight, Some(bias)),
            Op::Residual { main, shortcut } => run_residual(main, shortcut, x, run_ops),
        }
    }

    /// Executes the op on the *reference* datapath: quantised
    /// convolutions run their dequantise-then-f32 reference
    /// ([`QuantPatternConv::forward_reference`]) instead of the integer
    /// kernels; every other op runs normally. The integer path must
    /// match this within float rounding — the parity suite's oracle.
    pub fn run_reference(&self, x: &Tensor) -> Tensor {
        match self {
            Op::QuantConv(conv) => conv.forward_reference(x),
            Op::Residual { main, shortcut } => run_residual(main, shortcut, x, run_ops_reference),
            other => other.run(x),
        }
    }

    /// A one-line description for graph summaries.
    pub fn describe(&self) -> String {
        match self {
            Op::DenseConv { shape, relu, .. } => format!(
                "DenseConv {}x{}x{}x{} s{} p{}{}",
                shape.out_c,
                shape.in_c,
                shape.kernel,
                shape.kernel,
                shape.stride,
                shape.pad,
                if *relu { " +relu" } else { "" }
            ),
            Op::PatternConv(c) => {
                let s = c.shape();
                format!(
                    "PatternConv {}x{}x{}x{} n={} |P|={}{}{}",
                    s.out_c,
                    s.in_c,
                    s.kernel,
                    s.kernel,
                    c.spm().nonzeros_per_kernel(),
                    c.spm().pattern_set().len(),
                    if c.has_relu() { " +relu" } else { "" },
                    if c.skipped_kernels() > 0 {
                        format!(" (skip {})", c.skipped_kernels())
                    } else {
                        String::new()
                    }
                )
            }
            Op::QuantConv(c) => {
                let s = c.shape();
                format!(
                    "QuantConv int8 {}x{}x{}x{} n={} |P|={} s_w={:.2e}{}{}",
                    s.out_c,
                    s.in_c,
                    s.kernel,
                    s.kernel,
                    c.nonzeros_per_kernel(),
                    c.pattern_count(),
                    c.weight_params().scale,
                    if c.has_relu() { " +relu" } else { "" },
                    if c.skipped_kernels() > 0 {
                        format!(" (skip {})", c.skipped_kernels())
                    } else {
                        String::new()
                    }
                )
            }
            Op::Affine { scale, .. } => format!("Affine c={}", scale.len()),
            Op::Relu => "ReLU".to_string(),
            Op::MaxPool { window } => format!("MaxPool {window}x{window}"),
            Op::GlobalAvgPool => "GlobalAvgPool".to_string(),
            Op::Flatten => "Flatten".to_string(),
            Op::Linear { weight, .. } => {
                format!("Linear {}->{}", weight.shape()[1], weight.shape()[0])
            }
            Op::Residual { main, shortcut } => format!(
                "Residual [{} main ops, {} shortcut ops]",
                main.len(),
                shortcut.len()
            ),
        }
    }
}

/// The residual combinator shared by both datapaths:
/// `relu(main(x) + shortcut(x))`, with an empty shortcut meaning
/// identity. `run_seq` is [`run_ops`] on the executing path and
/// [`run_ops_reference`] on the parity oracle — one implementation, so
/// the two can never drift.
fn run_residual(
    main: &[Op],
    shortcut: &[Op],
    x: &Tensor,
    run_seq: impl Fn(&[Op], &Tensor) -> Tensor,
) -> Tensor {
    let mut m = run_seq(main, x);
    let s = if shortcut.is_empty() {
        x.clone()
    } else {
        run_seq(shortcut, x)
    };
    m.axpy(1.0, &s);
    m.map_inplace(|v| v.max(0.0));
    m
}

/// Runs a sequence of ops. The input is only cloned when `ops` is
/// empty; otherwise the first op reads `x` directly (keeps a
/// per-request full-tensor copy off the serving hot path).
pub fn run_ops(ops: &[Op], x: &Tensor) -> Tensor {
    match ops.split_first() {
        None => x.clone(),
        Some((first, rest)) => {
            let mut cur = first.run(x);
            for op in rest {
                cur = op.run(&cur);
            }
            cur
        }
    }
}

/// [`run_ops`] with per-layer instrumentation: each op's wall time is
/// recorded into its [`LayerStats`] slot, with pattern/quant
/// convolutions additionally splitting pad/kernel/epilogue phases.
///
/// `idx` threads the flat slot cursor through residual recursion; the
/// slot order is `crate::profile::ExecProfiler::for_graph`'s flatten
/// order (main ops, shortcut ops, then one combine slot per residual
/// block) and the two must never drift.
pub fn run_ops_profiled(ops: &[Op], x: &Tensor, stats: &[LayerStats], idx: &mut usize) -> Tensor {
    match ops.split_first() {
        None => x.clone(),
        Some((first, rest)) => {
            let mut cur = run_op_profiled(first, x, stats, idx);
            for op in rest {
                cur = run_op_profiled(op, &cur, stats, idx);
            }
            cur
        }
    }
}

fn run_op_profiled(op: &Op, x: &Tensor, stats: &[LayerStats], idx: &mut usize) -> Tensor {
    let images = x.shape().first().copied().unwrap_or(1) as u64;
    match op {
        Op::Residual { main, shortcut } => {
            let mut m = run_ops_profiled(main, x, stats, idx);
            let s = if shortcut.is_empty() {
                x.clone()
            } else {
                run_ops_profiled(shortcut, x, stats, idx)
            };
            let slot = &stats[*idx];
            *idx += 1;
            let t0 = Instant::now();
            m.axpy(1.0, &s);
            m.map_inplace(|v| v.max(0.0));
            slot.record_pass(images, t0.elapsed().as_nanos() as u64);
            m
        }
        Op::PatternConv(conv) => {
            let slot = &stats[*idx];
            *idx += 1;
            conv.forward_profiled(x, slot)
        }
        Op::QuantConv(conv) => {
            let slot = &stats[*idx];
            *idx += 1;
            conv.forward_profiled(x, slot)
        }
        other => {
            let slot = &stats[*idx];
            *idx += 1;
            let t0 = Instant::now();
            let y = other.run(x);
            slot.record_pass(images, t0.elapsed().as_nanos() as u64);
            y
        }
    }
}

/// [`run_ops`] on the reference datapath (see [`Op::run_reference`]).
pub fn run_ops_reference(ops: &[Op], x: &Tensor) -> Tensor {
    match ops.split_first() {
        None => x.clone(),
        Some((first, rest)) => {
            let mut cur = first.run_reference(x);
            for op in rest {
                cur = op.run_reference(&cur);
            }
            cur
        }
    }
}

/// Maps an f32 op sequence to its int8 lowering: pattern-sparse
/// convolutions quantise ([`QuantPatternConv::from_pattern_conv`],
/// reusing their compiled codes and registries), residual blocks map
/// recursively, and every other op — dense 1×1 convolutions, pooling,
/// linear heads — carries over on the f32 path (their weights are a
/// sliver of the network next to the SPM layers, which is exactly why
/// the paper quantises the SPM sequences).
pub fn quantize_ops(ops: &[Op], opts: &crate::quant_conv::QuantOptions) -> Vec<Op> {
    ops.iter()
        .map(|op| match op {
            Op::PatternConv(pc) => Op::QuantConv(QuantPatternConv::from_pattern_conv(pc, opts)),
            Op::Residual { main, shortcut } => Op::Residual {
                main: quantize_ops(main, opts),
                shortcut: quantize_ops(shortcut, opts),
            },
            other => other.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_matches_manual() {
        let x = Tensor::ones(&[1, 2, 2, 2]);
        let op = Op::Affine {
            scale: vec![2.0, -1.0],
            shift: vec![0.5, 1.0],
        };
        let y = op.run(&x);
        assert_eq!(&y.as_slice()[..4], &[2.5; 4]);
        assert_eq!(&y.as_slice()[4..], &[0.0; 4]);
    }

    #[test]
    fn relu_and_flatten() {
        let x = Tensor::from_vec(vec![-1.0, 2.0, -3.0, 4.0], &[1, 1, 2, 2]);
        let y = Op::Relu.run(&x);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
        let f = Op::Flatten.run(&x);
        assert_eq!(f.shape(), &[1, 4]);
    }

    #[test]
    fn residual_identity_relu_of_doubled() {
        // main = empty shortcut + empty main: relu(x + x) with main = [].
        let x = Tensor::from_vec(vec![-2.0, 1.0], &[1, 1, 1, 2]);
        let op = Op::Residual {
            main: vec![],
            shortcut: vec![],
        };
        let y = op.run(&x);
        assert_eq!(y.as_slice(), &[0.0, 2.0]);
    }

    #[test]
    fn dense_conv_fused_relu_clamps() {
        let shape = Conv2dShape::new(1, 1, 1, 1, 0);
        let w = Tensor::from_vec(vec![-1.0], &[1, 1, 1, 1]);
        let op = Op::DenseConv {
            weight: Arc::new(w),
            bias: None,
            shape,
            relu: true,
        };
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let y = op.run(&x);
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
    }
}
