//! The executable operator set of a lowered network.
//!
//! A lowered graph is a straight-line sequence of [`Op`]s (residual
//! blocks nest two sub-sequences). Every op is immutable and `Sync`, so
//! one compiled graph serves arbitrarily many concurrent inference
//! requests — unlike the trainable `pcnn_nn::Model`, whose forward pass
//! requires `&mut self` for gradient caches.

use crate::pattern_conv::PatternConv;
use pcnn_tensor::conv::{conv2d_forward, Conv2dShape};
use pcnn_tensor::{ops as tops, pool, Tensor};

/// One executable operator.
#[derive(Debug, Clone)]
pub enum Op {
    /// Dense im2col convolution (optionally with folded BN bias and
    /// fused ReLU).
    DenseConv {
        /// OIHW weights (already BN-scaled when folded).
        weight: Tensor,
        /// Per-output-channel bias.
        bias: Option<Tensor>,
        /// Convolution geometry.
        shape: Conv2dShape,
        /// Fused ReLU epilogue.
        relu: bool,
    },
    /// Pattern-sparse convolution through the compiled kernel registry.
    PatternConv(PatternConv),
    /// Per-channel affine `y = scale·x + shift` (unfused eval-mode BN).
    Affine {
        /// Per-channel scale.
        scale: Vec<f32>,
        /// Per-channel shift.
        shift: Vec<f32>,
    },
    /// Standalone ReLU.
    Relu,
    /// Non-overlapping max pooling.
    MaxPool {
        /// Window side = stride.
        window: usize,
    },
    /// Global average pooling (NCHW → NC11).
    GlobalAvgPool,
    /// NCHW → `N × (C·H·W)`.
    Flatten,
    /// Fully-connected layer.
    Linear {
        /// `out × in` weights.
        weight: Tensor,
        /// `out` bias.
        bias: Tensor,
    },
    /// Residual block: `relu(main(x) + shortcut(x))`; an empty shortcut
    /// is the identity.
    Residual {
        /// The conv1→bn1→relu→conv2→bn2 path, lowered.
        main: Vec<Op>,
        /// The optional 1×1 downsample path, lowered.
        shortcut: Vec<Op>,
    },
}

impl Op {
    /// Executes the op on an input activation.
    pub fn run(&self, x: &Tensor) -> Tensor {
        match self {
            Op::DenseConv {
                weight,
                bias,
                shape,
                relu,
            } => {
                let mut y = conv2d_forward(x, weight, bias.as_ref(), shape);
                if *relu {
                    for v in y.as_mut_slice() {
                        if *v < 0.0 {
                            *v = 0.0;
                        }
                    }
                }
                y
            }
            Op::PatternConv(conv) => conv.forward(x),
            Op::Affine { scale, shift } => {
                let dims = x.shape();
                assert_eq!(dims.len(), 4, "affine expects NCHW");
                let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
                assert_eq!(c, scale.len(), "affine channel mismatch");
                let plane = h * w;
                let mut y = x.clone();
                for ni in 0..n {
                    for ci in 0..c {
                        let off = (ni * c + ci) * plane;
                        let (s, t) = (scale[ci], shift[ci]);
                        for v in y.as_mut_slice()[off..off + plane].iter_mut() {
                            *v = s * *v + t;
                        }
                    }
                }
                y
            }
            Op::Relu => tops::relu_forward(x),
            Op::MaxPool { window } => pool::maxpool2d_forward(x, *window).output,
            Op::GlobalAvgPool => pool::global_avgpool_forward(x),
            Op::Flatten => {
                let n = x.shape()[0];
                let rest: usize = x.shape()[1..].iter().product();
                x.reshaped(&[n, rest])
            }
            Op::Linear { weight, bias } => tops::linear_forward(x, weight, Some(bias)),
            Op::Residual { main, shortcut } => {
                let mut m = run_ops(main, x);
                let s = if shortcut.is_empty() {
                    x.clone()
                } else {
                    run_ops(shortcut, x)
                };
                m.axpy(1.0, &s);
                m.map_inplace(|v| v.max(0.0));
                m
            }
        }
    }

    /// A one-line description for graph summaries.
    pub fn describe(&self) -> String {
        match self {
            Op::DenseConv { shape, relu, .. } => format!(
                "DenseConv {}x{}x{}x{} s{} p{}{}",
                shape.out_c,
                shape.in_c,
                shape.kernel,
                shape.kernel,
                shape.stride,
                shape.pad,
                if *relu { " +relu" } else { "" }
            ),
            Op::PatternConv(c) => {
                let s = c.shape();
                format!(
                    "PatternConv {}x{}x{}x{} n={} |P|={}{}{}",
                    s.out_c,
                    s.in_c,
                    s.kernel,
                    s.kernel,
                    c.spm().nonzeros_per_kernel(),
                    c.spm().pattern_set().len(),
                    if c.has_relu() { " +relu" } else { "" },
                    if c.skipped_kernels() > 0 {
                        format!(" (skip {})", c.skipped_kernels())
                    } else {
                        String::new()
                    }
                )
            }
            Op::Affine { scale, .. } => format!("Affine c={}", scale.len()),
            Op::Relu => "ReLU".to_string(),
            Op::MaxPool { window } => format!("MaxPool {window}x{window}"),
            Op::GlobalAvgPool => "GlobalAvgPool".to_string(),
            Op::Flatten => "Flatten".to_string(),
            Op::Linear { weight, .. } => {
                format!("Linear {}->{}", weight.shape()[1], weight.shape()[0])
            }
            Op::Residual { main, shortcut } => format!(
                "Residual [{} main ops, {} shortcut ops]",
                main.len(),
                shortcut.len()
            ),
        }
    }
}

/// Runs a sequence of ops. The input is only cloned when `ops` is
/// empty; otherwise the first op reads `x` directly (keeps a
/// per-request full-tensor copy off the serving hot path).
pub fn run_ops(ops: &[Op], x: &Tensor) -> Tensor {
    match ops.split_first() {
        None => x.clone(),
        Some((first, rest)) => {
            let mut cur = first.run(x);
            for op in rest {
                cur = op.run(&cur);
            }
            cur
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_matches_manual() {
        let x = Tensor::ones(&[1, 2, 2, 2]);
        let op = Op::Affine {
            scale: vec![2.0, -1.0],
            shift: vec![0.5, 1.0],
        };
        let y = op.run(&x);
        assert_eq!(&y.as_slice()[..4], &[2.5; 4]);
        assert_eq!(&y.as_slice()[4..], &[0.0; 4]);
    }

    #[test]
    fn relu_and_flatten() {
        let x = Tensor::from_vec(vec![-1.0, 2.0, -3.0, 4.0], &[1, 1, 2, 2]);
        let y = Op::Relu.run(&x);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
        let f = Op::Flatten.run(&x);
        assert_eq!(f.shape(), &[1, 4]);
    }

    #[test]
    fn residual_identity_relu_of_doubled() {
        // main = empty shortcut + empty main: relu(x + x) with main = [].
        let x = Tensor::from_vec(vec![-2.0, 1.0], &[1, 1, 1, 2]);
        let op = Op::Residual {
            main: vec![],
            shortcut: vec![],
        };
        let y = op.run(&x);
        assert_eq!(y.as_slice(), &[0.0, 2.0]);
    }

    #[test]
    fn dense_conv_fused_relu_clamps() {
        let shape = Conv2dShape::new(1, 1, 1, 1, 0);
        let w = Tensor::from_vec(vec![-1.0], &[1, 1, 1, 1]);
        let op = Op::DenseConv {
            weight: w,
            bias: None,
            shape,
            relu: true,
        };
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let y = op.run(&x);
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
    }
}
