//! The batched inference engine: many concurrent requests over one
//! compiled graph.
//!
//! An [`Engine`] pins an [`ExecutableGraph`] behind an `Arc` and fans
//! inference requests out over the persistent work-stealing
//! [`ThreadPool`] from `pcnn_tensor::parallel`. This is the
//! "serve heavy traffic" configuration: the graph compiles once, worker
//! threads live for the engine's lifetime, and each request is an
//! independent job so an expensive request never blocks cheap ones
//! behind it (work stealing rebalances).

use crate::graph::ExecutableGraph;
use pcnn_tensor::parallel::ThreadPool;
use pcnn_tensor::Tensor;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Aggregate timing of one [`Engine::serve`] call.
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Requests served.
    pub requests: usize,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
    /// Mean per-request latency (time inside the graph, excluding queue
    /// wait).
    pub mean_latency: Duration,
    /// Slowest single request.
    pub max_latency: Duration,
}

impl ServeStats {
    /// Requests per second of wall-clock time.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.requests as f64 / self.wall.as_secs_f64()
        }
    }
}

/// A serving engine: one compiled graph + a persistent worker pool.
///
/// # Example
///
/// ```
/// use pcnn_nn::models;
/// use pcnn_runtime::compile::compile_dense;
/// use pcnn_runtime::engine::Engine;
/// use pcnn_tensor::Tensor;
///
/// let model = models::tiny_cnn(4, 4, 1);
/// let engine = Engine::new(compile_dense(&model), 2);
/// let out = engine.infer(&Tensor::ones(&[1, 3, 8, 8]));
/// assert_eq!(out.shape(), &[1, 4]);
/// ```
pub struct Engine {
    graph: Arc<ExecutableGraph>,
    pool: ThreadPool,
}

impl Engine {
    /// Builds an engine with `threads` workers (minimum 1).
    pub fn new(graph: ExecutableGraph, threads: usize) -> Self {
        Engine {
            graph: Arc::new(graph),
            pool: ThreadPool::new(threads),
        }
    }

    /// Builds an engine sized by `pcnn_tensor::parallel::num_threads`.
    pub fn with_default_threads(graph: ExecutableGraph) -> Self {
        Engine {
            graph: Arc::new(graph),
            pool: ThreadPool::with_default_threads(),
        }
    }

    /// The compiled graph.
    pub fn graph(&self) -> &ExecutableGraph {
        &self.graph
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Runs one request synchronously on the calling thread.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        self.graph.run(x)
    }

    /// Runs independent requests concurrently, returning outputs in
    /// request order.
    pub fn infer_batch(&self, inputs: Vec<Tensor>) -> Vec<Tensor> {
        let jobs: Vec<_> = inputs
            .into_iter()
            .map(|x| {
                let graph = self.graph.clone();
                move || graph.run(&x)
            })
            .collect();
        self.pool.run_batch(jobs)
    }

    /// Splits an NCHW batch into per-image requests, runs them
    /// concurrently, and reassembles the batched output — the
    /// throughput-oriented entry point benchmarked against the dense
    /// batched path.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank 4 or has an empty batch.
    pub fn infer_images(&self, x: &Tensor) -> Tensor {
        let dims = x.shape().to_vec();
        assert_eq!(dims.len(), 4, "input must be NCHW");
        let n = dims[0];
        assert!(n > 0, "empty batch");
        let img = dims[1..].iter().product::<usize>();
        let inputs: Vec<Tensor> = (0..n)
            .map(|i| {
                Tensor::from_vec(
                    x.as_slice()[i * img..(i + 1) * img].to_vec(),
                    &[1, dims[1], dims[2], dims[3]],
                )
            })
            .collect();
        let outputs = self.infer_batch(inputs);
        stack_outputs(&outputs)
    }

    /// Runs requests concurrently and reports serving statistics.
    pub fn serve(&self, inputs: Vec<Tensor>) -> (Vec<Tensor>, ServeStats) {
        let n = inputs.len();
        let start = Instant::now();
        let jobs: Vec<_> = inputs
            .into_iter()
            .map(|x| {
                let graph = self.graph.clone();
                move || {
                    let t0 = Instant::now();
                    let y = graph.run(&x);
                    (y, t0.elapsed())
                }
            })
            .collect();
        let results = self.pool.run_batch(jobs);
        let wall = start.elapsed();
        let mut outputs = Vec::with_capacity(n);
        let mut total = Duration::ZERO;
        let mut max = Duration::ZERO;
        for (y, lat) in results {
            total += lat;
            max = max.max(lat);
            outputs.push(y);
        }
        let stats = ServeStats {
            requests: n,
            wall,
            mean_latency: if n == 0 {
                Duration::ZERO
            } else {
                total / n as u32
            },
            max_latency: max,
        };
        (outputs, stats)
    }
}

/// Concatenates per-image outputs (batch dim 1 each) along the batch
/// dimension.
fn stack_outputs(outputs: &[Tensor]) -> Tensor {
    assert!(!outputs.is_empty(), "nothing to stack");
    let first = outputs[0].shape();
    assert_eq!(first[0], 1, "per-image outputs must have batch 1");
    let mut shape = first.to_vec();
    shape[0] = outputs.len();
    let mut data = Vec::with_capacity(outputs.iter().map(Tensor::len).sum());
    for out in outputs {
        assert_eq!(out.shape(), first, "inconsistent output shapes");
        data.extend_from_slice(out.as_slice());
    }
    Tensor::from_vec(data, &shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_dense;
    use pcnn_nn::models;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn random_input(shape: &[usize], seed: u64) -> Tensor {
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = shape.iter().product();
        Tensor::from_vec(
            (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
            shape,
        )
    }

    #[test]
    fn batch_outputs_preserve_request_order() {
        let model = models::tiny_cnn(3, 4, 7);
        let engine = Engine::new(compile_dense(&model), 4);
        let inputs: Vec<Tensor> = (0..12).map(|i| random_input(&[1, 3, 8, 8], i)).collect();
        let single: Vec<Tensor> = inputs.iter().map(|x| engine.infer(x)).collect();
        let batched = engine.infer_batch(inputs);
        for (a, b) in single.iter().zip(&batched) {
            pcnn_tensor::assert_slices_close(a.as_slice(), b.as_slice(), 1e-6);
        }
    }

    #[test]
    fn infer_images_equals_batched_forward() {
        let model = models::tiny_cnn(5, 4, 9);
        let engine = Engine::new(compile_dense(&model), 3);
        let x = random_input(&[6, 3, 8, 8], 42);
        let split = engine.infer_images(&x);
        let whole = engine.infer(&x);
        assert_eq!(split.shape(), whole.shape());
        pcnn_tensor::assert_slices_close(split.as_slice(), whole.as_slice(), 1e-5);
    }

    #[test]
    fn serve_reports_consistent_stats() {
        let model = models::tiny_cnn(2, 4, 11);
        let engine = Engine::new(compile_dense(&model), 2);
        let inputs: Vec<Tensor> = (0..8)
            .map(|i| random_input(&[1, 3, 8, 8], i + 100))
            .collect();
        let (outputs, stats) = engine.serve(inputs);
        assert_eq!(outputs.len(), 8);
        assert_eq!(stats.requests, 8);
        assert!(stats.throughput_rps() > 0.0);
        assert!(stats.max_latency >= stats.mean_latency);
    }
}
