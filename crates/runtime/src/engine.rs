//! The batched inference engine: many concurrent requests over one
//! compiled graph.
//!
//! An [`Engine`] pins an [`ExecutableGraph`] behind an `Arc` and fans
//! inference requests out over the persistent work-stealing
//! [`ThreadPool`] from `pcnn_tensor::parallel`. This is the
//! "serve heavy traffic" configuration: the graph compiles once, worker
//! threads live for the engine's lifetime, and each request is an
//! independent job so an expensive request never blocks cheap ones
//! behind it (work stealing rebalances).

use crate::graph::ExecutableGraph;
use crate::profile::{ExecProfile, ExecProfiler};
use crate::quant_conv::Precision;
use pcnn_tensor::parallel::ThreadPool;
use pcnn_tensor::Tensor;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The engine's single graph-pass seam: every inference entry point
/// funnels through here, so enabling the profiler instruments all of
/// them at once.
fn run_graph(
    graph: &ExecutableGraph,
    profiler: &ExecProfiler,
    x: &Tensor,
    precision: Precision,
) -> Tensor {
    if profiler.is_enabled() {
        graph.run_profiled(x, precision, profiler)
    } else {
        graph.run_with(x, precision)
    }
}

/// Aggregate timing of one [`Engine::serve`] call.
///
/// This is the *bulk, closed-loop* view: one synchronous call over a
/// pre-collected request vector. Online serving telemetry — per-request
/// queue-wait and end-to-end latency percentiles, throughput, and
/// rejection counts under real concurrent traffic — lives in
/// `pcnn-serve`'s `metrics` module, which absorbs and supersedes these
/// fields for the async front-end.
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Requests served.
    pub requests: usize,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
    /// Mean per-request latency (time inside the graph, excluding queue
    /// wait).
    pub mean_latency: Duration,
    /// Slowest single request.
    pub max_latency: Duration,
}

impl ServeStats {
    /// Requests per second of wall-clock time.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.requests as f64 / self.wall.as_secs_f64()
        }
    }
}

/// A serving engine: one compiled graph + a persistent worker pool.
///
/// # Example
///
/// ```
/// use pcnn_nn::models;
/// use pcnn_runtime::compile::compile_dense;
/// use pcnn_runtime::engine::Engine;
/// use pcnn_tensor::Tensor;
///
/// let model = models::tiny_cnn(4, 4, 1);
/// let engine = Engine::new(compile_dense(&model), 2);
/// let out = engine.infer(&Tensor::ones(&[1, 3, 8, 8]));
/// assert_eq!(out.shape(), &[1, 4]);
/// ```
pub struct Engine {
    graph: Arc<ExecutableGraph>,
    pool: ThreadPool,
    profiler: Arc<ExecProfiler>,
}

impl Engine {
    /// Builds an engine with `threads` workers (minimum 1).
    pub fn new(graph: ExecutableGraph, threads: usize) -> Self {
        let graph = Arc::new(graph);
        Engine {
            profiler: Arc::new(ExecProfiler::for_graph(&graph)),
            graph,
            pool: ThreadPool::new(threads),
        }
    }

    /// Builds an engine sized by `pcnn_tensor::parallel::num_threads`.
    pub fn with_default_threads(graph: ExecutableGraph) -> Self {
        let graph = Arc::new(graph);
        Engine {
            profiler: Arc::new(ExecProfiler::for_graph(&graph)),
            graph,
            pool: ThreadPool::with_default_threads(),
        }
    }

    /// Builds an engine around an already-shared compiled graph — the
    /// constructor shard builders use, so `n` shards hold one graph, not
    /// `n` copies of its weights and offset tables.
    pub fn from_shared(graph: Arc<ExecutableGraph>, threads: usize) -> Self {
        Engine {
            profiler: Arc::new(ExecProfiler::for_graph(&graph)),
            graph,
            pool: ThreadPool::new(threads),
        }
    }

    /// Splits this engine into `n` independent shards over the **same**
    /// compiled graph, partitioning the existing worker budget: each
    /// shard gets `threads() / n` workers (remainder spread from shard
    /// 0, minimum 1 per shard), and this engine's pool is torn down in
    /// exchange. Shards share weights through the `Arc` but own their
    /// worker pools, so a sharded server's dispatchers never contend on
    /// one pool's injector.
    pub fn into_shards(self, n: usize) -> Vec<Engine> {
        let n = n.max(1);
        let total = self.threads();
        let Engine {
            graph,
            pool,
            profiler,
        } = self;
        drop(pool); // join the old workers before spawning shard pools
        (0..n)
            .map(|i| {
                let threads = (total / n + usize::from(i < total % n)).max(1);
                let mut shard = Engine::from_shared(graph.clone(), threads);
                // Shards aggregate into one execution profile, exactly
                // like they share one compiled graph.
                shard.profiler = profiler.clone();
                shard
            })
            .collect()
    }

    /// Rebuilds this engine from scratch around the **same** shared
    /// compiled graph and execution profiler, with a fresh worker pool
    /// of the same size — the respawn seam a serving supervisor uses to
    /// replace a crashed or wedged shard. The old engine is untouched
    /// (its pool tears down whenever its last owner drops it); weights,
    /// offset tables, and accumulated profile data are shared, not
    /// copied, so a respawn costs thread spawns and nothing else.
    pub fn respawn(&self) -> Engine {
        Engine {
            graph: self.graph.clone(),
            profiler: self.profiler.clone(),
            pool: ThreadPool::new(self.threads()),
        }
    }

    /// The shared handle to the compiled graph — what a respawned shard
    /// is rebuilt from.
    pub fn shared_graph(&self) -> Arc<ExecutableGraph> {
        self.graph.clone()
    }

    /// The shared handle to the execution profiler (the `Arc` behind
    /// [`Engine::profiler`]), for owners that must outlive this engine
    /// — a serving incident recorder keeps this instead of the engine
    /// itself so a dead shard's pool is never pinned alive.
    pub fn profiler_handle(&self) -> Arc<ExecProfiler> {
        self.profiler.clone()
    }

    /// The compiled graph.
    pub fn graph(&self) -> &ExecutableGraph {
        &self.graph
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Whether this engine's graph can execute `precision` (f32 always;
    /// int8 when the graph was compiled with its quantised lowering).
    pub fn supports(&self, precision: Precision) -> bool {
        self.graph.supports(precision)
    }

    /// Turns on per-layer execution profiling: every subsequent graph
    /// pass — through any inference entry point — records per-layer
    /// phase timings into [`Engine::exec_profile`]. Takes `&self`: the
    /// switch is live on a serving engine.
    pub fn enable_profiling(&self) {
        self.profiler.set_enabled(true);
    }

    /// The engine's execution profiler (shared across shards created by
    /// [`Engine::into_shards`]).
    pub fn profiler(&self) -> &ExecProfiler {
        &self.profiler
    }

    /// The aggregated per-layer execution profile.
    pub fn exec_profile(&self) -> ExecProfile {
        self.profiler.snapshot()
    }

    /// Runs one request synchronously on the calling thread (f32).
    pub fn infer(&self, x: &Tensor) -> Tensor {
        run_graph(&self.graph, &self.profiler, x, Precision::F32)
    }

    /// Runs one request synchronously at the requested precision.
    ///
    /// # Panics
    ///
    /// Panics if the graph lacks the requested lowering (see
    /// [`Engine::supports`]).
    pub fn infer_with(&self, x: &Tensor, precision: Precision) -> Tensor {
        run_graph(&self.graph, &self.profiler, x, precision)
    }

    /// Runs independent requests concurrently, returning outputs in
    /// request order.
    pub fn infer_batch(&self, inputs: Vec<Tensor>) -> Vec<Tensor> {
        let jobs: Vec<_> = inputs
            .into_iter()
            .map(|x| {
                let graph = self.graph.clone();
                let profiler = self.profiler.clone();
                move || run_graph(&graph, &profiler, &x, Precision::F32)
            })
            .collect();
        self.pool.run_batch(jobs)
    }

    /// Splits an NCHW batch into per-image requests, runs them
    /// concurrently, and reassembles the batched output — the
    /// throughput-oriented entry point benchmarked against the dense
    /// batched path.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank 4 or has an empty batch.
    pub fn infer_images(&self, x: &Tensor) -> Tensor {
        let dims = x.shape().to_vec();
        assert_eq!(dims.len(), 4, "input must be NCHW");
        let n = dims[0];
        assert!(n > 0, "empty batch");
        let img = dims[1..].iter().product::<usize>();
        let inputs: Vec<Tensor> = (0..n)
            .map(|i| {
                Tensor::from_vec(
                    x.as_slice()[i * img..(i + 1) * img].to_vec(),
                    &[1, dims[1], dims[2], dims[3]],
                )
            })
            .collect();
        let outputs = self.infer_batch(inputs);
        stack_outputs(&outputs)
    }

    /// Coalesced execution: stacks same-shape single-image requests
    /// into contiguous NCHW sub-batches (at most one per worker), runs
    /// each sub-batch through the graph as **one** batched pass, and
    /// splits the outputs back into per-request tensors in submission
    /// order.
    ///
    /// This is the dispatch hook for dynamic micro-batchers
    /// (`pcnn-serve`): a batched graph pass amortises padded-plane
    /// construction, offset-table derivation, and per-op dispatch across
    /// the whole batch (see [`crate::PatternConv::forward_batch`]),
    /// which per-request [`Engine::infer_batch`] jobs cannot. `scratch`
    /// holds the stacking buffers and is reused across calls, so a
    /// steady-state batcher performs no stacking allocations.
    ///
    /// # Panics
    ///
    /// Panics if any input is not `1 × C × H × W` or the shapes differ
    /// across requests.
    pub fn infer_coalesced(&self, inputs: Vec<Tensor>, scratch: &mut BatchScratch) -> Vec<Tensor> {
        self.infer_coalesced_at(Precision::F32, inputs, scratch)
    }

    /// [`Engine::infer_coalesced`] at an explicit precision: the whole
    /// coalesced batch runs through the selected lowering of the shared
    /// graph.
    ///
    /// # Panics
    ///
    /// Panics on mixed/bad request shapes, or if the graph lacks the
    /// requested lowering.
    pub fn infer_coalesced_at(
        &self,
        precision: Precision,
        inputs: Vec<Tensor>,
        scratch: &mut BatchScratch,
    ) -> Vec<Tensor> {
        let n = inputs.len();
        if n == 0 {
            return Vec::new();
        }
        let mut stacked = self.stack_requests(inputs, &mut scratch.buffers);

        let batched: Vec<(Tensor, Vec<f32>)> = if stacked.len() == 1 {
            // A 1-chunk dispatch degenerates to one batched pass on the
            // calling thread.
            let x = stacked.pop().expect("one chunk");
            vec![(
                run_graph(&self.graph, &self.profiler, &x, precision),
                x.into_vec(),
            )]
        } else {
            let jobs: Vec<_> = stacked
                .into_iter()
                .map(|x| {
                    let graph = self.graph.clone();
                    let profiler = self.profiler.clone();
                    move || (run_graph(&graph, &profiler, &x, precision), x.into_vec())
                })
                .collect();
            self.pool.run_batch(jobs)
        };

        let mut outputs = Vec::with_capacity(n);
        for (y, buf) in batched {
            split_rows(&y, &mut outputs);
            scratch.buffers.push(buf);
        }
        outputs
    }

    /// Validates that `inputs` are same-shape `1 × C × H × W` requests
    /// and stacks them into at most one contiguous NCHW sub-batch per
    /// worker, drawing stacking storage from `buffers` (refilled by the
    /// caller once the batched tensors come back).
    fn stack_requests(&self, inputs: Vec<Tensor>, buffers: &mut Vec<Vec<f32>>) -> Vec<Tensor> {
        let n = inputs.len();
        let img_shape = inputs[0].shape().to_vec();
        assert_eq!(img_shape.len(), 4, "requests must be NCHW");
        assert_eq!(img_shape[0], 1, "requests must be single-image");
        for x in &inputs[1..] {
            assert_eq!(x.shape(), &img_shape[..], "mixed request shapes");
        }
        let img_len: usize = img_shape[1..].iter().product();

        let chunks = self.threads().min(n);
        let per = n.div_ceil(chunks);
        let mut stacked: Vec<Tensor> = Vec::with_capacity(chunks);
        for group in inputs.chunks(per) {
            let mut buf = buffers.pop().unwrap_or_default();
            buf.clear();
            buf.reserve(group.len() * img_len);
            for x in group {
                buf.extend_from_slice(x.as_slice());
            }
            let mut shape = img_shape.clone();
            shape[0] = group.len();
            stacked.push(Tensor::from_vec(buf, &shape));
        }
        stacked
    }

    /// Asynchronous [`Engine::infer_coalesced`]: stacks the same-shape
    /// single-image requests into chunked batches, submits the chunk
    /// passes to the worker pool, and **returns immediately**; `on_done`
    /// runs on the worker that finishes the last chunk, receiving the
    /// per-request outputs in submission order plus the stacking buffers
    /// for reuse.
    ///
    /// This is the pipelined dispatch hook for `pcnn-serve`: the
    /// batcher thread hands a batch to the engine and goes straight
    /// back to coalescing the next one, so queue management overlaps
    /// execution. `buffers` may be empty or hold recycled stacking
    /// buffers from earlier completions (any count; missing ones are
    /// allocated).
    ///
    /// Failure is attributed **per chunk**: chunk boundaries are
    /// deterministic (`threads().min(n)` chunks of `n.div_ceil(chunks)`
    /// requests in submission order), so when one chunk's graph pass
    /// panics, exactly that chunk's requests come back as `None` while
    /// every other request keeps its output — and the failed chunk's
    /// stacking buffer is still reclaimed, so the caller's buffer pool
    /// never shrinks.
    ///
    /// # Panics
    ///
    /// Panics if any input is not `1 × C × H × W` or shapes differ
    /// across requests.
    pub fn infer_coalesced_async<F>(&self, inputs: Vec<Tensor>, buffers: Vec<Vec<f32>>, on_done: F)
    where
        F: FnOnce(Vec<Option<Tensor>>, Vec<Vec<f32>>) + Send + 'static,
    {
        self.infer_coalesced_async_at(Precision::F32, inputs, buffers, on_done)
    }

    /// [`Engine::infer_coalesced_async`] at an explicit precision — the
    /// dispatch hook for precision-aware batchers: a batch coalesced
    /// from same-precision requests runs every chunk through the
    /// selected lowering of the shared graph.
    ///
    /// # Panics
    ///
    /// Panics if any input is not `1 × C × H × W` or shapes differ
    /// across requests. A missing int8 lowering surfaces as per-chunk
    /// failures (`None` outputs), not a panic of the caller.
    pub fn infer_coalesced_async_at<F>(
        &self,
        precision: Precision,
        inputs: Vec<Tensor>,
        buffers: Vec<Vec<f32>>,
        on_done: F,
    ) where
        F: FnOnce(Vec<Option<Tensor>>, Vec<Vec<f32>>) + Send + 'static,
    {
        let profiler = self.profiler.clone();
        self.coalesced_async_with(
            inputs,
            buffers,
            move |graph, x| run_graph(graph, &profiler, x, precision),
            on_done,
        )
    }

    /// [`Engine::infer_coalesced_async`] with the chunk pass injected —
    /// the seam that lets tests drive the completion machinery with a
    /// deterministically panicking pass.
    fn coalesced_async_with<R, F>(
        &self,
        inputs: Vec<Tensor>,
        mut buffers: Vec<Vec<f32>>,
        run_chunk: R,
        on_done: F,
    ) where
        R: Fn(&ExecutableGraph, &Tensor) -> Tensor + Clone + Send + 'static,
        F: FnOnce(Vec<Option<Tensor>>, Vec<Vec<f32>>) + Send + 'static,
    {
        let n = inputs.len();
        if n == 0 {
            on_done(Vec::new(), buffers);
            return;
        }
        let stacked = self.stack_requests(inputs, &mut buffers);

        struct Pending {
            /// Per-chunk `(batched_output_or_failure, reclaimed_stack_buffer)`.
            #[allow(clippy::type_complexity)]
            slots: Vec<Option<(Option<Tensor>, Vec<f32>)>>,
            /// Requests in each chunk, for expanding a failed chunk into
            /// per-request `None`s.
            rows: Vec<usize>,
            remaining: usize,
            spare_buffers: Vec<Vec<f32>>,
            #[allow(clippy::type_complexity)]
            on_done: Option<Box<dyn FnOnce(Vec<Option<Tensor>>, Vec<Vec<f32>>) + Send>>,
        }
        let total = stacked.len();
        let pending = Arc::new(std::sync::Mutex::new(Pending {
            slots: (0..total).map(|_| None).collect(),
            rows: stacked.iter().map(|x| x.shape()[0]).collect(),
            remaining: total,
            spare_buffers: buffers,
            on_done: Some(Box::new(on_done)),
        }));

        for (c, x) in stacked.into_iter().enumerate() {
            let graph = self.graph.clone();
            let pending = pending.clone();
            let run_chunk = run_chunk.clone();
            self.pool.execute(move || {
                // Contain a model panic so the completion callback always
                // fires; only this chunk's requests fail, and the chunk's
                // stacking buffer survives for reuse either way.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_chunk(&graph, &x)
                }));
                let mut p = pending.lock().expect("pending poisoned");
                p.slots[c] = Some((result.ok(), x.into_vec()));
                p.remaining -= 1;
                if p.remaining > 0 {
                    return;
                }
                let slots = std::mem::take(&mut p.slots);
                let rows = std::mem::take(&mut p.rows);
                let mut buffers = std::mem::take(&mut p.spare_buffers);
                let cb = p.on_done.take().expect("completion fires once");
                drop(p);
                let mut outputs = Vec::new();
                for (slot, rows) in slots.into_iter().zip(rows) {
                    let (y, buf) = slot.expect("every chunk reports");
                    match y {
                        Some(y) => {
                            let mut split = Vec::with_capacity(rows);
                            split_rows(&y, &mut split);
                            outputs.extend(split.into_iter().map(Some));
                        }
                        None => outputs.extend(std::iter::repeat_with(|| None).take(rows)),
                    }
                    buffers.push(buf);
                }
                cb(outputs, buffers);
            });
        }
    }

    /// Runs requests concurrently and reports serving statistics.
    pub fn serve(&self, inputs: Vec<Tensor>) -> (Vec<Tensor>, ServeStats) {
        let n = inputs.len();
        let start = Instant::now();
        let jobs: Vec<_> = inputs
            .into_iter()
            .map(|x| {
                let graph = self.graph.clone();
                let profiler = self.profiler.clone();
                move || {
                    let t0 = Instant::now();
                    let y = run_graph(&graph, &profiler, &x, Precision::F32);
                    (y, t0.elapsed())
                }
            })
            .collect();
        let results = self.pool.run_batch(jobs);
        let wall = start.elapsed();
        let mut outputs = Vec::with_capacity(n);
        let mut total = Duration::ZERO;
        let mut max = Duration::ZERO;
        for (y, lat) in results {
            total += lat;
            max = max.max(lat);
            outputs.push(y);
        }
        let stats = ServeStats {
            requests: n,
            wall,
            mean_latency: if n == 0 {
                Duration::ZERO
            } else {
                total / n as u32
            },
            max_latency: max,
        };
        (outputs, stats)
    }
}

/// Reusable stacking buffers for [`Engine::infer_coalesced`].
///
/// A dynamic batcher keeps one `BatchScratch` for the lifetime of its
/// dispatch loop; the per-chunk `Vec<f32>` buffers cycle through the
/// stacked input tensors and come back after every dispatch, so
/// steady-state serving allocates nothing to assemble batches.
#[derive(Debug, Default)]
pub struct BatchScratch {
    buffers: Vec<Vec<f32>>,
}

impl BatchScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        BatchScratch::default()
    }
}

/// Splits a batched `N × …` output into per-row `1 × …` tensors,
/// appended to `outputs` in row order.
fn split_rows(y: &Tensor, outputs: &mut Vec<Tensor>) {
    let rows = y.shape()[0];
    let mut out_shape = y.shape().to_vec();
    out_shape[0] = 1;
    let row_len: usize = out_shape[1..].iter().product();
    let data = y.as_slice();
    for r in 0..rows {
        outputs.push(Tensor::from_vec(
            data[r * row_len..(r + 1) * row_len].to_vec(),
            &out_shape,
        ));
    }
}

/// Concatenates per-image outputs (batch dim 1 each) along the batch
/// dimension.
fn stack_outputs(outputs: &[Tensor]) -> Tensor {
    assert!(!outputs.is_empty(), "nothing to stack");
    let first = outputs[0].shape();
    assert_eq!(first[0], 1, "per-image outputs must have batch 1");
    let mut shape = first.to_vec();
    shape[0] = outputs.len();
    let mut data = Vec::with_capacity(outputs.iter().map(Tensor::len).sum());
    for out in outputs {
        assert_eq!(out.shape(), first, "inconsistent output shapes");
        data.extend_from_slice(out.as_slice());
    }
    Tensor::from_vec(data, &shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_dense;
    use pcnn_nn::models;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn random_input(shape: &[usize], seed: u64) -> Tensor {
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = shape.iter().product();
        Tensor::from_vec(
            (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
            shape,
        )
    }

    #[test]
    fn batch_outputs_preserve_request_order() {
        let model = models::tiny_cnn(3, 4, 7);
        let engine = Engine::new(compile_dense(&model), 4);
        let inputs: Vec<Tensor> = (0..12).map(|i| random_input(&[1, 3, 8, 8], i)).collect();
        let single: Vec<Tensor> = inputs.iter().map(|x| engine.infer(x)).collect();
        let batched = engine.infer_batch(inputs);
        for (a, b) in single.iter().zip(&batched) {
            pcnn_tensor::assert_slices_close(a.as_slice(), b.as_slice(), 1e-6);
        }
    }

    #[test]
    fn infer_images_equals_batched_forward() {
        let model = models::tiny_cnn(5, 4, 9);
        let engine = Engine::new(compile_dense(&model), 3);
        let x = random_input(&[6, 3, 8, 8], 42);
        let split = engine.infer_images(&x);
        let whole = engine.infer(&x);
        assert_eq!(split.shape(), whole.shape());
        pcnn_tensor::assert_slices_close(split.as_slice(), whole.as_slice(), 1e-5);
    }

    #[test]
    fn infer_coalesced_matches_single_requests() {
        let model = models::tiny_cnn(4, 4, 5);
        let engine = Engine::new(compile_dense(&model), 3);
        let inputs: Vec<Tensor> = (0..7)
            .map(|i| random_input(&[1, 3, 8, 8], 50 + i))
            .collect();
        let single: Vec<Tensor> = inputs.iter().map(|x| engine.infer(x)).collect();
        let mut scratch = BatchScratch::new();
        let coalesced = engine.infer_coalesced(inputs, &mut scratch);
        assert_eq!(coalesced.len(), 7);
        for (a, b) in single.iter().zip(&coalesced) {
            assert_eq!(a.shape(), b.shape());
            pcnn_tensor::assert_slices_close(a.as_slice(), b.as_slice(), 1e-5);
        }
    }

    #[test]
    fn infer_coalesced_reuses_scratch_and_handles_edge_sizes() {
        let model = models::tiny_cnn(2, 4, 6);
        let engine = Engine::new(compile_dense(&model), 2);
        let mut scratch = BatchScratch::new();
        assert!(engine.infer_coalesced(Vec::new(), &mut scratch).is_empty());
        // Repeated dispatches of varying size through one scratch.
        for size in [1usize, 5, 2, 8] {
            let inputs: Vec<Tensor> = (0..size)
                .map(|i| random_input(&[1, 3, 8, 8], 90 + i as u64))
                .collect();
            let want: Vec<Tensor> = inputs.iter().map(|x| engine.infer(x)).collect();
            let got = engine.infer_coalesced(inputs, &mut scratch);
            for (a, b) in want.iter().zip(&got) {
                pcnn_tensor::assert_slices_close(a.as_slice(), b.as_slice(), 1e-5);
            }
        }
    }

    #[test]
    fn coalesced_async_matches_sync_and_returns_buffers() {
        let model = models::tiny_cnn(3, 4, 8);
        let engine = Engine::new(compile_dense(&model), 2);
        let inputs: Vec<Tensor> = (0..5)
            .map(|i| random_input(&[1, 3, 8, 8], 70 + i))
            .collect();
        let want: Vec<Tensor> = inputs.iter().map(|x| engine.infer(x)).collect();
        let (tx, rx) = std::sync::mpsc::channel();
        engine.infer_coalesced_async(inputs, Vec::new(), move |outputs, buffers| {
            tx.send((outputs, buffers)).expect("receiver alive");
        });
        let (outputs, buffers) = rx.recv().expect("completion fires");
        assert_eq!(outputs.len(), 5);
        assert_eq!(buffers.len(), 2, "both chunk buffers recycle");
        for (a, b) in want.iter().zip(&outputs) {
            let b = b.as_ref().expect("chunk pass succeeded");
            pcnn_tensor::assert_slices_close(a.as_slice(), b.as_slice(), 1e-5);
        }
    }

    /// A panicking chunk fails exactly its own requests: with 5 requests
    /// over 2 workers the chunks are [0..3) and [3..5), so a pass that
    /// dies on the 2-row chunk must return real outputs for requests
    /// 0–2, `None` for 3–4, and still hand back **both** stacking
    /// buffers. The pre-fix code emptied the whole batch and leaked the
    /// failed chunk's buffer.
    #[test]
    fn coalesced_async_panicking_chunk_fails_only_its_requests() {
        let model = models::tiny_cnn(3, 4, 8);
        let engine = Engine::new(compile_dense(&model), 2);
        let inputs: Vec<Tensor> = (0..5)
            .map(|i| random_input(&[1, 3, 8, 8], 80 + i))
            .collect();
        let want: Vec<Tensor> = inputs.iter().map(|x| engine.infer(x)).collect();
        let (tx, rx) = std::sync::mpsc::channel();
        engine.coalesced_async_with(
            inputs,
            vec![Vec::new()], // one recycled buffer seeds the pool
            |graph, x| {
                assert!(x.shape()[0] != 2, "chunk of 2 dies mid-pass");
                graph.run(x)
            },
            move |outputs, buffers| {
                tx.send((outputs, buffers)).expect("receiver alive");
            },
        );
        let (outputs, buffers) = rx.recv().expect("completion fires despite the panic");
        assert_eq!(outputs.len(), 5, "every request is attributed");
        for (i, out) in outputs.iter().enumerate() {
            if i < 3 {
                let y = out.as_ref().expect("surviving chunk keeps its outputs");
                pcnn_tensor::assert_slices_close(y.as_slice(), want[i].as_slice(), 1e-5);
            } else {
                assert!(out.is_none(), "request {i} belonged to the failed chunk");
            }
        }
        assert_eq!(
            buffers.len(),
            2,
            "the failed chunk's stacking buffer must be reclaimed too"
        );
    }

    #[test]
    fn precision_routes_to_the_right_lowering() {
        use crate::compile::{prune_and_compile_quant, CompileOptions};
        use crate::quant_conv::QuantOptions;
        use pcnn_core::PrunePlan;
        let mut model = models::tiny_cnn(4, 4, 3);
        let plan = PrunePlan::uniform(2, 2, 32);
        let (graph, _, _) = prune_and_compile_quant(
            &mut model,
            &plan,
            &CompileOptions::default(),
            &QuantOptions::default(),
        )
        .expect("compile");
        assert!(graph.quant_op_count() > 0);
        let engine = Engine::new(graph, 2);
        assert!(engine.supports(Precision::Int8));
        let inputs: Vec<Tensor> = (0..5)
            .map(|i| random_input(&[1, 3, 8, 8], 200 + i))
            .collect();
        // Int8 inference matches the dequantise-then-f32 reference …
        for x in &inputs {
            let got = engine.infer_with(x, Precision::Int8);
            let want = engine.graph().run_int8_reference(x);
            pcnn_tensor::assert_slices_close(got.as_slice(), want.as_slice(), 1e-5);
        }
        // … and the coalesced path routes whole batches through int8.
        let want: Vec<Tensor> = inputs
            .iter()
            .map(|x| engine.infer_with(x, Precision::Int8))
            .collect();
        let mut scratch = BatchScratch::new();
        let got = engine.infer_coalesced_at(Precision::Int8, inputs.clone(), &mut scratch);
        for (a, b) in want.iter().zip(&got) {
            pcnn_tensor::assert_slices_close(a.as_slice(), b.as_slice(), 1e-6);
        }
        // The async variant agrees too.
        let (tx, rx) = std::sync::mpsc::channel();
        engine.infer_coalesced_async_at(Precision::Int8, inputs, Vec::new(), move |outs, bufs| {
            tx.send((outs, bufs)).expect("receiver alive");
        });
        let (outs, _) = rx.recv().expect("completion fires");
        for (a, b) in want.iter().zip(&outs) {
            let b = b.as_ref().expect("chunk pass succeeded");
            pcnn_tensor::assert_slices_close(a.as_slice(), b.as_slice(), 1e-6);
        }
    }

    #[test]
    fn into_shards_partitions_workers_and_preserves_outputs() {
        let model = models::tiny_cnn(4, 4, 5);
        let engine = Engine::new(compile_dense(&model), 5);
        let x = random_input(&[1, 3, 8, 8], 123);
        let want = engine.infer(&x);
        let shards = engine.into_shards(3);
        assert_eq!(shards.len(), 3);
        // 5 workers over 3 shards: 2 + 2 + 1, nothing lost, each >= 1.
        let threads: Vec<usize> = shards.iter().map(Engine::threads).collect();
        assert_eq!(threads.iter().sum::<usize>(), 5);
        assert_eq!(threads, vec![2, 2, 1]);
        for shard in &shards {
            let got = shard.infer(&x);
            pcnn_tensor::assert_slices_close(got.as_slice(), want.as_slice(), 0.0);
        }
        // More shards than workers still yields one worker per shard.
        let shards = shards.into_iter().next().expect("shard 0").into_shards(4);
        assert!(shards.iter().all(|s| s.threads() == 1));
    }

    #[test]
    fn serve_reports_consistent_stats() {
        let model = models::tiny_cnn(2, 4, 11);
        let engine = Engine::new(compile_dense(&model), 2);
        let inputs: Vec<Tensor> = (0..8)
            .map(|i| random_input(&[1, 3, 8, 8], i + 100))
            .collect();
        let (outputs, stats) = engine.serve(inputs);
        assert_eq!(outputs.len(), 8);
        assert_eq!(stats.requests, 8);
        assert!(stats.throughput_rps() > 0.0);
        assert!(stats.max_latency >= stats.mean_latency);
    }
}
