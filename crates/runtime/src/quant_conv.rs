//! The executable **quantised** pattern-sparse convolution layer.
//!
//! [`QuantPatternConv`] is the int8 twin of
//! [`crate::pattern_conv::PatternConv`]: the same compiled topology —
//! SPM codes, kernel registry, tap offset tables, zero-kernel skip flags
//! — but the packed non-zero sequences quantised per layer to `i8`
//! through `pcnn_core::quant`. This is exactly the economy the paper's
//! SPM format was designed for: quantisation shrinks the *weight* bits
//! while the pattern codes (the index structure) stay fixed, so the
//! compiled kernels and their offset tables are shared verbatim with the
//! f32 path.
//!
//! Execution follows the standard integer-inference contract:
//!
//! 1. activations quantise per image (`i8`, symmetric, scale from that
//!    image's max-abs — so a request's result never depends on its
//!    batch peers), fused into the padded-plane construction the
//!    batched runtime performs anyway;
//! 2. every surviving tap contributes an `i8 × i8` MAC into an `i32`
//!    accumulator plane through the unrolled kernels of
//!    [`pcnn_tensor::direct::accumulate_plane_batch_dyn_i8`];
//! 3. requantisation maps accumulators back to `f32` (`acc · s_w ·
//!    s_a`), adds the folded batch-norm shift, and applies the fused
//!    ReLU ([`crate::quant_kernels::requantize_plane`]). Under the
//!    pattern-grouped schedule (the default) this epilogue is **folded
//!    into each output channel's final kernel dispatch**, so the
//!    accumulator planes are consumed while cache-hot instead of in a
//!    separate full pass.
//!
//! Kernels whose quantised sequence is entirely zero are skipped — the
//! orthogonal coarse-pruning economy survives quantisation (and can only
//! grow, since tiny weights may round to the zero code).

use crate::pattern_conv::PatternConv;
use crate::profile::{ConvPass, LayerStats};
use crate::quant_kernels::{
    per_image_activation_params_at, quantize_batch_planes_at, requantize_plane_at,
};
use crate::registry::{KernelRegistry, PatternSchedule};
use pcnn_core::quant::{dequantize, quantize_symmetric, QuantParams};
use pcnn_tensor::conv::{conv2d_direct, Conv2dShape};
use pcnn_tensor::direct::{accumulate_plane_batch_dyn_i8_at, padded_dims, BatchPlanes};
use pcnn_tensor::simd::{self, SimdLevel};
use pcnn_tensor::Tensor;
use std::time::Instant;

/// The numeric precision an executable graph runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// The f32 path: pattern kernels over float planes.
    #[default]
    F32,
    /// The quantised path: i8 weights × i8 activations, i32 accumulation.
    Int8,
}

impl Precision {
    /// Both precisions, in [`Precision::index`] order.
    pub const ALL: [Precision; 2] = [Precision::F32, Precision::Int8];

    /// Dense index (0 = f32, 1 = int8) for per-precision metric arrays.
    pub fn index(self) -> usize {
        match self {
            Precision::F32 => 0,
            Precision::Int8 => 1,
        }
    }

    /// Short label for telemetry and bench output.
    pub fn label(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Bit widths of the quantised lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantOptions {
    /// Weight bits (2..=8); weights quantise per layer at compile time.
    pub weight_bits: u32,
    /// Activation bits (2..=8); activations quantise per image at run
    /// time.
    pub act_bits: u32,
}

impl Default for QuantOptions {
    /// The paper's "8-bit quantization for common cases".
    fn default() -> Self {
        QuantOptions {
            weight_bits: 8,
            act_bits: 8,
        }
    }
}

/// Reusable scratch of the quantised batch path: the i8 padded planes
/// and the i32 accumulator planes, grown on first use and recycled
/// across calls.
#[derive(Debug, Default)]
pub struct QuantScratch {
    padded: Vec<i8>,
    acc: Vec<i32>,
}

impl QuantScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        QuantScratch::default()
    }
}

/// A compiled, immutable, thread-safe int8 sparse convolution.
#[derive(Debug, Clone)]
pub struct QuantPatternConv {
    registry: KernelRegistry,
    shape: Conv2dShape,
    /// Per-kernel SPM codes, shared verbatim with the f32 lowering.
    codes: Vec<u16>,
    /// Packed quantised non-zero sequences, kernel-major (`n` per kernel).
    qweights: Vec<i8>,
    /// Non-zeros per kernel (the paper's `n`).
    n: usize,
    wparams: QuantParams,
    act_bits: u32,
    /// Per-output-channel bias added in the requant epilogue (folded
    /// batch-norm shift and/or the conv's own bias) — kept in f32.
    bias: Option<Vec<f32>>,
    /// Fused ReLU applied in the requant epilogue.
    relu: bool,
    /// Per-kernel skip flags: all-zero quantised sequences.
    skip: Vec<bool>,
    /// Pattern-table size, for summaries.
    set_len: usize,
    /// The pattern-grouped execution order, rebuilt from the
    /// **quantised** skip flags (tiny weights may round to all-zero).
    schedule: PatternSchedule,
    /// Quantised non-zero weights packed in schedule-slot order.
    packed: Vec<i8>,
    /// Execute batches pattern-grouped (default) or oc-major.
    grouped: bool,
}

impl QuantPatternConv {
    /// Quantises a compiled [`PatternConv`] into its int8 twin: the SPM
    /// non-zero sequences quantise per layer to `weight_bits` while the
    /// pattern codes, registry, bias, and ReLU epilogue carry over
    /// unchanged.
    ///
    /// # Panics
    ///
    /// Panics if either bit width is outside `2..=8`.
    pub fn from_pattern_conv(pc: &PatternConv, opts: &QuantOptions) -> Self {
        assert!(
            (2..=8).contains(&opts.act_bits),
            "act_bits must be in 2..=8"
        );
        let spm = pc.spm();
        let n = spm.nonzeros_per_kernel();
        let shape = *pc.shape();
        let (qweights, wparams) = quantize_symmetric(spm.nonzeros(), opts.weight_bits);
        let skip: Vec<bool> = (0..spm.kernel_count())
            .map(|ki| qweights[ki * n..(ki + 1) * n].iter().all(|&q| q == 0))
            .collect();
        let schedule = PatternSchedule::build(spm.codes(), &skip, shape.out_c, shape.in_c);
        let mut packed = Vec::with_capacity(schedule.slot_count() * n);
        for (ic, oc) in schedule.slot_kernels() {
            let ki = oc * shape.in_c + ic;
            packed.extend_from_slice(&qweights[ki * n..(ki + 1) * n]);
        }
        QuantPatternConv {
            registry: pc.registry().clone(),
            shape,
            codes: spm.codes().to_vec(),
            qweights,
            n,
            wparams,
            act_bits: opts.act_bits,
            bias: pc.bias().map(<[f32]>::to_vec),
            relu: pc.has_relu(),
            skip,
            set_len: spm.pattern_set().len(),
            schedule,
            packed,
            grouped: pc.is_grouped(),
        }
    }

    /// Selects pattern-grouped (default, inherited from the source
    /// [`PatternConv`]) or oc-major batched execution. Results are
    /// identical either way (i32 accumulation is exact); grouped
    /// execution additionally folds the requantisation epilogue into
    /// each output channel's final kernel dispatch.
    pub fn with_grouping(mut self, grouped: bool) -> Self {
        self.grouped = grouped;
        self
    }

    /// Whether batched execution runs pattern-grouped.
    pub fn is_grouped(&self) -> bool {
        self.grouped
    }

    /// The pattern-grouped execution schedule (rebuilt from the
    /// quantised skip flags).
    pub fn schedule(&self) -> &PatternSchedule {
        &self.schedule
    }

    /// The convolution shape.
    pub fn shape(&self) -> &Conv2dShape {
        &self.shape
    }

    /// The per-layer weight quantisation parameters.
    pub fn weight_params(&self) -> QuantParams {
        self.wparams
    }

    /// Activation bit width.
    pub fn act_bits(&self) -> u32 {
        self.act_bits
    }

    /// Non-zeros per kernel (the paper's `n`).
    pub fn nonzeros_per_kernel(&self) -> usize {
        self.n
    }

    /// Size of the layer's pattern table.
    pub fn pattern_count(&self) -> usize {
        self.set_len
    }

    /// Whether a ReLU is fused into the requant epilogue.
    pub fn has_relu(&self) -> bool {
        self.relu
    }

    /// Number of kernels skipped as all-zero after quantisation.
    pub fn skipped_kernels(&self) -> usize {
        self.skip.iter().filter(|&&s| s).count()
    }

    /// Dequantises the packed sequences back to a dense OIHW tensor —
    /// the weights the f32 reference path executes.
    pub fn decode_weights(&self) -> Tensor {
        let k = self.shape.kernel;
        let area = self.shape.kernel_area();
        let mut out = Tensor::zeros(&[self.shape.out_c, self.shape.in_c, k, k]);
        let data = out.as_mut_slice();
        for (ki, &code) in self.codes.iter().enumerate() {
            for (rank, &(ky, kx)) in self.registry.get(code as usize).taps().iter().enumerate() {
                data[ki * area + ky * k + kx] =
                    self.qweights[ki * self.n + rank] as f32 * self.wparams.scale;
            }
        }
        out
    }

    /// Executes the integer datapath on an NCHW input, allocating fresh
    /// scratch. Batch callers with a dispatch loop should hold a
    /// [`QuantScratch`] and use [`QuantPatternConv::forward_batch`].
    ///
    /// # Panics
    ///
    /// Panics on input shape mismatch.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let dims = input.shape();
        assert_eq!(dims.len(), 4, "input must be NCHW");
        let (n, in_c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        assert_eq!(in_c, self.shape.in_c, "input channel mismatch");
        let (oh, ow) = self.shape.out_hw(h, w);
        let mut out = Tensor::zeros(&[n, self.shape.out_c, oh, ow]);
        let mut scratch = QuantScratch::new();
        self.forward_batch(input.as_slice(), n, h, w, out.as_mut_slice(), &mut scratch);
        out
    }

    /// The batched integer execution path, mirroring
    /// [`PatternConv::forward_batch`]: every plane of every image is
    /// quantised-and-padded once up front, kernels walk in the outer
    /// loops with images inside each compiled kernel dispatch, and one
    /// requantisation pass per output plane returns to f32.
    ///
    /// `input` is `n` contiguous `in_c × h × w` f32 images; `out` is `n`
    /// contiguous `out_c × oh × ow` f32 outputs, fully overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `input` or `out` have the wrong length.
    pub fn forward_batch(
        &self,
        input: &[f32],
        n: usize,
        h: usize,
        w: usize,
        out: &mut [f32],
        scratch: &mut QuantScratch,
    ) {
        self.forward_batch_at(simd::active(), self.grouped, input, n, h, w, out, scratch);
    }

    /// [`QuantPatternConv::forward_batch`] on the legacy **oc-major**
    /// kernel walk with the separate whole-tensor requantisation pass —
    /// the parity oracle and bench baseline for the grouped order.
    pub fn forward_batch_oc_major(
        &self,
        input: &[f32],
        n: usize,
        h: usize,
        w: usize,
        out: &mut [f32],
        scratch: &mut QuantScratch,
    ) {
        self.forward_batch_at(simd::active(), false, input, n, h, w, out, scratch);
    }

    /// The fully pinned batched integer entry point: SIMD tier and walk
    /// order chosen by the caller. The pattern-grouped order
    /// additionally **folds the requantisation epilogue into each
    /// output channel's final kernel dispatch**, turning the trailing
    /// full pass over every accumulator plane into a cache-hot per-plane
    /// tail — the fix for the tiny-plane int8 deficit, where that pass
    /// rivals the arithmetic itself.
    ///
    /// # Panics
    ///
    /// Panics if `input` or `out` have the wrong length.
    #[allow(clippy::too_many_arguments)] // bench/test entry point: every axis is load-bearing
    pub fn forward_batch_at(
        &self,
        level: SimdLevel,
        grouped: bool,
        input: &[f32],
        n: usize,
        h: usize,
        w: usize,
        out: &mut [f32],
        scratch: &mut QuantScratch,
    ) {
        self.forward_batch_impl(level, grouped, input, n, h, w, out, scratch, None);
    }

    /// [`QuantPatternConv::forward`] with per-phase instrumentation into
    /// a profiler slot — the profiled graph walk's entry point. The pad
    /// phase covers activation quantisation, padded-plane construction,
    /// and accumulator setup; the epilogue is the requantisation tail.
    pub(crate) fn forward_profiled(&self, input: &Tensor, stats: &LayerStats) -> Tensor {
        let start = Instant::now();
        let dims = input.shape();
        assert_eq!(dims.len(), 4, "input must be NCHW");
        let (n, in_c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        assert_eq!(in_c, self.shape.in_c, "input channel mismatch");
        let (oh, ow) = self.shape.out_hw(h, w);
        let mut out = Tensor::zeros(&[n, self.shape.out_c, oh, ow]);
        let mut scratch = QuantScratch::new();
        self.forward_batch_impl(
            simd::active(),
            self.grouped,
            input.as_slice(),
            n,
            h,
            w,
            out.as_mut_slice(),
            &mut scratch,
            Some((stats, start)),
        );
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn forward_batch_impl(
        &self,
        level: SimdLevel,
        grouped: bool,
        input: &[f32],
        n: usize,
        h: usize,
        w: usize,
        out: &mut [f32],
        scratch: &mut QuantScratch,
        profile: Option<(&LayerStats, Instant)>,
    ) {
        let shape = &self.shape;
        let (oh, ow) = shape.out_hw(h, w);
        let in_img = shape.in_c * h * w;
        let out_img = shape.out_c * oh * ow;
        let out_plane_len = oh * ow;
        assert_eq!(input.len(), n * in_img, "input length mismatch");
        assert_eq!(out.len(), n * out_img, "output length mismatch");

        // Per-image activation quantisation, fused into plane padding:
        // each request keeps its own scale so batching never changes
        // its result.
        let aparams = per_image_activation_params_at(level, input, n, self.act_bits);
        quantize_batch_planes_at(
            level,
            input,
            n,
            shape.in_c,
            h,
            w,
            shape.pad,
            &aparams,
            &mut scratch.padded,
        );

        let (ph, pw) = padded_dims(h, w, shape.pad);
        let offsets = self.registry.offset_table(pw);
        let plane_len = ph * pw;
        let in_c = shape.in_c;
        let row_stride = shape.stride * pw;

        // Fresh i32 accumulators for the whole batch.
        let acc_len = n * out_img;
        scratch.acc.clear();
        scratch.acc.resize(acc_len, 0);
        let acc = &mut scratch.acc[..];
        let padded = &scratch.padded[..n * in_c * plane_len];

        // Phase boundary: quantise + pad + accumulator setup (plus the
        // caller's output allocation) is the pad phase.
        let profiling = profile.is_some();
        let pad_done = profiling.then(Instant::now);
        let mut dispatches = 0u64;
        let mut epi_ns = 0u64;

        let geo_for = |ic: usize, oc: usize| BatchPlanes {
            out_base: oc * out_plane_len,
            out_stride: out_img,
            in_base: ic * plane_len,
            in_stride: in_c * plane_len,
            plane_len,
            n,
        };
        // Requantises one output channel's accumulator planes across
        // the batch: back to f32 at each image's own scale, bias added,
        // ReLU fused.
        let requant_oc = |acc: &[i32], out: &mut [f32], oc: usize| {
            let bias = self.bias.as_ref().map_or(0.0, |b| b[oc]);
            for (ni, ap) in aparams.iter().enumerate() {
                let base = ni * out_img + oc * out_plane_len;
                requantize_plane_at(
                    level,
                    &acc[base..base + out_plane_len],
                    self.wparams.scale * ap.scale,
                    bias,
                    self.relu,
                    &mut out[base..base + out_plane_len],
                );
            }
        };

        if grouped {
            // Pattern-grouped walk with the requant epilogue folded
            // into each output channel's final live kernel dispatch:
            // the accumulator planes are requantised while still hot
            // instead of in a separate cold pass over the whole batch.
            for entry in self.schedule.entries() {
                let offs = &offsets[entry.code as usize];
                let ic = entry.ic as usize;
                let slot0 = entry.start as usize;
                let lasts = self.schedule.group_last(entry);
                for (s, &oc) in self.schedule.group_ocs(entry).iter().enumerate() {
                    let oc = oc as usize;
                    let qwts = &self.packed[(slot0 + s) * self.n..(slot0 + s + 1) * self.n];
                    dispatches += 1;
                    accumulate_plane_batch_dyn_i8_at(
                        level,
                        acc,
                        padded,
                        geo_for(ic, oc),
                        oh,
                        ow,
                        row_stride,
                        offs,
                        qwts,
                        shape.stride,
                    );
                    if lasts[s] {
                        let t = profiling.then(Instant::now);
                        requant_oc(acc, out, oc);
                        if let Some(t) = t {
                            epi_ns += t.elapsed().as_nanos() as u64;
                        }
                    }
                }
            }
            // Fully coarse-pruned channels never hit the fold; they
            // still owe the bias (+ ReLU) epilogue over zero sums.
            let t = profiling.then(Instant::now);
            for &oc in self.schedule.untouched_ocs() {
                requant_oc(acc, out, oc as usize);
            }
            if let Some(t) = t {
                epi_ns += t.elapsed().as_nanos() as u64;
            }
        } else {
            // Legacy oc-major walk with the separate requant pass.
            for oc in 0..shape.out_c {
                for ic in 0..in_c {
                    let ki = oc * in_c + ic;
                    if self.skip[ki] {
                        continue;
                    }
                    let code = self.codes[ki] as usize;
                    let offs = &offsets[code];
                    let qwts = &self.qweights[ki * self.n..(ki + 1) * self.n];
                    dispatches += 1;
                    accumulate_plane_batch_dyn_i8_at(
                        level,
                        acc,
                        padded,
                        geo_for(ic, oc),
                        oh,
                        ow,
                        row_stride,
                        offs,
                        qwts,
                        shape.stride,
                    );
                }
            }
            let t = profiling.then(Instant::now);
            for oc in 0..shape.out_c {
                requant_oc(acc, out, oc);
            }
            if let Some(t) = t {
                epi_ns += t.elapsed().as_nanos() as u64;
            }
        }

        if let Some((stats, start)) = profile {
            let total = start.elapsed().as_nanos() as u64;
            let pad_ns = pad_done.map_or(0, |p| (p - start).as_nanos() as u64);
            stats.record_conv(&ConvPass {
                images: n as u64,
                pad_ns,
                kernel_ns: total.saturating_sub(pad_ns).saturating_sub(epi_ns),
                epilogue_ns: epi_ns,
                kernel_dispatches: dispatches,
                pattern_groups: if grouped {
                    self.schedule.entries().len() as u64
                } else {
                    0
                },
                zero_kernels_skipped: self.skipped_kernels() as u64,
                padded_bytes: (n * in_c * plane_len) as u64,
                level,
            });
        }
    }

    /// The dequantise-then-f32 reference: quantises the activations with
    /// the *same* per-image parameters the integer path derives,
    /// dequantises codes and weights back to f32, and runs the dense
    /// float convolution. The integer path must match this within float
    /// rounding — the contract the parity suite enforces at 1e-5.
    pub fn forward_reference(&self, input: &Tensor) -> Tensor {
        let n = input.shape()[0];
        let img = input.len() / n.max(1);
        let mut deq = Vec::with_capacity(input.len());
        for ni in 0..n {
            let (qa, aparams) =
                quantize_symmetric(&input.as_slice()[ni * img..(ni + 1) * img], self.act_bits);
            deq.extend(dequantize(&qa, aparams));
        }
        let xq = Tensor::from_vec(deq, input.shape());
        let weights = self.decode_weights();
        let bias_t = self
            .bias
            .as_ref()
            .map(|b| Tensor::from_vec(b.clone(), &[b.len()]));
        let mut y = conv2d_direct(&xq, &weights, bias_t.as_ref(), &self.shape);
        if self.relu {
            y.map_inplace(|v| v.max(0.0));
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnn_core::pattern::PatternSet;
    use pcnn_core::project::project_onto_set;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn random_pruned(out_c: usize, in_c: usize, set: &PatternSet, seed: u64) -> Tensor {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut w = Tensor::from_vec(
            (0..out_c * in_c * 9)
                .map(|_| rng.gen_range(-1.0f32..1.0))
                .collect(),
            &[out_c, in_c, 3, 3],
        );
        for kernel in w.as_mut_slice().chunks_mut(9) {
            let _ = project_onto_set(kernel, set);
        }
        w
    }

    fn random_input(shape: &[usize], seed: u64) -> Tensor {
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = shape.iter().product();
        Tensor::from_vec(
            (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
            shape,
        )
    }

    fn quantized(w: &Tensor, shape: Conv2dShape, set: &PatternSet) -> QuantPatternConv {
        let pc = PatternConv::from_dense(w, shape, set).expect("encode");
        QuantPatternConv::from_pattern_conv(&pc, &QuantOptions::default())
    }

    #[test]
    fn int8_matches_dequantized_reference() {
        for n in [1usize, 2, 4] {
            let set = PatternSet::full(9, n);
            let shape = Conv2dShape::new(3, 5, 3, 1, 1);
            let w = random_pruned(5, 3, &set, 7 + n as u64);
            let x = random_input(&[2, 3, 6, 6], 11);
            let q = quantized(&w, shape, &set);
            let got = q.forward(&x);
            let want = q.forward_reference(&x);
            pcnn_tensor::assert_slices_close(got.as_slice(), want.as_slice(), 1e-5);
        }
    }

    #[test]
    fn int8_close_to_float_original() {
        // Against the *unquantised* float conv the error is the quant
        // noise: small but way above 1e-5 — sanity that the integer path
        // actually computes the convolution.
        let set = PatternSet::full(9, 4);
        let shape = Conv2dShape::new(4, 6, 3, 1, 1);
        let w = random_pruned(6, 4, &set, 3);
        let x = random_input(&[1, 4, 8, 8], 5);
        let q = quantized(&w, shape, &set);
        let got = q.forward(&x);
        let want = conv2d_direct(&x, &w, None, &shape);
        let num: f32 = got
            .as_slice()
            .iter()
            .zip(want.as_slice())
            .map(|(a, b)| (a - b).powi(2))
            .sum();
        let rel = (num / want.sq_norm().max(1e-12)).sqrt();
        assert!(rel < 0.05, "relative error {rel}");
        assert!(rel > 1e-7, "suspiciously exact: quantisation not applied?");
    }

    #[test]
    fn strided_bias_relu_epilogue_matches_reference() {
        let set = PatternSet::full(9, 2);
        let shape = Conv2dShape::new(2, 4, 3, 2, 1);
        let w = random_pruned(4, 2, &set, 13);
        let x = random_input(&[3, 2, 9, 9], 17);
        let bias: Vec<f32> = (0..4).map(|i| 0.2 * i as f32 - 0.3).collect();
        let pc = PatternConv::from_dense(&w, shape, &set)
            .expect("encode")
            .with_bias(bias)
            .with_relu(true);
        let q = QuantPatternConv::from_pattern_conv(&pc, &QuantOptions::default());
        assert!(q.has_relu());
        let got = q.forward(&x);
        let want = q.forward_reference(&x);
        pcnn_tensor::assert_slices_close(got.as_slice(), want.as_slice(), 1e-5);
        assert!(got.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn zero_kernels_stay_skipped_after_quantisation() {
        let set = PatternSet::full(9, 2);
        let mut w = random_pruned(4, 3, &set, 21);
        for ic in 0..3 {
            let ki = 3 + ic; // coarse-prune output channel 1
            w.as_mut_slice()[ki * 9..(ki + 1) * 9].fill(0.0);
        }
        let shape = Conv2dShape::new(3, 4, 3, 1, 1);
        let q = quantized(&w, shape, &set);
        assert!(q.skipped_kernels() >= 3);
        let x = random_input(&[1, 3, 6, 6], 23);
        let got = q.forward(&x);
        let want = q.forward_reference(&x);
        pcnn_tensor::assert_slices_close(got.as_slice(), want.as_slice(), 1e-5);
        // Channel 1's planes are exactly zero (no bias, kernels skipped).
        let (oh, ow) = shape.out_hw(6, 6);
        let plane = &got.as_slice()[oh * ow..2 * oh * ow];
        assert!(plane.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pruned_weights_quantise_to_zero_codes() {
        let set = PatternSet::full(9, 3);
        let shape = Conv2dShape::new(3, 4, 3, 1, 1);
        let w = random_pruned(4, 3, &set, 29);
        let q = quantized(&w, shape, &set);
        // Decoding the quantised layer puts zeros exactly where the
        // pruned weights were: pattern positions preserved, zero exact.
        let decoded = q.decode_weights();
        for (a, b) in w.as_slice().iter().zip(decoded.as_slice()) {
            if *a == 0.0 {
                assert_eq!(*b, 0.0, "pruned position must stay exactly zero");
            }
        }
    }

    #[test]
    fn scratch_reuse_across_batch_sizes_is_clean() {
        let set = PatternSet::full(9, 2);
        let shape = Conv2dShape::new(2, 3, 3, 1, 1);
        let w = random_pruned(3, 2, &set, 31);
        let q = quantized(&w, shape, &set);
        let mut scratch = QuantScratch::new();
        for (size, seed) in [(4usize, 41u64), (1, 43), (6, 47)] {
            let x = random_input(&[size, 2, 5, 5], seed);
            let (oh, ow) = shape.out_hw(5, 5);
            let mut out = vec![0.0f32; size * 3 * oh * ow];
            q.forward_batch(x.as_slice(), size, 5, 5, &mut out, &mut scratch);
            let want = q.forward_reference(&x);
            pcnn_tensor::assert_slices_close(&out, want.as_slice(), 1e-5);
        }
    }
}
