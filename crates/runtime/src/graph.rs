//! The executable inference graph.
//!
//! An [`ExecutableGraph`] is the immutable product of the layer
//! compiler: a straight-line op sequence that is `Send + Sync`, so a
//! single compiled network can be shared (via `Arc`) by every worker of
//! the batched [`crate::engine::Engine`] with zero per-request setup.
//!
//! A graph can carry **two lowerings of the same compiled topology**:
//! the f32 op sequence, and (after [`ExecutableGraph::with_int8`]) an
//! int8 sequence whose pattern convolutions share the f32 lowering's SPM
//! codes and kernel registries with the non-zero weights quantised per
//! layer. [`ExecutableGraph::run_with`] selects the
//! [`Precision`] per call, which is how one engine serves mixed-precision
//! traffic without compiling the network twice.

use crate::ops::{quantize_ops, run_ops, run_ops_profiled, run_ops_reference, Op};
use crate::profile::ExecProfiler;
use crate::quant_conv::{Precision, QuantOptions};
use pcnn_tensor::Tensor;

/// A compiled, immutable, thread-safe inference graph.
#[derive(Debug, Clone)]
pub struct ExecutableGraph {
    ops: Vec<Op>,
    /// The int8 lowering of the same topology, when enabled.
    int8_ops: Option<Vec<Op>>,
}

impl ExecutableGraph {
    /// Wraps a lowered op sequence (f32 only).
    pub fn new(ops: Vec<Op>) -> Self {
        ExecutableGraph {
            ops,
            int8_ops: None,
        }
    }

    /// Derives the int8 lowering from the compiled f32 ops: every
    /// pattern convolution quantises per layer (reusing its SPM codes
    /// and compiled registry), everything else stays on the f32 path.
    /// The f32 lowering is untouched — both precisions remain runnable.
    pub fn with_int8(mut self, opts: &QuantOptions) -> Self {
        self.int8_ops = Some(quantize_ops(&self.ops, opts));
        self
    }

    /// Whether the int8 lowering is available.
    pub fn has_int8(&self) -> bool {
        self.int8_ops.is_some()
    }

    /// Whether `precision` can be executed on this graph.
    pub fn supports(&self, precision: Precision) -> bool {
        match precision {
            Precision::F32 => true,
            Precision::Int8 => self.has_int8(),
        }
    }

    /// The f32 op sequence.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The int8 op sequence, when enabled.
    pub fn int8_ops(&self) -> Option<&[Op]> {
        self.int8_ops.as_deref()
    }

    /// Runs the graph on an NCHW input (any batch size) at f32,
    /// producing the network output.
    pub fn run(&self, x: &Tensor) -> Tensor {
        run_ops(&self.ops, x)
    }

    /// Runs the graph at the requested precision.
    ///
    /// # Panics
    ///
    /// Panics if `Precision::Int8` is requested on a graph compiled
    /// without [`ExecutableGraph::with_int8`].
    pub fn run_with(&self, x: &Tensor, precision: Precision) -> Tensor {
        match precision {
            Precision::F32 => run_ops(&self.ops, x),
            Precision::Int8 => run_ops(
                self.int8_ops
                    .as_deref()
                    .expect("int8 lowering not compiled: call with_int8 first"),
                x,
            ),
        }
    }

    /// [`ExecutableGraph::run_with`] with per-layer instrumentation:
    /// each op records wall time (convolutions split by phase) into the
    /// profiler's slots for `precision`. The profiler must have been
    /// built for this graph ([`ExecProfiler::for_graph`]) so the slot
    /// order matches the op walk.
    ///
    /// # Panics
    ///
    /// Panics if `Precision::Int8` is requested on a graph compiled
    /// without [`ExecutableGraph::with_int8`].
    pub fn run_profiled(
        &self,
        x: &Tensor,
        precision: Precision,
        profiler: &ExecProfiler,
    ) -> Tensor {
        let ops = match precision {
            Precision::F32 => &self.ops[..],
            Precision::Int8 => self
                .int8_ops
                .as_deref()
                .expect("int8 lowering not compiled: call with_int8 first"),
        };
        let mut idx = 0;
        run_ops_profiled(ops, x, profiler.layers(precision), &mut idx)
    }

    /// Runs the int8 lowering on its dequantise-then-f32 **reference**
    /// datapath: identical quantisation decisions, float arithmetic.
    /// The integer path ([`ExecutableGraph::run_with`] at `Int8`) must
    /// match this within 1e-5 — the parity suite's oracle.
    ///
    /// # Panics
    ///
    /// Panics if the int8 lowering is not compiled.
    pub fn run_int8_reference(&self, x: &Tensor) -> Tensor {
        run_ops_reference(
            self.int8_ops
                .as_deref()
                .expect("int8 lowering not compiled: call with_int8 first"),
            x,
        )
    }

    /// One description line per op of the f32 lowering (residual blocks
    /// annotate their sub-op counts).
    pub fn summary(&self) -> Vec<String> {
        self.ops.iter().map(Op::describe).collect()
    }

    /// One description line per op of the requested lowering.
    ///
    /// # Panics
    ///
    /// Panics if `Precision::Int8` is requested without the lowering.
    pub fn summary_at(&self, precision: Precision) -> Vec<String> {
        match precision {
            Precision::F32 => self.summary(),
            Precision::Int8 => self
                .int8_ops
                .as_deref()
                .expect("int8 lowering not compiled: call with_int8 first")
                .iter()
                .map(Op::describe)
                .collect(),
        }
    }

    /// Number of pattern-sparse convolution ops in the f32 lowering,
    /// recursing into residual blocks.
    pub fn sparse_op_count(&self) -> usize {
        fn count(ops: &[Op]) -> usize {
            ops.iter()
                .map(|op| match op {
                    Op::PatternConv(_) => 1,
                    Op::Residual { main, shortcut } => count(main) + count(shortcut),
                    _ => 0,
                })
                .sum()
        }
        count(&self.ops)
    }

    /// Number of quantised convolution ops in the int8 lowering (zero
    /// when the lowering is absent), recursing into residual blocks.
    pub fn quant_op_count(&self) -> usize {
        fn count(ops: &[Op]) -> usize {
            ops.iter()
                .map(|op| match op {
                    Op::QuantConv(_) => 1,
                    Op::Residual { main, shortcut } => count(main) + count(shortcut),
                    _ => 0,
                })
                .sum()
        }
        self.int8_ops.as_deref().map_or(0, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Op;

    #[test]
    fn empty_graph_is_identity() {
        let g = ExecutableGraph::new(vec![]);
        let x = Tensor::from_vec(vec![1.0, -2.0], &[1, 1, 1, 2]);
        assert_eq!(g.run(&x).as_slice(), x.as_slice());
        assert!(g.summary().is_empty());
        assert_eq!(g.sparse_op_count(), 0);
    }

    #[test]
    fn precision_support_and_panics() {
        let g = ExecutableGraph::new(vec![Op::Relu]);
        assert!(g.supports(Precision::F32));
        assert!(!g.supports(Precision::Int8));
        assert_eq!(g.quant_op_count(), 0);
        let g = g.with_int8(&QuantOptions::default());
        assert!(g.supports(Precision::Int8));
        let x = Tensor::from_vec(vec![-1.0, 2.0], &[1, 1, 1, 2]);
        // No quant ops in this graph, so both precisions agree exactly.
        assert_eq!(
            g.run_with(&x, Precision::Int8).as_slice(),
            g.run_with(&x, Precision::F32).as_slice()
        );
        assert_eq!(g.run_int8_reference(&x).as_slice(), g.run(&x).as_slice());
        assert_eq!(g.summary_at(Precision::Int8), g.summary());
    }

    #[test]
    fn summary_and_run_compose() {
        let g = ExecutableGraph::new(vec![Op::Relu, Op::Flatten]);
        assert_eq!(g.summary(), vec!["ReLU".to_string(), "Flatten".to_string()]);
        let x = Tensor::from_vec(vec![-1.0, 3.0, -4.0, 2.0], &[1, 1, 2, 2]);
        let y = g.run(&x);
        assert_eq!(y.shape(), &[1, 4]);
        assert_eq!(y.as_slice(), &[0.0, 3.0, 0.0, 2.0]);
    }
}
