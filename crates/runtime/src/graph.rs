//! The executable inference graph.
//!
//! An [`ExecutableGraph`] is the immutable product of the layer
//! compiler: a straight-line op sequence that is `Send + Sync`, so a
//! single compiled network can be shared (via `Arc`) by every worker of
//! the batched [`crate::engine::Engine`] with zero per-request setup.

use crate::ops::{run_ops, Op};
use pcnn_tensor::Tensor;

/// A compiled, immutable, thread-safe inference graph.
#[derive(Debug, Clone)]
pub struct ExecutableGraph {
    ops: Vec<Op>,
}

impl ExecutableGraph {
    /// Wraps a lowered op sequence.
    pub fn new(ops: Vec<Op>) -> Self {
        ExecutableGraph { ops }
    }

    /// The op sequence.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Runs the graph on an NCHW input (any batch size), producing the
    /// network output.
    pub fn run(&self, x: &Tensor) -> Tensor {
        run_ops(&self.ops, x)
    }

    /// One description line per op (residual blocks annotate their
    /// sub-op counts).
    pub fn summary(&self) -> Vec<String> {
        self.ops.iter().map(Op::describe).collect()
    }

    /// Number of pattern-sparse convolution ops, recursing into
    /// residual blocks.
    pub fn sparse_op_count(&self) -> usize {
        fn count(ops: &[Op]) -> usize {
            ops.iter()
                .map(|op| match op {
                    Op::PatternConv(_) => 1,
                    Op::Residual { main, shortcut } => count(main) + count(shortcut),
                    _ => 0,
                })
                .sum()
        }
        count(&self.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Op;

    #[test]
    fn empty_graph_is_identity() {
        let g = ExecutableGraph::new(vec![]);
        let x = Tensor::from_vec(vec![1.0, -2.0], &[1, 1, 1, 2]);
        assert_eq!(g.run(&x).as_slice(), x.as_slice());
        assert!(g.summary().is_empty());
        assert_eq!(g.sparse_op_count(), 0);
    }

    #[test]
    fn summary_and_run_compose() {
        let g = ExecutableGraph::new(vec![Op::Relu, Op::Flatten]);
        assert_eq!(g.summary(), vec!["ReLU".to_string(), "Flatten".to_string()]);
        let x = Tensor::from_vec(vec![-1.0, 3.0, -4.0, 2.0], &[1, 1, 2, 2]);
        let y = g.run(&x);
        assert_eq!(y.shape(), &[1, 4]);
        assert_eq!(y.as_slice(), &[0.0, 3.0, 0.0, 2.0]);
    }
}
