//! # `pcnn-runtime` — pattern-aware sparse CNN inference engine
//!
//! The rest of the workspace *models* PCNN: `pcnn-core` prunes networks
//! into pattern/SPM form and `pcnn-accel` simulates the paper's
//! accelerator cycle by cycle. This crate *runs* them: it consumes a
//! pruned `pcnn-nn` model (or its SPM-encoded weights) and executes it
//! on the CPU through kernels specialised per sparsity pattern — the
//! software analogue of the paper's pattern-aware PE array, in the
//! spirit of PCONV's compiler-assisted runtime.
//!
//! ## Architecture
//!
//! The engine is a three-stage pipeline, one module per stage:
//!
//! 1. **Kernel registry** ([`registry`]). Each 3×3 sparsity pattern is
//!    compiled once into tap coordinates, and execution dispatches onto
//!    monomorphised kernels built on the explicit SIMD tiles of
//!    [`pcnn_tensor::simd`] (AVX2 detected at runtime, scalar fallback
//!    under `PCNN_FORCE_SCALAR=1` — bit-identical either way) — the
//!    regularity of pattern pruning is what makes a fixed unrolled
//!    kernel per pattern possible at all. A registry can cover a
//!    distilled [`PatternSet`] (one kernel per SPM code) or the full 2⁹
//!    pattern space, and every layer additionally compiles a
//!    **pattern-grouped schedule** ([`registry::PatternSchedule`]):
//!    kernels reorder ic-major into per-pattern-ID groups with packed
//!    weights, so one offset-table load feeds every output channel
//!    sharing that pattern and each padded input plane streams through
//!    all of its consumers while cache-hot. The schedule's last-kernel
//!    flags let the executors fold their epilogue (fused ReLU, int8
//!    requantisation) into the final dispatch per output channel.
//!
//! 2. **Layer compiler** ([`compile`]). A pruned model lowers to an
//!    immutable [`graph::ExecutableGraph`] of ops ([`ops::Op`]):
//!    pattern-sparse convolutions ([`pattern_conv::PatternConv`]) for
//!    the 3×3 layers, dense im2col for the rest, with eval-mode batch
//!    norm folded into the conv weights and ReLU fused into the conv
//!    epilogue. Kernels zeroed by orthogonal coarse-grained pruning
//!    (`pcnn_core::fuse`) are skipped at run time, so fused
//!    coarse+pattern sparsity compounds exactly as in the paper's
//!    storage model.
//!
//! 3. **Batched executor** ([`engine`]). An [`engine::Engine`] shares
//!    the compiled graph across a persistent work-stealing thread pool
//!    ([`pcnn_tensor::parallel::ThreadPool`]) and fans out concurrent
//!    inference requests — batch them ([`engine::Engine::infer_batch`]),
//!    split an NCHW batch into per-image jobs
//!    ([`engine::Engine::infer_images`]), or measure serving throughput
//!    ([`engine::Engine::serve`]). For dynamic batchers the engine
//!    offers coalesced execution hooks
//!    ([`engine::Engine::infer_coalesced`],
//!    [`engine::Engine::infer_coalesced_async`]): same-shape
//!    single-image requests stack into one batched graph pass, which
//!    amortises padded-plane construction and offset tables across the
//!    whole batch ([`PatternConv::forward_batch`]).
//!
//! 4. **Quantised backend** ([`quant_conv`], [`quant_kernels`]). The
//!    same compiled topology carries an optional **int8** lowering
//!    ([`graph::ExecutableGraph::with_int8`], or [`compile::compile_quant`]
//!    in one step): SPM non-zero sequences quantise per layer through
//!    `pcnn_core::quant` while the pattern codes, registries, and offset
//!    tables are shared verbatim — the economy the paper's SPM format
//!    exists for. Execution quantises activations per image (fused into
//!    plane padding), accumulates `i8 × i8` MACs in `i32` through
//!    unrolled integer kernels, and requantises once per output plane
//!    with the folded BN shift and fused ReLU
//!    ([`quant_conv::QuantPatternConv`]). [`quant_conv::Precision`]
//!    selects the datapath per call ([`engine::Engine::infer_with`],
//!    [`engine::Engine::infer_coalesced_async_at`]).
//!
//! The online serving layer on top of this crate — bounded request
//! queue, micro-batching, tickets, latency percentiles — is
//! `pcnn-serve`.
//!
//! ## Quickstart
//!
//! ```
//! use pcnn_core::PrunePlan;
//! use pcnn_nn::models;
//! use pcnn_runtime::compile::{prune_and_compile, CompileOptions};
//! use pcnn_runtime::engine::Engine;
//! use pcnn_tensor::Tensor;
//!
//! // 1. Train-or-load a model, then prune it with a PCNN plan (n = 2).
//! let mut model = models::tiny_cnn(10, 4, 1);
//! let plan = PrunePlan::uniform(2, 2, 32);
//!
//! // 2. Lower through the pattern compiler (BN folded, ReLU fused).
//! let (graph, report, _outcome) =
//!     prune_and_compile(&mut model, &plan, &CompileOptions::default()).unwrap();
//! assert_eq!(report.sparse_layers, 2);
//!
//! // 3. Serve batched traffic over the work-stealing pool.
//! let engine = Engine::new(graph, 4);
//! let requests: Vec<Tensor> = (0..8).map(|_| Tensor::ones(&[1, 3, 8, 8])).collect();
//! let (outputs, stats) = engine.serve(requests);
//! assert_eq!(outputs.len(), 8);
//! assert!(stats.throughput_rps() > 0.0);
//! ```
//!
//! ## Correctness
//!
//! The parity suite (`tests/parity.rs`) checks sparse execution against
//! the dense im2col reference to 1e-5 for every proxy network of the
//! paper's zoo at n = 2 and n = 4, fused and unfused; property tests
//! round-trip random pattern assignments through the kernel registry.
//!
//! [`PatternSet`]: pcnn_core::PatternSet

pub mod compile;
pub mod engine;
pub mod graph;
pub mod ops;
pub mod pattern_conv;
pub mod profile;
pub mod quant_conv;
pub mod quant_kernels;
pub mod registry;

pub use compile::{
    compile, compile_dense, compile_quant, prune_and_compile, prune_and_compile_quant,
    CompileOptions, CompileReport,
};
pub use engine::{Engine, ServeStats};
pub use graph::ExecutableGraph;
pub use pattern_conv::PatternConv;
pub use profile::{ExecProfile, ExecProfiler, LayerProfile, PhaseSplit, PrecisionProfile};
pub use quant_conv::{Precision, QuantOptions, QuantPatternConv, QuantScratch};
pub use registry::KernelRegistry;
