//! The compiled-pattern kernel registry.
//!
//! PCONV-style runtimes get their speed from a simple observation: a
//! 3×3 kernel pruned to pattern `p` is a *fixed* set of `n` taps, so the
//! convolution inner loop for that kernel can be specialised — no mask
//! tests, no index indirection, just `n` shifted multiply-adds. This
//! module performs that specialisation once per pattern:
//!
//! * [`CompiledPattern`] — a pattern lowered to `(ky, kx)` tap
//!   coordinates in SPM rank order (the order of the kernel's packed
//!   non-zero sequence);
//! * [`KernelRegistry`] — the table of compiled patterns for one layer's
//!   [`PatternSet`], indexed by SPM code, with the flat padded-plane
//!   offsets re-derived per input geometry.
//!
//! The unrolled executors themselves live in
//! [`pcnn_tensor::direct::accumulate_rows`]; dispatch onto the right
//! monomorphisation happens through
//! [`pcnn_tensor::direct::accumulate_rows_dyn`].

use pcnn_core::pattern::{Pattern, PatternSet};

/// One pattern lowered to tap coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledPattern {
    pattern: Pattern,
    side: usize,
    /// `(ky, kx)` per tap, ascending kernel-position order — exactly the
    /// rank order of the SPM non-zero sequence.
    taps: Vec<(usize, usize)>,
}

impl CompiledPattern {
    /// Compiles a square-area pattern into tap coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the pattern's area is not a perfect square.
    pub fn compile(pattern: Pattern) -> Self {
        let area = pattern.area();
        let side = (area as f64).sqrt() as usize;
        assert_eq!(side * side, area, "pattern area {area} is not square");
        let taps = pattern
            .positions()
            .into_iter()
            .map(|pos| (pos / side, pos % side))
            .collect();
        CompiledPattern {
            pattern,
            side,
            taps,
        }
    }

    /// The source pattern.
    pub fn pattern(&self) -> Pattern {
        self.pattern
    }

    /// Kernel side length (3 for 3×3).
    pub fn side(&self) -> usize {
        self.side
    }

    /// Number of taps (`n`, the pattern weight).
    pub fn tap_count(&self) -> usize {
        self.taps.len()
    }

    /// The `(ky, kx)` taps in SPM rank order.
    pub fn taps(&self) -> &[(usize, usize)] {
        &self.taps
    }

    /// Flat offsets into a padded plane of width `pw`, in rank order.
    pub fn offsets(&self, pw: usize) -> Vec<usize> {
        self.taps.iter().map(|&(ky, kx)| ky * pw + kx).collect()
    }

    /// Rebuilds the pattern from the compiled taps — the registry
    /// round-trip checked by the property tests.
    pub fn reconstruct(&self) -> Pattern {
        let positions: Vec<usize> = self
            .taps
            .iter()
            .map(|&(ky, kx)| ky * self.side + kx)
            .collect();
        Pattern::from_positions(&positions, self.side * self.side)
    }
}

/// The compiled-kernel table of one layer: one [`CompiledPattern`] per
/// SPM code of the layer's [`PatternSet`].
///
/// # Example
///
/// ```
/// use pcnn_core::PatternSet;
/// use pcnn_runtime::registry::KernelRegistry;
///
/// let set = PatternSet::full(9, 2);
/// let reg = KernelRegistry::for_set(&set);
/// assert_eq!(reg.len(), 36);
/// assert_eq!(reg.get(0).tap_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct KernelRegistry {
    by_code: Vec<CompiledPattern>,
    area: usize,
}

impl KernelRegistry {
    /// Compiles every pattern of `set`, in SPM-code order.
    pub fn for_set(set: &PatternSet) -> Self {
        KernelRegistry {
            by_code: set
                .patterns()
                .iter()
                .map(|&p| CompiledPattern::compile(p))
                .collect(),
            area: set.area(),
        }
    }

    /// Compiles the *entire* 3×3 pattern space (all `2⁹ = 512` masks) —
    /// the "pre-compile everything" configuration for engines that must
    /// accept arbitrary pattern assignments without a distillation step.
    pub fn full_3x3() -> Self {
        KernelRegistry {
            by_code: (0..512u16)
                .map(|mask| CompiledPattern::compile(Pattern::new(mask, 9)))
                .collect(),
            area: 9,
        }
    }

    /// Number of compiled kernels.
    pub fn len(&self) -> usize {
        self.by_code.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.by_code.is_empty()
    }

    /// Kernel area the registry covers.
    pub fn area(&self) -> usize {
        self.area
    }

    /// The compiled kernel for SPM code `code`.
    ///
    /// # Panics
    ///
    /// Panics if `code` is out of range.
    pub fn get(&self, code: usize) -> &CompiledPattern {
        &self.by_code[code]
    }

    /// Precomputes, for every code, the flat padded-plane offsets for
    /// plane width `pw` — done once per (layer, input geometry).
    pub fn offset_table(&self, pw: usize) -> Vec<Vec<usize>> {
        self.by_code.iter().map(|c| c.offsets(pw)).collect()
    }
}

/// One pattern-grouped execution step: every output channel whose
/// kernel on input channel `ic` carries pattern `code`, executed
/// back-to-back. See [`PatternSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupEntry {
    /// The input channel whose padded plane this group reads.
    pub ic: u32,
    /// The shared SPM pattern code — one offset-table load per group.
    pub code: u16,
    /// Range into [`PatternSchedule::ocs`] / packed-weight slots.
    pub start: u32,
    /// Exclusive end of the slot range.
    pub end: u32,
}

/// The pattern-grouped execution order of one layer's `(oc, ic)`
/// kernels.
///
/// The oc-major walk of the naive executor re-loads each kernel's tap
/// offset table and hops across the SPM weight array once per kernel,
/// and touches each padded input plane `out_c` times spread across the
/// whole layer. Grouping reorders the walk **ic-major, then by pattern
/// code**: the inner loop streams one padded input plane through every
/// output channel that consumes it with a given pattern — one offset
/// lookup per group, weights packed contiguously in visit order, and
/// the input plane hot in L1/L2 for all of its consumers.
///
/// Per output channel, contributions still arrive in ascending-`ic`
/// order (each `(oc, ic)` pair appears exactly once, under its `ic`),
/// so the f32 accumulation order — and therefore the result, bit for
/// bit — is identical to the oc-major walk.
///
/// The schedule also records which slot is the **last** live kernel of
/// each output channel, which is what lets executors fold their
/// epilogue (ReLU, or the int8 requantisation pass) into the final
/// kernel dispatch while the accumulator plane is still cache-hot.
#[derive(Debug, Clone, Default)]
pub struct PatternSchedule {
    entries: Vec<GroupEntry>,
    ocs: Vec<u32>,
    last: Vec<bool>,
    untouched: Vec<u32>,
}

impl PatternSchedule {
    /// Builds the grouped order from a layer's per-kernel SPM codes and
    /// skip flags (`codes[oc * in_c + ic]`, kernel-major like
    /// `SpmLayer`).
    ///
    /// # Panics
    ///
    /// Panics if `codes` / `skip` are not `out_c · in_c` long.
    pub fn build(codes: &[u16], skip: &[bool], out_c: usize, in_c: usize) -> Self {
        assert_eq!(codes.len(), out_c * in_c, "codes length mismatch");
        assert_eq!(skip.len(), out_c * in_c, "skip length mismatch");
        // Last live ic per output channel, for the epilogue fold.
        let mut last_ic: Vec<Option<usize>> = vec![None; out_c];
        for oc in 0..out_c {
            for ic in 0..in_c {
                if !skip[oc * in_c + ic] {
                    last_ic[oc] = Some(ic);
                }
            }
        }
        let untouched: Vec<u32> = (0..out_c as u32)
            .filter(|&oc| last_ic[oc as usize].is_none())
            .collect();
        let mut entries = Vec::new();
        let mut ocs = Vec::new();
        let mut last = Vec::new();
        // (code, oc) pairs per input channel, sorted by code for
        // deterministic grouping.
        let mut pairs: Vec<(u16, u32)> = Vec::with_capacity(out_c);
        for ic in 0..in_c {
            pairs.clear();
            for oc in 0..out_c {
                if !skip[oc * in_c + ic] {
                    pairs.push((codes[oc * in_c + ic], oc as u32));
                }
            }
            pairs.sort_unstable();
            let mut i = 0;
            while i < pairs.len() {
                let code = pairs[i].0;
                let start = ocs.len() as u32;
                while i < pairs.len() && pairs[i].0 == code {
                    let oc = pairs[i].1;
                    ocs.push(oc);
                    last.push(last_ic[oc as usize] == Some(ic));
                    i += 1;
                }
                entries.push(GroupEntry {
                    ic: ic as u32,
                    code,
                    start,
                    end: ocs.len() as u32,
                });
            }
        }
        PatternSchedule {
            entries,
            ocs,
            last,
            untouched,
        }
    }

    /// The grouped entries, ic-major then code-ascending.
    pub fn entries(&self) -> &[GroupEntry] {
        &self.entries
    }

    /// The output channels of one entry, in slot order.
    pub fn group_ocs(&self, e: &GroupEntry) -> &[u32] {
        &self.ocs[e.start as usize..e.end as usize]
    }

    /// Per-slot "this is the output channel's final live kernel" flags
    /// for one entry, aligned with [`PatternSchedule::group_ocs`].
    pub fn group_last(&self, e: &GroupEntry) -> &[bool] {
        &self.last[e.start as usize..e.end as usize]
    }

    /// Output channels with **no** live kernel at all (fully
    /// coarse-pruned): the epilogue fold never reaches them, so
    /// executors run their epilogue separately.
    pub fn untouched_ocs(&self) -> &[u32] {
        &self.untouched
    }

    /// Total packed slots (live kernels).
    pub fn slot_count(&self) -> usize {
        self.ocs.len()
    }

    /// `(ic, oc)` of every slot in schedule order — the order weight
    /// packers must follow so slot `s`'s weights live at
    /// `packed[s·n..(s+1)·n]`.
    pub fn slot_kernels(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.entries.iter().flat_map(move |e| {
            self.group_ocs(e)
                .iter()
                .map(move |&oc| (e.ic as usize, oc as usize))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_orders_taps_by_rank() {
        // Pattern positions {1, 3, 8} on 3×3: taps (0,1), (1,0), (2,2).
        let p = Pattern::from_positions(&[1, 3, 8], 9);
        let c = CompiledPattern::compile(p);
        assert_eq!(c.taps(), &[(0, 1), (1, 0), (2, 2)]);
        assert_eq!(c.tap_count(), 3);
    }

    #[test]
    fn offsets_respect_padded_width() {
        let p = Pattern::from_positions(&[0, 4, 8], 9);
        let c = CompiledPattern::compile(p);
        assert_eq!(c.offsets(10), vec![0, 11, 22]);
        assert_eq!(c.offsets(7), vec![0, 8, 16]);
    }

    #[test]
    fn reconstruct_roundtrips_every_3x3_pattern() {
        for mask in 0..512u16 {
            let p = Pattern::new(mask, 9);
            assert_eq!(CompiledPattern::compile(p).reconstruct(), p);
        }
    }

    #[test]
    fn registry_matches_set_order() {
        let set = PatternSet::full(9, 4);
        let reg = KernelRegistry::for_set(&set);
        assert_eq!(reg.len(), set.len());
        for code in 0..set.len() {
            assert_eq!(reg.get(code).pattern(), set.get(code));
        }
    }

    #[test]
    fn full_registry_covers_the_whole_space() {
        let reg = KernelRegistry::full_3x3();
        assert_eq!(reg.len(), 512);
        for (mask, c) in (0..512u16).zip(0..512) {
            assert_eq!(reg.get(c).pattern().mask(), mask);
        }
    }

    #[test]
    fn schedule_covers_every_live_kernel_once_in_ic_order() {
        // 3 out × 4 in, codes chosen so groups form and skip bites.
        let codes: Vec<u16> = vec![
            0, 1, 0, 2, // oc 0
            1, 1, 0, 0, // oc 1
            2, 0, 0, 1, // oc 2
        ];
        let mut skip = vec![false; 12];
        skip[1] = true; // (oc 0, ic 1)
        skip[8] = true; // (oc 2, ic 0)
        let s = PatternSchedule::build(&codes, &skip, 3, 4);
        assert_eq!(s.slot_count(), 10);
        let mut seen: Vec<(usize, usize)> = s.slot_kernels().collect();
        // ic-major: entries never go back to an earlier ic.
        let ics: Vec<u32> = s.entries().iter().map(|e| e.ic).collect();
        assert!(ics.windows(2).all(|w| w[0] <= w[1]));
        // Codes are uniform within a group and match the kernel table.
        for e in s.entries() {
            for &oc in s.group_ocs(e) {
                assert!(!skip[oc as usize * 4 + e.ic as usize]);
                assert_eq!(codes[oc as usize * 4 + e.ic as usize], e.code);
            }
        }
        // Exactly the live kernels, each once.
        seen.sort_unstable();
        let mut want: Vec<(usize, usize)> = (0..3)
            .flat_map(|oc| (0..4).map(move |ic| (ic, oc)))
            .filter(|&(ic, oc)| !skip[oc * 4 + ic])
            .collect();
        want.sort_unstable();
        assert_eq!(seen, want);
        assert!(s.untouched_ocs().is_empty());
    }

    #[test]
    fn schedule_last_flags_mark_final_live_ic_per_oc() {
        let codes: Vec<u16> = vec![3, 3, 3, 3, 5, 5];
        // oc 1 fully pruned; oc 2's ic-1 kernel pruned so its last is ic 0.
        let skip = vec![false, false, true, true, false, true];
        let s = PatternSchedule::build(&codes, &skip, 3, 2);
        assert_eq!(s.untouched_ocs(), &[1]);
        let mut lasts: Vec<(usize, usize)> = Vec::new();
        for e in s.entries() {
            for (&oc, &l) in s.group_ocs(e).iter().zip(s.group_last(e)) {
                if l {
                    lasts.push((e.ic as usize, oc as usize));
                }
            }
        }
        lasts.sort_unstable();
        // oc 0 ends at ic 1, oc 2 ends at ic 0 — exactly one flag each.
        assert_eq!(lasts, vec![(0, 2), (1, 0)]);
    }

    #[test]
    fn offset_table_is_per_code() {
        let set = PatternSet::full(9, 1);
        let reg = KernelRegistry::for_set(&set);
        let table = reg.offset_table(6);
        assert_eq!(table.len(), 9);
        for (code, offs) in table.iter().enumerate() {
            assert_eq!(offs, &reg.get(code).offsets(6));
        }
    }
}
