//! The compiled-pattern kernel registry.
//!
//! PCONV-style runtimes get their speed from a simple observation: a
//! 3×3 kernel pruned to pattern `p` is a *fixed* set of `n` taps, so the
//! convolution inner loop for that kernel can be specialised — no mask
//! tests, no index indirection, just `n` shifted multiply-adds. This
//! module performs that specialisation once per pattern:
//!
//! * [`CompiledPattern`] — a pattern lowered to `(ky, kx)` tap
//!   coordinates in SPM rank order (the order of the kernel's packed
//!   non-zero sequence);
//! * [`KernelRegistry`] — the table of compiled patterns for one layer's
//!   [`PatternSet`], indexed by SPM code, with the flat padded-plane
//!   offsets re-derived per input geometry.
//!
//! The unrolled executors themselves live in
//! [`pcnn_tensor::direct::accumulate_rows`]; dispatch onto the right
//! monomorphisation happens through
//! [`pcnn_tensor::direct::accumulate_rows_dyn`].

use pcnn_core::pattern::{Pattern, PatternSet};

/// One pattern lowered to tap coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledPattern {
    pattern: Pattern,
    side: usize,
    /// `(ky, kx)` per tap, ascending kernel-position order — exactly the
    /// rank order of the SPM non-zero sequence.
    taps: Vec<(usize, usize)>,
}

impl CompiledPattern {
    /// Compiles a square-area pattern into tap coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the pattern's area is not a perfect square.
    pub fn compile(pattern: Pattern) -> Self {
        let area = pattern.area();
        let side = (area as f64).sqrt() as usize;
        assert_eq!(side * side, area, "pattern area {area} is not square");
        let taps = pattern
            .positions()
            .into_iter()
            .map(|pos| (pos / side, pos % side))
            .collect();
        CompiledPattern {
            pattern,
            side,
            taps,
        }
    }

    /// The source pattern.
    pub fn pattern(&self) -> Pattern {
        self.pattern
    }

    /// Kernel side length (3 for 3×3).
    pub fn side(&self) -> usize {
        self.side
    }

    /// Number of taps (`n`, the pattern weight).
    pub fn tap_count(&self) -> usize {
        self.taps.len()
    }

    /// The `(ky, kx)` taps in SPM rank order.
    pub fn taps(&self) -> &[(usize, usize)] {
        &self.taps
    }

    /// Flat offsets into a padded plane of width `pw`, in rank order.
    pub fn offsets(&self, pw: usize) -> Vec<usize> {
        self.taps.iter().map(|&(ky, kx)| ky * pw + kx).collect()
    }

    /// Rebuilds the pattern from the compiled taps — the registry
    /// round-trip checked by the property tests.
    pub fn reconstruct(&self) -> Pattern {
        let positions: Vec<usize> = self
            .taps
            .iter()
            .map(|&(ky, kx)| ky * self.side + kx)
            .collect();
        Pattern::from_positions(&positions, self.side * self.side)
    }
}

/// The compiled-kernel table of one layer: one [`CompiledPattern`] per
/// SPM code of the layer's [`PatternSet`].
///
/// # Example
///
/// ```
/// use pcnn_core::PatternSet;
/// use pcnn_runtime::registry::KernelRegistry;
///
/// let set = PatternSet::full(9, 2);
/// let reg = KernelRegistry::for_set(&set);
/// assert_eq!(reg.len(), 36);
/// assert_eq!(reg.get(0).tap_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct KernelRegistry {
    by_code: Vec<CompiledPattern>,
    area: usize,
}

impl KernelRegistry {
    /// Compiles every pattern of `set`, in SPM-code order.
    pub fn for_set(set: &PatternSet) -> Self {
        KernelRegistry {
            by_code: set
                .patterns()
                .iter()
                .map(|&p| CompiledPattern::compile(p))
                .collect(),
            area: set.area(),
        }
    }

    /// Compiles the *entire* 3×3 pattern space (all `2⁹ = 512` masks) —
    /// the "pre-compile everything" configuration for engines that must
    /// accept arbitrary pattern assignments without a distillation step.
    pub fn full_3x3() -> Self {
        KernelRegistry {
            by_code: (0..512u16)
                .map(|mask| CompiledPattern::compile(Pattern::new(mask, 9)))
                .collect(),
            area: 9,
        }
    }

    /// Number of compiled kernels.
    pub fn len(&self) -> usize {
        self.by_code.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.by_code.is_empty()
    }

    /// Kernel area the registry covers.
    pub fn area(&self) -> usize {
        self.area
    }

    /// The compiled kernel for SPM code `code`.
    ///
    /// # Panics
    ///
    /// Panics if `code` is out of range.
    pub fn get(&self, code: usize) -> &CompiledPattern {
        &self.by_code[code]
    }

    /// Precomputes, for every code, the flat padded-plane offsets for
    /// plane width `pw` — done once per (layer, input geometry).
    pub fn offset_table(&self, pw: usize) -> Vec<Vec<usize>> {
        self.by_code.iter().map(|c| c.offsets(pw)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_orders_taps_by_rank() {
        // Pattern positions {1, 3, 8} on 3×3: taps (0,1), (1,0), (2,2).
        let p = Pattern::from_positions(&[1, 3, 8], 9);
        let c = CompiledPattern::compile(p);
        assert_eq!(c.taps(), &[(0, 1), (1, 0), (2, 2)]);
        assert_eq!(c.tap_count(), 3);
    }

    #[test]
    fn offsets_respect_padded_width() {
        let p = Pattern::from_positions(&[0, 4, 8], 9);
        let c = CompiledPattern::compile(p);
        assert_eq!(c.offsets(10), vec![0, 11, 22]);
        assert_eq!(c.offsets(7), vec![0, 8, 16]);
    }

    #[test]
    fn reconstruct_roundtrips_every_3x3_pattern() {
        for mask in 0..512u16 {
            let p = Pattern::new(mask, 9);
            assert_eq!(CompiledPattern::compile(p).reconstruct(), p);
        }
    }

    #[test]
    fn registry_matches_set_order() {
        let set = PatternSet::full(9, 4);
        let reg = KernelRegistry::for_set(&set);
        assert_eq!(reg.len(), set.len());
        for code in 0..set.len() {
            assert_eq!(reg.get(code).pattern(), set.get(code));
        }
    }

    #[test]
    fn full_registry_covers_the_whole_space() {
        let reg = KernelRegistry::full_3x3();
        assert_eq!(reg.len(), 512);
        for (mask, c) in (0..512u16).zip(0..512) {
            assert_eq!(reg.get(c).pattern().mask(), mask);
        }
    }

    #[test]
    fn offset_table_is_per_code() {
        let set = PatternSet::full(9, 1);
        let reg = KernelRegistry::for_set(&set);
        let table = reg.offset_table(6);
        assert_eq!(table.len(), 9);
        for (code, offs) in table.iter().enumerate() {
            assert_eq!(offs, &reg.get(code).offsets(6));
        }
    }
}
