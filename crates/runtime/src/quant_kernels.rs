//! The integer-side kernels of the quantised execution path: activation
//! quantisation and the requantisation epilogue.
//!
//! The int8 contract is the standard one (and the one the paper's
//! accelerator SRAM sizing assumes): weights quantise per layer at
//! compile time, activations **per image** at run time, MACs accumulate
//! in `i32`, and one multiply by `s_w · s_a` returns to real values — at
//! which point the folded batch-norm shift (the conv bias) adds and the
//! fused ReLU clamps, so the whole float epilogue is a single pass over
//! the finished accumulator plane. Per-image (rather than per-batch)
//! activation scales matter for serving: a request's output must not
//! depend on which other requests the dynamic batcher happened to
//! coalesce it with.
//!
//! Activation quantisation is *fused into plane padding*
//! ([`pcnn_tensor::direct::pad_quant_plane_overwrite`]): the batched
//! runtime pads every input plane once per batch anyway, so the i8
//! activation tensor is materialised directly in padded form and costs
//! no extra pass. The scale derivation goes through
//! [`QuantParams::for_max_abs`], guaranteeing codes bit-identical to
//! `pcnn_core::quant::quantize_symmetric` — which is what lets the
//! parity suite compare the integer path against the
//! dequantise-then-f32 reference at 1e-5.

use pcnn_core::quant::QuantParams;
use pcnn_tensor::direct::{max_abs_at, pad_quant_plane_overwrite_at, padded_dims};
use pcnn_tensor::simd::{self, SimdLevel};

/// Symmetric activation parameters for one image: the scale maps the
/// image's maximum absolute activation to the top code of `bits` bits
/// (all-zero inputs get scale 1.0, same as `quantize_symmetric`). The
/// max-abs reduction runs on the active SIMD tier
/// ([`pcnn_tensor::direct::max_abs`]) — exact on every tier, since
/// `max`/`abs` have no rounding.
///
/// # Panics
///
/// Panics if `bits` is outside `2..=8`.
pub fn activation_params(data: &[f32], bits: u32) -> QuantParams {
    activation_params_at(simd::active(), data, bits)
}

/// [`activation_params`] with the SIMD tier pinned by the caller.
pub fn activation_params_at(level: SimdLevel, data: &[f32], bits: u32) -> QuantParams {
    QuantParams::for_max_abs(max_abs_at(level, data), bits)
}

/// Activation parameters for each image of an `n`-image batch,
/// **independently** — the scale an image quantises at must not depend
/// on which requests it happened to coalesce with, so a request's int8
/// output is bit-identical whether it runs alone or inside any batch.
///
/// # Panics
///
/// Panics if `input.len()` is not a multiple of `n` or `bits` is
/// outside `2..=8`.
pub fn per_image_activation_params(input: &[f32], n: usize, bits: u32) -> Vec<QuantParams> {
    per_image_activation_params_at(simd::active(), input, n, bits)
}

/// [`per_image_activation_params`] with the SIMD tier pinned by the
/// caller.
pub fn per_image_activation_params_at(
    level: SimdLevel,
    input: &[f32],
    n: usize,
    bits: u32,
) -> Vec<QuantParams> {
    assert_eq!(input.len() % n.max(1), 0, "input length not divisible");
    let img = input.len() / n.max(1);
    (0..n)
        .map(|ni| activation_params_at(level, &input[ni * img..(ni + 1) * img], bits))
        .collect()
}

/// Quantises and pads every plane of an `n × in_c × h × w` batch into
/// `buf` (resized to `n · in_c` padded i8 planes, fully overwritten):
/// image `ni`'s channel `ic` lands at plane index `ni · in_c + ic`,
/// quantised at that image's own scale (`params[ni]`).
///
/// # Panics
///
/// Panics if `input.len() != n · in_c · h · w` or `params.len() != n`.
#[allow(clippy::too_many_arguments)] // batch-plane geometry is irreducible
pub fn quantize_batch_planes(
    input: &[f32],
    n: usize,
    in_c: usize,
    h: usize,
    w: usize,
    pad: usize,
    params: &[QuantParams],
    buf: &mut Vec<i8>,
) {
    quantize_batch_planes_at(simd::active(), input, n, in_c, h, w, pad, params, buf);
}

/// [`quantize_batch_planes`] with the SIMD tier pinned by the caller.
#[allow(clippy::too_many_arguments)] // batch-plane geometry is irreducible
pub fn quantize_batch_planes_at(
    level: SimdLevel,
    input: &[f32],
    n: usize,
    in_c: usize,
    h: usize,
    w: usize,
    pad: usize,
    params: &[QuantParams],
    buf: &mut Vec<i8>,
) {
    assert_eq!(input.len(), n * in_c * h * w, "input length mismatch");
    assert_eq!(params.len(), n, "one QuantParams per image");
    let (ph, pw) = padded_dims(h, w, pad);
    let plane_len = ph * pw;
    let need = n * in_c * plane_len;
    if buf.len() < need {
        buf.resize(need, 0);
    }
    let img = in_c * h * w;
    for (ni, p) in params.iter().enumerate() {
        let q_max = p.q_max();
        for ic in 0..in_c {
            pad_quant_plane_overwrite_at(
                level,
                &input[ni * img + ic * h * w..ni * img + (ic + 1) * h * w],
                h,
                w,
                pad,
                p.scale,
                q_max,
                &mut buf[(ni * in_c + ic) * plane_len..(ni * in_c + ic + 1) * plane_len],
            );
        }
    }
}

/// The requantisation epilogue: maps one finished `i32` accumulator
/// plane back to real values in a single pass —
/// `out[i] = acc[i] · scale + bias`, optionally clamped at zero (the
/// fused ReLU). `scale` is the product of the weight and activation
/// scales.
///
/// # Panics
///
/// Panics if `acc.len() != out.len()`.
pub fn requantize_plane(acc: &[i32], scale: f32, bias: f32, relu: bool, out: &mut [f32]) {
    requantize_plane_at(simd::active(), acc, scale, bias, relu, out);
}

/// [`requantize_plane`] with the SIMD tier pinned by the caller. The
/// arithmetic is identical on both tiers (convert, multiply, add, max —
/// one rounding each, no FMA); the AVX2 instantiation just runs it
/// 8-wide.
pub fn requantize_plane_at(
    level: SimdLevel,
    acc: &[i32],
    scale: f32,
    bias: f32,
    relu: bool,
    out: &mut [f32],
) {
    match level.effective() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            // SAFETY: `effective()` returns Avx2 only after a positive
            // (cached) CPUID check on this host.
            unsafe { requantize_plane_avx2(acc, scale, bias, relu, out) }
        }
        _ => requantize_plane_impl(acc, scale, bias, relu, out),
    }
}

/// # Safety
///
/// AVX2 must be available on the executing CPU.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn requantize_plane_avx2(acc: &[i32], scale: f32, bias: f32, relu: bool, out: &mut [f32]) {
    requantize_plane_impl(acc, scale, bias, relu, out);
}

#[inline(always)]
fn requantize_plane_impl(acc: &[i32], scale: f32, bias: f32, relu: bool, out: &mut [f32]) {
    assert_eq!(acc.len(), out.len(), "plane length mismatch");
    if relu {
        for (o, &a) in out.iter_mut().zip(acc) {
            *o = (a as f32 * scale + bias).max(0.0);
        }
    } else {
        for (o, &a) in out.iter_mut().zip(acc) {
            *o = a as f32 * scale + bias;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnn_core::quant::{dequantize, quantize_symmetric};

    #[test]
    fn activation_params_match_quantize_symmetric() {
        let data: Vec<f32> = (0..100).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let (_, want) = quantize_symmetric(&data, 8);
        let got = activation_params(&data, 8);
        assert_eq!(got, want);
        assert_eq!(activation_params(&[0.0; 4], 8).scale, 1.0);
    }

    #[test]
    fn quantize_batch_planes_codes_match_quantize_symmetric_per_image() {
        // 2 images × 2 channels of 3×3, pad 1: each image's interior
        // codes must equal the flat quantiser's run on that image alone,
        // and borders must be the zero code.
        let input: Vec<f32> = (0..2 * 2 * 9)
            .map(|i| (i as f32 * 0.11).cos() * (1.0 + i as f32 * 0.05))
            .collect();
        let img = 2 * 9;
        let params = per_image_activation_params(&input, 2, 8);
        // Distinct max-abs per image → distinct scales, proving the
        // independence property.
        assert_ne!(params[0].scale, params[1].scale);
        let mut buf = Vec::new();
        quantize_batch_planes(&input, 2, 2, 3, 3, 1, &params, &mut buf);
        let (ph, pw) = padded_dims(3, 3, 1);
        assert_eq!(buf.len(), 4 * ph * pw);
        for ni in 0..2 {
            let (flat, flat_params) = quantize_symmetric(&input[ni * img..(ni + 1) * img], 8);
            assert_eq!(params[ni], flat_params);
            for ic in 0..2 {
                let plane = ni * 2 + ic;
                for y in 0..3 {
                    for x in 0..3 {
                        let padded = buf[plane * ph * pw + (y + 1) * pw + (x + 1)];
                        assert_eq!(padded, flat[ic * 9 + y * 3 + x]);
                    }
                }
                // Top border row is all zero codes.
                assert!(buf[plane * ph * pw..plane * ph * pw + pw]
                    .iter()
                    .all(|&q| q == 0));
            }
        }
    }

    #[test]
    fn requantize_recovers_dequantized_products() {
        // acc = qw·qa for a few hand values; requant must equal the
        // dequantised float product plus bias.
        let (qw, wp) = quantize_symmetric(&[0.5, -0.25, 0.125], 8);
        let (qa, ap) = quantize_symmetric(&[0.75, 0.1, -0.6], 8);
        let acc: Vec<i32> = qw
            .iter()
            .zip(&qa)
            .map(|(&w, &a)| w as i32 * a as i32)
            .collect();
        let mut out = vec![0.0f32; 3];
        requantize_plane(&acc, wp.scale * ap.scale, 0.05, false, &mut out);
        let wd = dequantize(&qw, wp);
        let ad = dequantize(&qa, ap);
        for i in 0..3 {
            assert!((out[i] - (wd[i] * ad[i] + 0.05)).abs() < 1e-6);
        }
        // ReLU clamps the negative product.
        requantize_plane(&acc, wp.scale * ap.scale, 0.0, true, &mut out);
        assert_eq!(out[2], 0.0);
        assert!(out[0] > 0.0);
    }
}
