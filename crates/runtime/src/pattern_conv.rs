//! The executable pattern-sparse convolution layer.
//!
//! [`PatternConv`] owns an SPM-encoded weight layer plus its compiled
//! [`KernelRegistry`] and executes the convolution directly: each input
//! plane is zero-padded once, then every (out-channel, in-channel)
//! kernel contributes `n` shifted row accumulations through the unrolled
//! micro-kernels of [`pcnn_tensor::direct`]. Compared with dense im2col
//! this touches `n/k²` of the weights and never materialises the column
//! matrix.
//!
//! Kernels whose non-zero sequence is entirely zero — the signature of
//! an *orthogonal* coarse-grained pruning pass (kernel/channel pruning
//! on top of PCNN, `pcnn_core::fuse`) — are skipped outright, so fused
//! coarse+pattern sparsity shows up as real runtime savings.

use crate::profile::{ConvPass, LayerStats};
use crate::registry::{KernelRegistry, PatternSchedule};
use pcnn_core::pattern::PatternSet;
use pcnn_core::spm::{EncodeSpmError, SpmLayer};
use pcnn_tensor::conv::Conv2dShape;
use pcnn_tensor::direct::{
    accumulate_plane_batch_dyn_at, accumulate_plane_dyn, pad_plane_into, pad_plane_overwrite,
    padded_dims, relu_in_place_at, BatchPlanes,
};
use pcnn_tensor::simd::{self, SimdLevel};
use pcnn_tensor::Tensor;
use std::time::Instant;

/// A compiled, immutable, thread-safe sparse convolution.
#[derive(Debug, Clone)]
pub struct PatternConv {
    spm: SpmLayer,
    registry: KernelRegistry,
    shape: Conv2dShape,
    /// Per-output-channel bias added after accumulation (folded
    /// batch-norm shift and/or the conv's own bias).
    bias: Option<Vec<f32>>,
    /// Fused ReLU applied to the finished output plane.
    relu: bool,
    /// Per-kernel skip flags for all-zero (coarsely pruned) kernels.
    skip: Vec<bool>,
    /// The pattern-grouped execution order (ic-major, per-code groups).
    schedule: PatternSchedule,
    /// Non-zero weights packed in schedule-slot order (`n` per slot).
    packed: Vec<f32>,
    /// Execute batches pattern-grouped (default) or oc-major.
    grouped: bool,
}

impl PatternConv {
    /// Compiles an SPM layer into an executable sparse convolution.
    ///
    /// # Panics
    ///
    /// Panics if the SPM geometry disagrees with `shape`.
    pub fn from_spm(spm: SpmLayer, shape: Conv2dShape) -> Self {
        assert_eq!(spm.out_channels(), shape.out_c, "out_c mismatch");
        assert_eq!(spm.in_channels(), shape.in_c, "in_c mismatch");
        assert_eq!(
            spm.pattern_set().area(),
            shape.kernel_area(),
            "kernel area mismatch"
        );
        let registry = KernelRegistry::for_set(spm.pattern_set());
        let skip: Vec<bool> = (0..spm.kernel_count())
            .map(|ki| spm.kernel_is_zero(ki))
            .collect();
        let schedule = PatternSchedule::build(spm.codes(), &skip, shape.out_c, shape.in_c);
        let n = spm.nonzeros_per_kernel();
        let mut packed = Vec::with_capacity(schedule.slot_count() * n);
        for (ic, oc) in schedule.slot_kernels() {
            packed.extend_from_slice(spm.kernel_nonzeros(oc * shape.in_c + ic));
        }
        PatternConv {
            spm,
            registry,
            shape,
            bias: None,
            relu: false,
            skip,
            schedule,
            packed,
            grouped: true,
        }
    }

    /// Encodes a pattern-conformant dense OIHW weight and compiles it.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeSpmError`] when a kernel's support fits no
    /// pattern of `set`.
    pub fn from_dense(
        weight: &Tensor,
        shape: Conv2dShape,
        set: &PatternSet,
    ) -> Result<Self, EncodeSpmError> {
        Ok(Self::from_spm(SpmLayer::encode(weight, set)?, shape))
    }

    /// Attaches a per-output-channel bias (folded BN shift).
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != out_c`.
    pub fn with_bias(mut self, bias: Vec<f32>) -> Self {
        assert_eq!(bias.len(), self.shape.out_c, "bias length mismatch");
        self.bias = Some(bias);
        self
    }

    /// Fuses a ReLU into the layer's epilogue.
    pub fn with_relu(mut self, relu: bool) -> Self {
        self.relu = relu;
        self
    }

    /// Selects pattern-grouped (default) or oc-major batched execution.
    /// Both orders produce bit-identical results; grouped execution
    /// streams each padded input plane through all of its consumers
    /// with one offset-table load per pattern group.
    pub fn with_grouping(mut self, grouped: bool) -> Self {
        self.grouped = grouped;
        self
    }

    /// Whether batched execution runs pattern-grouped.
    pub fn is_grouped(&self) -> bool {
        self.grouped
    }

    /// The pattern-grouped execution schedule.
    pub fn schedule(&self) -> &PatternSchedule {
        &self.schedule
    }

    /// The underlying SPM encoding.
    pub fn spm(&self) -> &SpmLayer {
        &self.spm
    }

    /// The compiled kernel registry.
    pub fn registry(&self) -> &KernelRegistry {
        &self.registry
    }

    /// The convolution shape.
    pub fn shape(&self) -> &Conv2dShape {
        &self.shape
    }

    /// Whether a ReLU is fused into this layer.
    pub fn has_relu(&self) -> bool {
        self.relu
    }

    /// The per-output-channel bias, when one is attached.
    pub fn bias(&self) -> Option<&[f32]> {
        self.bias.as_deref()
    }

    /// Number of kernels skipped as all-zero (orthogonal coarse pruning).
    pub fn skipped_kernels(&self) -> usize {
        self.skip.iter().filter(|&&s| s).count()
    }

    /// Executes on an NCHW input with batch-level amortisation.
    ///
    /// # Panics
    ///
    /// Panics on input shape mismatch.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let dims = input.shape();
        assert_eq!(dims.len(), 4, "input must be NCHW");
        let (n, in_c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        assert_eq!(in_c, self.shape.in_c, "input channel mismatch");
        let (oh, ow) = self.shape.out_hw(h, w);
        let mut out = Tensor::zeros(&[n, self.shape.out_c, oh, ow]);
        let mut scratch = Vec::new();
        self.forward_batch(input.as_slice(), n, h, w, out.as_mut_slice(), &mut scratch);
        out
    }

    /// The batched execution path: pads **every** plane of **every**
    /// image once per batch, then walks the layer's kernels
    /// **pattern-grouped** (or oc-major, see
    /// [`PatternConv::with_grouping`]) with images in the inner loop, so
    /// per-kernel SPM code/weight/offset lookups — and the offset table
    /// itself — are paid once per batch rather than once per image. This
    /// is what makes dynamic batching in `pcnn-serve` cheaper than
    /// per-image dispatch even on a single core.
    ///
    /// `input` is `n` contiguous `in_c × h × w` images; `out` is `n`
    /// contiguous `out_c × oh × ow` outputs, fully overwritten.
    /// `scratch` is reused across calls (grows to `n · in_c` padded
    /// planes).
    ///
    /// # Panics
    ///
    /// Panics if `input` or `out` have the wrong length.
    pub fn forward_batch(
        &self,
        input: &[f32],
        n: usize,
        h: usize,
        w: usize,
        out: &mut [f32],
        scratch: &mut Vec<f32>,
    ) {
        self.forward_batch_at(simd::active(), self.grouped, input, n, h, w, out, scratch);
    }

    /// [`PatternConv::forward_batch`] on the legacy **oc-major** kernel
    /// walk, kept as the parity oracle and bench baseline for the
    /// pattern-grouped order (both produce bit-identical outputs).
    pub fn forward_batch_oc_major(
        &self,
        input: &[f32],
        n: usize,
        h: usize,
        w: usize,
        out: &mut [f32],
        scratch: &mut Vec<f32>,
    ) {
        self.forward_batch_at(simd::active(), false, input, n, h, w, out, scratch);
    }

    /// The fully pinned batched entry point: the SIMD tier and kernel
    /// walk order chosen by the caller (benches and property suites
    /// diff the four combinations against each other).
    ///
    /// # Panics
    ///
    /// Panics if `input` or `out` have the wrong length.
    #[allow(clippy::too_many_arguments)] // bench/test entry point: every axis is load-bearing
    pub fn forward_batch_at(
        &self,
        level: SimdLevel,
        grouped: bool,
        input: &[f32],
        n: usize,
        h: usize,
        w: usize,
        out: &mut [f32],
        scratch: &mut Vec<f32>,
    ) {
        self.forward_batch_impl(level, grouped, input, n, h, w, out, scratch, None);
    }

    /// [`PatternConv::forward`] with per-phase instrumentation into a
    /// profiler slot — the profiled graph walk's entry point. The
    /// caller's entry time anchors the pass, so output allocation counts
    /// into the pad phase.
    pub(crate) fn forward_profiled(&self, input: &Tensor, stats: &LayerStats) -> Tensor {
        let start = Instant::now();
        let dims = input.shape();
        assert_eq!(dims.len(), 4, "input must be NCHW");
        let (n, in_c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        assert_eq!(in_c, self.shape.in_c, "input channel mismatch");
        let (oh, ow) = self.shape.out_hw(h, w);
        let mut out = Tensor::zeros(&[n, self.shape.out_c, oh, ow]);
        let mut scratch = Vec::new();
        self.forward_batch_impl(
            simd::active(),
            self.grouped,
            input.as_slice(),
            n,
            h,
            w,
            out.as_mut_slice(),
            &mut scratch,
            Some((stats, start)),
        );
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn forward_batch_impl(
        &self,
        level: SimdLevel,
        grouped: bool,
        input: &[f32],
        n: usize,
        h: usize,
        w: usize,
        out: &mut [f32],
        scratch: &mut Vec<f32>,
        profile: Option<(&LayerStats, Instant)>,
    ) {
        let shape = &self.shape;
        let (oh, ow) = shape.out_hw(h, w);
        let in_img = shape.in_c * h * w;
        let out_img = shape.out_c * oh * ow;
        let out_plane_len = oh * ow;
        assert_eq!(input.len(), n * in_img, "input length mismatch");
        assert_eq!(out.len(), n * out_img, "output length mismatch");

        // Geometry is fixed across the batch: derive the per-code tap
        // offsets once.
        let (ph, pw) = padded_dims(h, w, shape.pad);
        let offsets = self.registry.offset_table(pw);
        let plane_len = ph * pw;
        let in_c = shape.in_c;
        let row_stride = shape.stride * pw;

        // Pad each input plane once per batch, all images up front. The
        // overwrite variant tolerates stale scratch contents, so a
        // reused buffer costs one write per element, not two.
        let scratch_len = n * in_c * plane_len;
        if scratch.len() < scratch_len {
            scratch.resize(scratch_len, 0.0);
        }
        let scratch = &mut scratch[..scratch_len];
        for ni in 0..n {
            for ic in 0..in_c {
                pad_plane_overwrite(
                    &input[ni * in_img + ic * h * w..ni * in_img + (ic + 1) * h * w],
                    h,
                    w,
                    shape.pad,
                    &mut scratch[(ni * in_c + ic) * plane_len..(ni * in_c + ic + 1) * plane_len],
                );
            }
        }

        // Seed every output plane with its channel bias.
        for ni in 0..n {
            for oc in 0..shape.out_c {
                out[ni * out_img + oc * out_plane_len..ni * out_img + (oc + 1) * out_plane_len]
                    .fill(self.bias.as_ref().map_or(0.0, |b| b[oc]));
            }
        }

        // Phase boundary: everything up to here (padding + bias seeding,
        // plus the caller's output allocation) is the pad phase.
        let profiling = profile.is_some();
        let pad_done = profiling.then(Instant::now);
        let mut dispatches = 0u64;
        let mut epi_ns = 0u64;

        let in_img_padded = in_c * plane_len;
        let geo_for = |ic: usize, oc: usize| BatchPlanes {
            out_base: oc * out_plane_len,
            out_stride: out_img,
            in_base: ic * plane_len,
            in_stride: in_img_padded,
            plane_len,
            n,
        };

        if grouped {
            // Pattern-grouped walk: one offset-table load per (ic,
            // pattern) group, packed contiguous weight reads, each
            // padded input plane streamed through all of its consumers
            // while hot. The fused ReLU runs per output channel right
            // after its final live kernel (the plane is still in cache)
            // instead of as a whole-tensor pass at the end.
            let nz = self.spm.nonzeros_per_kernel();
            for entry in self.schedule.entries() {
                let offs = &offsets[entry.code as usize];
                let ic = entry.ic as usize;
                let slot0 = entry.start as usize;
                let lasts = self.schedule.group_last(entry);
                for (s, &oc) in self.schedule.group_ocs(entry).iter().enumerate() {
                    let oc = oc as usize;
                    let wts = &self.packed[(slot0 + s) * nz..(slot0 + s + 1) * nz];
                    dispatches += 1;
                    accumulate_plane_batch_dyn_at(
                        level,
                        out,
                        scratch,
                        geo_for(ic, oc),
                        oh,
                        ow,
                        row_stride,
                        offs,
                        wts,
                        shape.stride,
                    );
                    if self.relu && lasts[s] {
                        let t = profiling.then(Instant::now);
                        for ni in 0..n {
                            let base = ni * out_img + oc * out_plane_len;
                            relu_in_place_at(level, &mut out[base..base + out_plane_len]);
                        }
                        if let Some(t) = t {
                            epi_ns += t.elapsed().as_nanos() as u64;
                        }
                    }
                }
            }
            if self.relu {
                // Fully coarse-pruned channels never hit the fold; their
                // planes still hold a possibly-negative bias seed.
                let t = profiling.then(Instant::now);
                for &oc in self.schedule.untouched_ocs() {
                    let oc = oc as usize;
                    for ni in 0..n {
                        let base = ni * out_img + oc * out_plane_len;
                        relu_in_place_at(level, &mut out[base..base + out_plane_len]);
                    }
                }
                if let Some(t) = t {
                    epi_ns += t.elapsed().as_nanos() as u64;
                }
            }
        } else {
            // Legacy oc-major walk with a trailing whole-tensor ReLU.
            for oc in 0..shape.out_c {
                for ic in 0..in_c {
                    let ki = oc * in_c + ic;
                    if self.skip[ki] {
                        continue;
                    }
                    let code = self.spm.code(ki) as usize;
                    let offs = &offsets[code];
                    let wts = self.spm.kernel_nonzeros(ki);
                    dispatches += 1;
                    accumulate_plane_batch_dyn_at(
                        level,
                        out,
                        scratch,
                        geo_for(ic, oc),
                        oh,
                        ow,
                        row_stride,
                        offs,
                        wts,
                        shape.stride,
                    );
                }
            }
            if self.relu {
                let t = profiling.then(Instant::now);
                relu_in_place_at(level, out);
                if let Some(t) = t {
                    epi_ns += t.elapsed().as_nanos() as u64;
                }
            }
        }

        if let Some((stats, start)) = profile {
            let total = start.elapsed().as_nanos() as u64;
            let pad_ns = pad_done.map_or(0, |p| (p - start).as_nanos() as u64);
            stats.record_conv(&ConvPass {
                images: n as u64,
                pad_ns,
                kernel_ns: total.saturating_sub(pad_ns).saturating_sub(epi_ns),
                epilogue_ns: epi_ns,
                kernel_dispatches: dispatches,
                pattern_groups: if grouped {
                    self.schedule.entries().len() as u64
                } else {
                    0
                },
                zero_kernels_skipped: self.skipped_kernels() as u64,
                padded_bytes: (scratch_len * std::mem::size_of::<f32>()) as u64,
                level,
            });
        }
    }

    /// Executes one `in_c × h × w` image into a preallocated
    /// `out_c × oh × ow` buffer, reusing `scratch` for the padded
    /// planes. Batch callers should prefer [`PatternConv::forward`],
    /// which amortises the offset table across images.
    pub fn forward_image(
        &self,
        image: &[f32],
        h: usize,
        w: usize,
        out_image: &mut [f32],
        scratch: &mut Vec<f32>,
    ) {
        let (_, pw) = padded_dims(h, w, self.shape.pad);
        let offsets = self.registry.offset_table(pw);
        self.forward_image_with(image, h, w, out_image, scratch, &offsets);
    }

    fn forward_image_with(
        &self,
        image: &[f32],
        h: usize,
        w: usize,
        out_image: &mut [f32],
        scratch: &mut Vec<f32>,
        offsets: &[Vec<usize>],
    ) {
        let shape = &self.shape;
        let (oh, ow) = shape.out_hw(h, w);
        assert_eq!(image.len(), shape.in_c * h * w, "image length mismatch");
        assert_eq!(
            out_image.len(),
            shape.out_c * oh * ow,
            "output length mismatch"
        );
        let (ph, pw) = padded_dims(h, w, shape.pad);
        let plane_len = ph * pw;

        // Pad every input plane once, writing rows straight into the
        // shared scratch buffer (no per-plane temporary).
        scratch.clear();
        scratch.resize(shape.in_c * plane_len, 0.0);
        for ic in 0..shape.in_c {
            pad_plane_into(
                &image[ic * h * w..(ic + 1) * h * w],
                h,
                w,
                shape.pad,
                &mut scratch[ic * plane_len..(ic + 1) * plane_len],
            );
        }

        let in_c = shape.in_c;
        let row_stride = shape.stride * pw;
        for oc in 0..shape.out_c {
            let out_plane = &mut out_image[oc * oh * ow..(oc + 1) * oh * ow];
            out_plane.fill(self.bias.as_ref().map_or(0.0, |b| b[oc]));
            for ic in 0..in_c {
                let ki = oc * in_c + ic;
                if self.skip[ki] {
                    continue;
                }
                let code = self.spm.code(ki) as usize;
                let offs = &offsets[code];
                let wts = self.spm.kernel_nonzeros(ki);
                let plane = &scratch[ic * plane_len..(ic + 1) * plane_len];
                accumulate_plane_dyn(out_plane, plane, ow, row_stride, offs, wts, shape.stride);
            }
            if self.relu {
                for v in out_plane.iter_mut() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnn_core::project::project_onto_set;
    use pcnn_tensor::conv::conv2d_direct;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn random_pruned(out_c: usize, in_c: usize, set: &PatternSet, seed: u64) -> Tensor {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut w = Tensor::from_vec(
            (0..out_c * in_c * 9)
                .map(|_| rng.gen_range(-1.0f32..1.0))
                .collect(),
            &[out_c, in_c, 3, 3],
        );
        for kernel in w.as_mut_slice().chunks_mut(9) {
            let _ = project_onto_set(kernel, set);
        }
        w
    }

    fn random_input(shape: &[usize], seed: u64) -> Tensor {
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = shape.iter().product();
        Tensor::from_vec(
            (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
            shape,
        )
    }

    #[test]
    fn matches_dense_reference_padded() {
        for n in [1usize, 2, 4] {
            let set = PatternSet::full(9, n);
            let shape = Conv2dShape::new(3, 5, 3, 1, 1);
            let w = random_pruned(5, 3, &set, 7 + n as u64);
            let x = random_input(&[2, 3, 6, 6], 11);
            let conv = PatternConv::from_dense(&w, shape, &set).expect("encode");
            let got = conv.forward(&x);
            let want = conv2d_direct(&x, &w, None, &shape);
            pcnn_tensor::assert_slices_close(got.as_slice(), want.as_slice(), 1e-5);
        }
    }

    #[test]
    fn matches_dense_reference_strided() {
        let set = PatternSet::full(9, 3);
        let shape = Conv2dShape::new(2, 4, 3, 2, 1);
        let w = random_pruned(4, 2, &set, 3);
        let x = random_input(&[1, 2, 9, 9], 5);
        let conv = PatternConv::from_dense(&w, shape, &set).expect("encode");
        let got = conv.forward(&x);
        let want = conv2d_direct(&x, &w, None, &shape);
        pcnn_tensor::assert_slices_close(got.as_slice(), want.as_slice(), 1e-5);
    }

    #[test]
    fn bias_and_relu_epilogue() {
        let set = PatternSet::full(9, 2);
        let shape = Conv2dShape::new(1, 2, 3, 1, 1);
        let w = random_pruned(2, 1, &set, 9);
        let x = random_input(&[1, 1, 5, 5], 13);
        let bias = vec![0.7f32, -0.9];
        let conv = PatternConv::from_dense(&w, shape, &set)
            .expect("encode")
            .with_bias(bias.clone())
            .with_relu(true);
        let got = conv.forward(&x);
        let bias_t = Tensor::from_vec(bias, &[2]);
        let want = conv2d_direct(&x, &w, Some(&bias_t), &shape).map(|v| v.max(0.0));
        pcnn_tensor::assert_slices_close(got.as_slice(), want.as_slice(), 1e-5);
        assert!(got.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn zero_kernels_are_skipped() {
        let set = PatternSet::full(9, 2);
        let mut w = random_pruned(4, 3, &set, 21);
        // Coarse-prune output channel 1: all its kernels become zero.
        let area = 9;
        for ic in 0..3 {
            let ki = 3 + ic;
            w.as_mut_slice()[ki * area..(ki + 1) * area].fill(0.0);
        }
        let shape = Conv2dShape::new(3, 4, 3, 1, 1);
        let conv = PatternConv::from_dense(&w, shape, &set).expect("encode");
        assert_eq!(conv.skipped_kernels(), 3);
        let x = random_input(&[1, 3, 6, 6], 23);
        let got = conv.forward(&x);
        let want = conv2d_direct(&x, &w, None, &shape);
        pcnn_tensor::assert_slices_close(got.as_slice(), want.as_slice(), 1e-5);
    }

    #[test]
    fn batched_padding_matches_per_image_path_with_epilogue() {
        // The amortised batch path (pad once per batch, images in the
        // inner loop) must agree with driving forward_image per image,
        // including strided geometry and the bias+ReLU epilogue.
        for (stride, relu) in [(1usize, false), (1, true), (2, true)] {
            let set = PatternSet::full(9, 2);
            let shape = Conv2dShape::new(3, 4, 3, stride, 1);
            let w = random_pruned(4, 3, &set, 41 + stride as u64);
            let bias: Vec<f32> = (0..4).map(|i| 0.3 * i as f32 - 0.4).collect();
            let conv = PatternConv::from_dense(&w, shape, &set)
                .expect("encode")
                .with_bias(bias)
                .with_relu(relu);
            let (h, w_in) = (7usize, 9usize);
            let batch = random_input(&[5, 3, h, w_in], 43);
            let whole = conv.forward(&batch);
            let (oh, ow) = shape.out_hw(h, w_in);
            let out_len = shape.out_c * oh * ow;
            let img_len = 3 * h * w_in;
            let mut scratch = Vec::new();
            for ni in 0..5 {
                let mut single = vec![0.0f32; out_len];
                conv.forward_image(
                    &batch.as_slice()[ni * img_len..(ni + 1) * img_len],
                    h,
                    w_in,
                    &mut single,
                    &mut scratch,
                );
                pcnn_tensor::assert_slices_close(
                    &single,
                    &whole.as_slice()[ni * out_len..(ni + 1) * out_len],
                    1e-6,
                );
            }
        }
    }

    #[test]
    fn batch_processing_matches_per_image() {
        let set = PatternSet::full(9, 4);
        let shape = Conv2dShape::new(2, 3, 3, 1, 1);
        let w = random_pruned(3, 2, &set, 31);
        let conv = PatternConv::from_dense(&w, shape, &set).expect("encode");
        let batch = random_input(&[3, 2, 5, 5], 37);
        let whole = conv.forward(&batch);
        let (oh, ow) = shape.out_hw(5, 5);
        let out_len = shape.out_c * oh * ow;
        let mut scratch = Vec::new();
        for ni in 0..3 {
            // Drive the single-image entry point directly.
            let mut single = vec![0.0f32; out_len];
            conv.forward_image(
                &batch.as_slice()[ni * 2 * 25..(ni + 1) * 2 * 25],
                5,
                5,
                &mut single,
                &mut scratch,
            );
            pcnn_tensor::assert_slices_close(
                &single,
                &whole.as_slice()[ni * out_len..(ni + 1) * out_len],
                1e-6,
            );
        }
    }
}
