//! Opt-in per-layer execution profiling.
//!
//! An [`ExecProfiler`] is built alongside every [`crate::Engine`] from
//! its compiled graph: one [`LayerStats`] slot per executable op (and
//! per lowering, so f32 and int8 aggregate separately). Profiling is
//! **off by default** — the slots exist but no timestamps are taken —
//! and flips on with [`ExecProfiler::set_enabled`] (or
//! `Engine::enable_profiling`), at which point every graph pass records
//! per-layer wall time split by phase:
//!
//! * **pad** — padded-plane construction, including activation
//!   quantisation and accumulator setup on the int8 path;
//! * **kernel** — the compiled pattern-kernel dispatches themselves;
//! * **epilogue** — fused ReLU / requantisation tails.
//!
//! Convolution layers additionally count kernel dispatches, pattern
//! groups walked, zero kernels skipped, bytes of padded planes built,
//! and the SIMD tier actually dispatched. The aggregate snapshot
//! ([`ExecProfile`]) is the measured per-layer cost model the
//! bench-driven kernel-plan work consumes — the same role profiled
//! execution plays in the PatDNN/PCONV compiler line.
//!
//! All counters are relaxed atomics: recording from concurrent engine
//! workers never takes a lock, and the steady-state cost with profiling
//! disabled is one relaxed load per graph pass.

use crate::graph::ExecutableGraph;
use crate::ops::Op;
use crate::quant_conv::Precision;
use pcnn_sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use pcnn_tensor::simd::{self, SimdLevel};

/// Lock-free accumulation cell for one executable layer of one lowering.
#[derive(Debug, Default)]
pub struct LayerStats {
    calls: AtomicU64,
    images: AtomicU64,
    pad_ns: AtomicU64,
    kernel_ns: AtomicU64,
    epilogue_ns: AtomicU64,
    kernel_dispatches: AtomicU64,
    pattern_groups: AtomicU64,
    zero_kernels_skipped: AtomicU64,
    padded_bytes: AtomicU64,
    /// SIMD tier last dispatched: 0 = none recorded, 1 = scalar,
    /// 2 = AVX2.
    simd: AtomicU8,
}

/// One instrumented convolution pass, handed to
/// [`LayerStats::record_conv`] by the pattern/quant conv layers.
pub(crate) struct ConvPass {
    pub images: u64,
    pub pad_ns: u64,
    pub kernel_ns: u64,
    pub epilogue_ns: u64,
    pub kernel_dispatches: u64,
    pub pattern_groups: u64,
    pub zero_kernels_skipped: u64,
    pub padded_bytes: u64,
    pub level: SimdLevel,
}

impl LayerStats {
    /// Records a non-convolution op pass: the whole duration counts as
    /// the kernel phase.
    pub(crate) fn record_pass(&self, images: u64, total_ns: u64) {
        // ordering: Relaxed — independent statistics counters. Snapshot
        // readers tolerate torn cross-counter views (a pass may appear
        // in `calls` before its time lands in `kernel_ns`); only the
        // eventual totals matter.
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.images.fetch_add(images, Ordering::Relaxed);
        self.kernel_ns.fetch_add(total_ns, Ordering::Relaxed);
    }

    /// Records one instrumented convolution pass.
    pub(crate) fn record_conv(&self, p: &ConvPass) {
        // ordering: Relaxed — independent statistics counters; snapshot
        // readers accept torn cross-counter views, only eventual totals
        // matter. No payload is published through these cells.
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.images.fetch_add(p.images, Ordering::Relaxed);
        self.pad_ns.fetch_add(p.pad_ns, Ordering::Relaxed);
        self.kernel_ns.fetch_add(p.kernel_ns, Ordering::Relaxed);
        // ordering: Relaxed — same statistics contract as above.
        self.epilogue_ns.fetch_add(p.epilogue_ns, Ordering::Relaxed);
        self.kernel_dispatches
            .fetch_add(p.kernel_dispatches, Ordering::Relaxed);
        // Static per-layer properties: store, don't accumulate.
        // ordering: Relaxed — every pass writes the same values, so
        // which writer wins is immaterial.
        self.pattern_groups
            .store(p.pattern_groups, Ordering::Relaxed);
        self.zero_kernels_skipped
            .store(p.zero_kernels_skipped, Ordering::Relaxed);
        // ordering: Relaxed — same statistics contract as above.
        self.padded_bytes
            .fetch_add(p.padded_bytes, Ordering::Relaxed);
        let tier = match p.level {
            SimdLevel::Scalar => 1,
            SimdLevel::Avx2 => 2,
        };
        // ordering: Relaxed — last-writer-wins tier tag, no payload.
        self.simd.store(tier, Ordering::Relaxed);
    }

    fn reset(&self) {
        // ordering: Relaxed — reset is not atomic across cells by
        // design; a concurrent recorder may land between the zeroing
        // stores and the next snapshot simply reflects that.
        self.calls.store(0, Ordering::Relaxed);
        self.images.store(0, Ordering::Relaxed);
        self.pad_ns.store(0, Ordering::Relaxed);
        self.kernel_ns.store(0, Ordering::Relaxed);
        // ordering: Relaxed — covered by the reset contract above.
        self.epilogue_ns.store(0, Ordering::Relaxed);
        self.kernel_dispatches.store(0, Ordering::Relaxed);
        self.pattern_groups.store(0, Ordering::Relaxed);
        self.zero_kernels_skipped.store(0, Ordering::Relaxed);
        self.padded_bytes.store(0, Ordering::Relaxed);
        self.simd.store(0, Ordering::Relaxed);
    }

    fn snapshot(&self, layer: usize, label: &str) -> LayerProfile {
        // ordering: Relaxed — the snapshot is an admittedly-racy
        // statistical read; cross-counter consistency is not promised
        // to callers, so no acquire pairing is needed.
        let pad_ns = self.pad_ns.load(Ordering::Relaxed);
        let kernel_ns = self.kernel_ns.load(Ordering::Relaxed);
        let epilogue_ns = self.epilogue_ns.load(Ordering::Relaxed);
        LayerProfile {
            layer,
            label: label.to_string(),
            // ordering: Relaxed — covered by the snapshot contract above.
            calls: self.calls.load(Ordering::Relaxed),
            images: self.images.load(Ordering::Relaxed),
            pad_ns,
            kernel_ns,
            epilogue_ns,
            total_ns: pad_ns + kernel_ns + epilogue_ns,
            // ordering: Relaxed — covered by the snapshot contract above.
            kernel_dispatches: self.kernel_dispatches.load(Ordering::Relaxed),
            pattern_groups: self.pattern_groups.load(Ordering::Relaxed),
            zero_kernels_skipped: self.zero_kernels_skipped.load(Ordering::Relaxed),
            padded_bytes: self.padded_bytes.load(Ordering::Relaxed),
            simd_level: match self.simd.load(Ordering::Relaxed) {
                1 => "scalar",
                2 => "avx2",
                _ => "-",
            },
        }
    }
}

/// One lowering's profiling slots, in execution order.
#[derive(Debug, Default)]
struct PrecisionSlice {
    labels: Vec<String>,
    stats: Vec<LayerStats>,
}

/// Flattens an op sequence into profiling-slot order: pre-order, with
/// a residual block contributing its main ops, then its shortcut ops,
/// then one slot for the add+ReLU combine. `run_ops_profiled` walks
/// slots in exactly this order — the two must never drift.
fn flatten_labels(ops: &[Op], out: &mut Vec<String>) {
    for op in ops {
        if let Op::Residual { main, shortcut } = op {
            flatten_labels(main, out);
            flatten_labels(shortcut, out);
            out.push(format!(
                "Residual(combine) [{} main ops, {} shortcut ops]",
                main.len(),
                shortcut.len()
            ));
        } else {
            out.push(op.describe());
        }
    }
}

/// The per-engine execution profiler: one [`LayerStats`] per op per
/// lowering, plus the master enable switch.
///
/// Engine shards created by `Engine::into_shards` share one profiler,
/// so a sharded server still aggregates into a single profile.
#[derive(Debug)]
pub struct ExecProfiler {
    enabled: AtomicBool,
    slices: [PrecisionSlice; 2],
}

impl ExecProfiler {
    /// Builds the (disabled) profiler for a compiled graph, with one
    /// slot per op of each lowering the graph carries.
    pub fn for_graph(graph: &ExecutableGraph) -> Self {
        let slice_for = |ops: &[Op]| {
            let mut labels = Vec::new();
            flatten_labels(ops, &mut labels);
            let stats = (0..labels.len()).map(|_| LayerStats::default()).collect();
            PrecisionSlice { labels, stats }
        };
        ExecProfiler {
            enabled: AtomicBool::new(false),
            slices: [
                slice_for(graph.ops()),
                graph.int8_ops().map(slice_for).unwrap_or_default(),
            ],
        }
    }

    /// Whether graph passes currently record per-layer timings.
    pub fn is_enabled(&self) -> bool {
        // ordering: Relaxed — the switch gates only whether timings are
        // taken; a pass observing a stale value records (or skips) one
        // extra pass, which the profiling contract allows.
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns profiling on or off. Takes `&self` — the switch is live on
    /// a served engine without exclusive access.
    pub fn set_enabled(&self, on: bool) {
        // ordering: Relaxed — flag-only toggle; no data is published
        // through it (see `is_enabled`).
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Zeroes every accumulated counter (the enable switch is kept).
    pub fn reset(&self) {
        for slice in &self.slices {
            for s in &slice.stats {
                s.reset();
            }
        }
    }

    /// The profiling slots of one lowering, in execution order.
    pub(crate) fn layers(&self, precision: Precision) -> &[LayerStats] {
        &self.slices[precision.index()].stats
    }

    /// Aggregates the counters into an immutable [`ExecProfile`].
    pub fn snapshot(&self) -> ExecProfile {
        ExecProfile {
            simd_level: simd::active().label(),
            precisions: Precision::ALL
                .iter()
                .filter_map(|&p| {
                    let slice = &self.slices[p.index()];
                    if slice.stats.is_empty() {
                        return None;
                    }
                    Some(PrecisionProfile {
                        precision: p.label(),
                        layers: slice
                            .stats
                            .iter()
                            .zip(&slice.labels)
                            .enumerate()
                            .map(|(i, (s, label))| s.snapshot(i, label))
                            .collect(),
                    })
                })
                .collect(),
        }
    }

    /// [`ExecProfiler::snapshot`] gated on the enable switch — the
    /// accessor diagnostic snapshots use: `None` while profiling is
    /// off, so a forensics consumer never serializes a profile of
    /// zeros as if it were a measurement.
    pub fn snapshot_if_enabled(&self) -> Option<ExecProfile> {
        self.is_enabled().then(|| self.snapshot())
    }
}

/// Aggregated per-layer timings of one lowering.
#[derive(Debug, Clone)]
pub struct PrecisionProfile {
    /// Lowering label (`"f32"` / `"int8"`).
    pub precision: &'static str,
    /// Per-layer records in execution order.
    pub layers: Vec<LayerProfile>,
}

/// Aggregated profile of one executable layer.
#[derive(Debug, Clone)]
pub struct LayerProfile {
    /// Execution-order index within the lowering.
    pub layer: usize,
    /// The op's summary line (`Op::describe`).
    pub label: String,
    /// Graph passes that executed this layer.
    pub calls: u64,
    /// Images processed across those passes.
    pub images: u64,
    /// Wall time in the pad/quantise phase.
    pub pad_ns: u64,
    /// Wall time in compiled kernel dispatches (whole-op time for
    /// non-convolution layers).
    pub kernel_ns: u64,
    /// Wall time in the fused ReLU / requantisation epilogue.
    pub epilogue_ns: u64,
    /// `pad_ns + kernel_ns + epilogue_ns`.
    pub total_ns: u64,
    /// Compiled kernel dispatches issued.
    pub kernel_dispatches: u64,
    /// Pattern groups in the layer's schedule (0 on the oc-major walk
    /// and for non-pattern layers).
    pub pattern_groups: u64,
    /// All-zero kernels skipped per pass.
    pub zero_kernels_skipped: u64,
    /// Bytes of padded input planes built across passes.
    pub padded_bytes: u64,
    /// SIMD tier last dispatched (`"-"` until a conv pass records).
    pub simd_level: &'static str,
}

impl LayerProfile {
    /// One JSON object — the schema `benches/kernel_microbench.rs`
    /// reuses for its per-(dtype, n, width) records.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"layer\":{},\"label\":\"{}\",\"calls\":{},\"images\":{},\
             \"pad_ns\":{},\"kernel_ns\":{},\"epilogue_ns\":{},\"total_ns\":{},\
             \"kernel_dispatches\":{},\"pattern_groups\":{},\
             \"zero_kernels_skipped\":{},\"padded_bytes\":{},\"simd_level\":\"{}\"}}",
            self.layer,
            self.label,
            self.calls,
            self.images,
            self.pad_ns,
            self.kernel_ns,
            self.epilogue_ns,
            self.total_ns,
            self.kernel_dispatches,
            self.pattern_groups,
            self.zero_kernels_skipped,
            self.padded_bytes,
            self.simd_level,
        )
    }
}

/// One lowering's wall time pooled across layers, split by phase —
/// the engine-side counterpart of a serving span's execute segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSplit {
    /// Padded-plane construction (incl. quantisation on int8).
    pub pad_ns: u64,
    /// Compiled kernel dispatches.
    pub kernel_ns: u64,
    /// Fused ReLU / requantisation tails.
    pub epilogue_ns: u64,
}

impl PhaseSplit {
    /// Sum of the three phases.
    pub fn total_ns(&self) -> u64 {
        self.pad_ns + self.kernel_ns + self.epilogue_ns
    }

    /// Each phase's share of the total, in `(pad, kernel, epilogue)`
    /// order; all zero when nothing was recorded.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let total = self.total_ns();
        if total == 0 {
            return (0.0, 0.0, 0.0);
        }
        let t = total as f64;
        (
            self.pad_ns as f64 / t,
            self.kernel_ns as f64 / t,
            self.epilogue_ns as f64 / t,
        )
    }
}

/// Immutable aggregate snapshot of an [`ExecProfiler`].
#[derive(Debug, Clone)]
pub struct ExecProfile {
    /// The process-wide SIMD tier (`pcnn_tensor::simd::active`).
    pub simd_level: &'static str,
    /// Per-lowering layer records (lowerings the graph carries).
    pub precisions: Vec<PrecisionProfile>,
}

impl ExecProfile {
    /// Sum of per-layer `total_ns` for one lowering (0 when absent).
    pub fn total_ns(&self, precision: Precision) -> u64 {
        self.precisions
            .iter()
            .find(|p| p.precision == precision.label())
            .map_or(0, |p| p.layers.iter().map(|l| l.total_ns).sum())
    }

    /// The lowering's phase totals pooled across layers, or `None` when
    /// the lowering recorded nothing. This is the read-side summary the
    /// serving-side latency attribution cross-references: it splits a
    /// span's opaque execute segment into pad/kernel/epilogue shares.
    pub fn phase_split(&self, precision: Precision) -> Option<PhaseSplit> {
        let p = self
            .precisions
            .iter()
            .find(|p| p.precision == precision.label())?;
        let mut split = PhaseSplit {
            pad_ns: 0,
            kernel_ns: 0,
            epilogue_ns: 0,
        };
        for l in &p.layers {
            split.pad_ns += l.pad_ns;
            split.kernel_ns += l.kernel_ns;
            split.epilogue_ns += l.epilogue_ns;
        }
        (split.total_ns() > 0).then_some(split)
    }

    /// The whole profile as one JSON document.
    pub fn to_json(&self) -> String {
        let precisions: Vec<String> = self
            .precisions
            .iter()
            .map(|p| {
                let layers: Vec<String> = p.layers.iter().map(LayerProfile::to_json).collect();
                format!(
                    "{{\"precision\":\"{}\",\"layers\":[{}]}}",
                    p.precision,
                    layers.join(",")
                )
            })
            .collect();
        format!(
            "{{\"simd_level\":\"{}\",\"precisions\":[{}]}}",
            self.simd_level,
            precisions.join(",")
        )
    }

    /// The profile in Prometheus text exposition format, appended to the
    /// serving metrics by `pcnn_serve::Server::render_prometheus`.
    pub fn render_prometheus(&self) -> String {
        let mut o = String::new();
        o.push_str(
            "# HELP pcnn_profile_layer_seconds_total Per-layer wall time by phase \
             (pad/quantise, kernel dispatch, epilogue).\n",
        );
        o.push_str("# TYPE pcnn_profile_layer_seconds_total counter\n");
        for p in &self.precisions {
            for l in &p.layers {
                for (phase, ns) in [
                    ("pad", l.pad_ns),
                    ("kernel", l.kernel_ns),
                    ("epilogue", l.epilogue_ns),
                ] {
                    o.push_str(&format!(
                        "pcnn_profile_layer_seconds_total{{precision=\"{}\",layer=\"{}\",phase=\"{}\"}} {}\n",
                        p.precision,
                        l.layer,
                        phase,
                        ns as f64 * 1e-9
                    ));
                }
            }
        }
        o.push_str("# HELP pcnn_profile_layer_calls_total Graph passes that executed the layer.\n");
        o.push_str("# TYPE pcnn_profile_layer_calls_total counter\n");
        for p in &self.precisions {
            for l in &p.layers {
                o.push_str(&format!(
                    "pcnn_profile_layer_calls_total{{precision=\"{}\",layer=\"{}\"}} {}\n",
                    p.precision, l.layer, l.calls
                ));
            }
        }
        o.push_str(
            "# HELP pcnn_profile_layer_kernel_dispatches_total Compiled kernel dispatches issued.\n",
        );
        o.push_str("# TYPE pcnn_profile_layer_kernel_dispatches_total counter\n");
        for p in &self.precisions {
            for l in &p.layers {
                o.push_str(&format!(
                    "pcnn_profile_layer_kernel_dispatches_total{{precision=\"{}\",layer=\"{}\"}} {}\n",
                    p.precision, l.layer, l.kernel_dispatches
                ));
            }
        }
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_dense;
    use crate::quant_conv::QuantOptions;
    use pcnn_nn::models;
    use pcnn_tensor::Tensor;

    #[test]
    fn profiled_run_matches_plain_and_fills_every_slot() {
        let graph = compile_dense(&models::tiny_cnn(4, 4, 3));
        let profiler = ExecProfiler::for_graph(&graph);
        profiler.set_enabled(true);
        let x = Tensor::ones(&[2, 3, 8, 8]);
        let want = graph.run(&x);
        let got = graph.run_profiled(&x, Precision::F32, &profiler);
        pcnn_tensor::assert_slices_close(got.as_slice(), want.as_slice(), 0.0);
        let profile = profiler.snapshot();
        let f32p = &profile.precisions[0];
        assert_eq!(f32p.precision, "f32");
        assert_eq!(f32p.layers.len(), graph.ops().len());
        for l in &f32p.layers {
            assert_eq!(l.calls, 1, "layer {} ({})", l.layer, l.label);
            assert_eq!(l.images, 2);
        }
        assert!(profile.total_ns(Precision::F32) > 0);
    }

    #[test]
    fn dual_precision_graphs_profile_both_lowerings() {
        let graph = compile_dense(&models::tiny_cnn(4, 4, 3)).with_int8(&QuantOptions::default());
        let profiler = ExecProfiler::for_graph(&graph);
        profiler.set_enabled(true);
        let x = Tensor::ones(&[1, 3, 8, 8]);
        let _ = graph.run_profiled(&x, Precision::F32, &profiler);
        let _ = graph.run_profiled(&x, Precision::Int8, &profiler);
        let profile = profiler.snapshot();
        assert_eq!(profile.precisions.len(), 2);
        assert!(profile.total_ns(Precision::Int8) > 0);
        // Both lowerings share the compiled topology, so the slot
        // counts agree.
        assert_eq!(
            profile.precisions[0].layers.len(),
            profile.precisions[1].layers.len()
        );
        profiler.reset();
        let profile = profiler.snapshot();
        assert_eq!(profile.total_ns(Precision::F32), 0);
    }

    #[test]
    fn residual_blocks_flatten_with_a_combine_slot() {
        let graph = compile_dense(&models::resnet18_proxy(
            &models::ResNetProxyConfig::default(),
            3,
        ));
        let profiler = ExecProfiler::for_graph(&graph);
        profiler.set_enabled(true);
        let combines = profiler.slices[0]
            .labels
            .iter()
            .filter(|l| l.starts_with("Residual(combine)"))
            .count();
        assert!(combines > 0, "proxy carries residual blocks");
        let x = Tensor::ones(&[1, 3, 16, 16]);
        let want = graph.run(&x);
        let got = graph.run_profiled(&x, Precision::F32, &profiler);
        pcnn_tensor::assert_slices_close(got.as_slice(), want.as_slice(), 0.0);
        // Every slot — residual internals included — saw the pass.
        for l in &profiler.snapshot().precisions[0].layers {
            assert_eq!(l.calls, 1, "slot {} ({})", l.layer, l.label);
        }
    }

    #[test]
    fn phase_split_pools_layers_and_reports_fractions() {
        let graph = compile_dense(&models::tiny_cnn(4, 4, 3));
        let profiler = ExecProfiler::for_graph(&graph);
        profiler.set_enabled(true);
        let _ = graph.run_profiled(&Tensor::ones(&[1, 3, 8, 8]), Precision::F32, &profiler);
        let profile = profiler.snapshot();
        let split = profile.phase_split(Precision::F32).expect("f32 recorded");
        assert_eq!(split.total_ns(), profile.total_ns(Precision::F32));
        let (pad, kernel, epilogue) = split.fractions();
        assert!((pad + kernel + epilogue - 1.0).abs() < 1e-9);
        assert!(kernel > 0.0, "conv kernels always record kernel time");
        // The int8 lowering was never compiled, let alone run.
        assert!(profile.phase_split(Precision::Int8).is_none());
    }

    #[test]
    fn profile_json_is_brace_balanced() {
        let graph = compile_dense(&models::tiny_cnn(4, 4, 2));
        let profiler = ExecProfiler::for_graph(&graph);
        profiler.set_enabled(true);
        let _ = graph.run_profiled(&Tensor::ones(&[1, 3, 8, 8]), Precision::F32, &profiler);
        let json = profiler.snapshot().to_json();
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert!(json.contains("\"simd_level\""));
        assert!(json.contains("\"pad_ns\""));
        let prom = profiler.snapshot().render_prometheus();
        assert!(prom.contains(
            "pcnn_profile_layer_seconds_total{precision=\"f32\",layer=\"0\",phase=\"kernel\"}"
        ));
    }
}
