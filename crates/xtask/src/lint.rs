//! `cargo xtask lint` — a source-level audit of the repo-specific
//! concurrency and unsafe-code invariants the compiler cannot check:
//!
//! 1. **unsafe-comment** — every `unsafe` block / `unsafe impl` /
//!    `unsafe fn` carries a nearby `SAFETY:` comment (a `# Safety` doc
//!    section counts for declarations). Applies to the whole tree.
//! 2. **ordering-justified** — every `Ordering::SeqCst` /
//!    `Ordering::Relaxed` on the cross-thread handoff paths (the
//!    modules migrated onto the `pcnn-sync` facade) carries an
//!    `// ordering:` justification within a few lines. SeqCst is a
//!    red flag (usually a missing argument for something weaker);
//!    Relaxed is the scary one (no synchronization at all).
//! 3. **gated-intrinsics** — `std::arch`/`core::arch` intrinsics are
//!    only called inside `#[target_feature]`-annotated functions (the
//!    `tensor::simd` token pattern); `use` imports are exempt. A
//!    `// lint: allow(gated-intrinsics)` comment waives the braced
//!    item that follows it — for token-method impls whose receiver is
//!    itself the proof of CPU support (the token is only constructed
//!    behind a runtime check or inside a gated fn).
//! 4. **facade-only** — migrated modules never name `std::sync` /
//!    `std::thread` directly; `pcnn_sync` is the single seam. Escape
//!    hatch: a `// lint: allow(std-sync)` comment on the line.
//!
//! The checks are intentionally textual (no `syn` on this offline
//! toolchain): line-oriented, comment/string aware, with `#[cfg(test)]`
//! (and `#[cfg(all(test, …))]`) regions skipped for rules 2 and 4. `--fixtures` runs the audit
//! against `crates/xtask/fixtures/`, where every file carries
//! `//~ ERROR <rule>` markers, and fails unless the findings match the
//! markers exactly — the lint's own regression test.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Files whose `Relaxed`/`SeqCst` orderings must be justified: the
/// concurrency-hot modules migrated onto the facade. The whole-dir
/// `crates/serve/src/` prefix covers every serving module, including
/// the forensics pair (`events.rs` — the wait-free journal ring — and
/// `incident.rs` — the black-box recorder's cooldown CAS).
const ORDERING_SCOPE: &[&str] = &[
    "crates/serve/src/",
    "crates/tensor/src/parallel.rs",
    "crates/runtime/src/profile.rs",
];

/// Files that must not name `std::sync`/`std::thread` directly.
/// `crates/sync` itself is exempt: wrapping std is its whole job.
const FACADE_SCOPE: &[&str] = &[
    "crates/serve/src/",
    "crates/tensor/src/parallel.rs",
    "crates/runtime/src/profile.rs",
];

/// How many lines above a flagged line a justifying comment may sit.
const COMMENT_WINDOW: usize = 6;

const RULE_UNSAFE: &str = "unsafe-comment";
const RULE_ORDERING: &str = "ordering-justified";
const RULE_INTRINSICS: &str = "gated-intrinsics";
const RULE_FACADE: &str = "facade-only";

pub struct Violation {
    pub file: PathBuf,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.msg
        )
    }
}

pub fn run(args: Vec<String>) -> ExitCode {
    let fixtures = args.iter().any(|a| a == "--fixtures");
    for a in &args {
        if a != "--fixtures" {
            eprintln!("unknown lint flag: {a}");
            return ExitCode::FAILURE;
        }
    }
    let root = repo_root();
    if fixtures {
        run_fixtures(&root)
    } else {
        run_tree(&root)
    }
}

fn repo_root() -> PathBuf {
    // xtask lives at <repo>/crates/xtask.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask sits two levels below the repo root")
        .to_path_buf()
}

fn run_tree(root: &Path) -> ExitCode {
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files);
    collect_rs(&root.join("src"), &mut files);
    files.sort();

    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        if rel.starts_with("crates/xtask/fixtures/") {
            continue;
        }
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("lint: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        scanned += 1;
        violations.extend(lint_text(&rel, &text, false));
    }

    if violations.is_empty() {
        println!("xtask lint: {scanned} files clean");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!(
            "xtask lint: {} violation(s) in {scanned} files",
            violations.len()
        );
        ExitCode::FAILURE
    }
}

/// Self-test mode: every fixture file declares the violations the lint
/// must find via `//~ ERROR <rule>` markers on the offending lines.
fn run_fixtures(root: &Path) -> ExitCode {
    let dir = root.join("crates/xtask/fixtures");
    let mut files = Vec::new();
    collect_rs(&dir, &mut files);
    files.sort();
    if files.is_empty() {
        eprintln!("lint --fixtures: no fixture files under {}", dir.display());
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    let mut rules_seen = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(path).expect("fixture readable");
        let found = lint_text(&rel, &text, true);
        let mut expected: Vec<(usize, String)> = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if let Some(pos) = line.find("//~ ERROR ") {
                let rule = line[pos + "//~ ERROR ".len()..].trim().to_string();
                expected.push((i + 1, rule));
            }
        }
        for (line, rule) in &expected {
            if !rules_seen.contains(rule) {
                rules_seen.push(rule.clone());
            }
            if !found.iter().any(|v| v.line == *line && v.rule == rule) {
                eprintln!("fixture MISS: {rel}:{line}: expected [{rule}] not reported");
                failed = true;
            }
        }
        for v in &found {
            if !expected.iter().any(|(l, r)| *l == v.line && r == v.rule) {
                eprintln!("fixture EXTRA: {v}");
                failed = true;
            }
        }
    }
    for rule in [RULE_UNSAFE, RULE_ORDERING, RULE_INTRINSICS, RULE_FACADE] {
        if !rules_seen.iter().any(|r| r == rule) {
            eprintln!("fixture GAP: no fixture exercises rule [{rule}]");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!(
            "xtask lint --fixtures: all seeded violations caught across {} file(s)",
            files.len()
        );
        ExitCode::SUCCESS
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

// ---------------------------------------------------------------------
// Per-file scanning
// ---------------------------------------------------------------------

struct LineInfo {
    /// Source with comments and string/char contents blanked out.
    code: String,
    /// The `//` comment text, if any (block-comment text folded in).
    comment: String,
    in_test: bool,
    in_tf_fn: bool,
}

fn in_scope(rel: &str, scope: &[&str]) -> bool {
    scope.iter().any(|p| rel.starts_with(p))
}

/// Lints one file's text. `force_all_scopes` (fixtures mode) applies
/// every rule regardless of the configured path scopes.
fn lint_text(rel: &str, text: &str, force_all_scopes: bool) -> Vec<Violation> {
    let lines = scan(text);
    let mut out = Vec::new();

    let ordering_scope = force_all_scopes || in_scope(rel, ORDERING_SCOPE);
    let facade_scope = force_all_scopes || in_scope(rel, FACADE_SCOPE);

    for (i, info) in lines.iter().enumerate() {
        let lineno = i + 1;
        let code = info.code.as_str();

        // Rule 1: unsafe must carry a SAFETY justification.
        if mentions_unsafe(code) && !has_nearby_comment(&lines, i, &["SAFETY:", "# Safety"]) {
            out.push(Violation {
                file: PathBuf::from(rel),
                line: lineno,
                rule: RULE_UNSAFE,
                msg: "`unsafe` without a `SAFETY:` comment (or `# Safety` doc section) \
                      within the preceding lines"
                    .to_string(),
            });
        }

        // Rule 2: Relaxed/SeqCst on handoff paths must be justified.
        if ordering_scope
            && !info.in_test
            && (code.contains("Ordering::Relaxed") || code.contains("Ordering::SeqCst"))
            && !has_nearby_comment(&lines, i, &["ordering:"])
        {
            out.push(Violation {
                file: PathBuf::from(rel),
                line: lineno,
                rule: RULE_ORDERING,
                msg: "Relaxed/SeqCst on a cross-thread handoff path without an \
                      `// ordering:` justification"
                    .to_string(),
            });
        }

        // Rule 3: arch intrinsics only inside #[target_feature] fns.
        if !info.in_tf_fn && mentions_intrinsic(code) {
            out.push(Violation {
                file: PathBuf::from(rel),
                line: lineno,
                rule: RULE_INTRINSICS,
                msg: "arch intrinsic outside a `#[target_feature]`-gated fn \
                      (dispatch through the `tensor::simd` tokens)"
                    .to_string(),
            });
        }

        // Rule 4: migrated modules go through the pcnn-sync facade.
        if facade_scope
            && !info.in_test
            && (code.contains("std::sync") || code.contains("std::thread"))
            && !info.comment.contains("lint: allow(std-sync)")
        {
            out.push(Violation {
                file: PathBuf::from(rel),
                line: lineno,
                rule: RULE_FACADE,
                msg: "direct `std::sync`/`std::thread` use in a facade-migrated module \
                      (import from `pcnn_sync`, or waive with `// lint: allow(std-sync)`)"
                    .to_string(),
            });
        }
    }
    out
}

/// `unsafe` keyword introducing a block, impl, fn, or trait — but not
/// inside identifiers or strings (code is already blanked).
fn mentions_unsafe(code: &str) -> bool {
    let mut rest = code;
    while let Some(pos) = rest.find("unsafe") {
        let before_ok = pos == 0
            || !rest[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = &rest[pos + "unsafe".len()..];
        let after_ok = !after
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        rest = &rest[pos + "unsafe".len()..];
    }
    false
}

/// An intrinsic mention: an `_mm`-prefixed identifier or an inline
/// `std::arch`/`core::arch` path. Import lines are exempt (naming an
/// intrinsic is fine; calling it outside a gated fn is not).
fn mentions_intrinsic(code: &str) -> bool {
    let trimmed = code.trim_start();
    if trimmed.starts_with("use ") || trimmed.starts_with("pub use ") {
        return false;
    }
    if code.contains("std::arch") || code.contains("core::arch") {
        return true;
    }
    // `_mm…` identifiers (e.g. _mm256_fmadd_ps, _mm_loadu_ps) at a
    // token boundary.
    let bytes = code.as_bytes();
    let mut search = 0;
    while let Some(pos) = code[search..].find("_mm") {
        let abs = search + pos;
        let before_ok = abs == 0 || {
            let c = bytes[abs - 1] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        if before_ok {
            return true;
        }
        search = abs + 3;
    }
    false
}

/// Looks for any of `needles` in the comments on line `i` or the
/// `COMMENT_WINDOW` lines above it.
fn has_nearby_comment(lines: &[LineInfo], i: usize, needles: &[&str]) -> bool {
    let lo = i.saturating_sub(COMMENT_WINDOW);
    lines[lo..=i]
        .iter()
        .any(|l| needles.iter().any(|n| l.comment.contains(n)))
}

/// Comment/string-aware per-line scan plus `#[cfg(test)]` and
/// `#[target_feature]` region tracking.
fn scan(text: &str) -> Vec<LineInfo> {
    let mut infos: Vec<LineInfo> = Vec::new();
    let mut in_block_comment = false;
    let mut in_string = false;
    for raw in text.lines() {
        let (code, comment, still_in_block, still_in_string) =
            split_line(raw, in_block_comment, in_string);
        in_block_comment = still_in_block;
        in_string = still_in_string;
        infos.push(LineInfo {
            code,
            comment,
            in_test: false,
            in_tf_fn: false,
        });
    }
    mark_regions(&mut infos, "#[cfg(test)]", false, |l, v| l.in_test = v);
    mark_regions(&mut infos, "#[cfg(all(test", false, |l, v| l.in_test = v);
    mark_regions(&mut infos, "#[target_feature", false, |l, v| l.in_tf_fn = v);
    // The token-impl escape hatch: a waived region counts as gated.
    mark_regions(&mut infos, "lint: allow(gated-intrinsics)", true, |l, v| {
        l.in_tf_fn = v
    });
    infos
}

/// Marks the braced item following each `marker` line (attribute runs
/// and doc comments between the marker and the item are included).
/// `in_comment` selects whether the marker is looked for in code
/// (attributes) or in comment text (lint waivers).
fn mark_regions(
    infos: &mut [LineInfo],
    marker: &str,
    in_comment: bool,
    set: impl Fn(&mut LineInfo, bool),
) {
    let mut i = 0;
    while i < infos.len() {
        let hay = if in_comment {
            &infos[i].comment
        } else {
            &infos[i].code
        };
        if !hay.contains(marker) {
            i += 1;
            continue;
        }
        // Find the opening brace of the item this attribute decorates.
        let mut j = i;
        let mut depth = 0i32;
        let mut opened = false;
        while j < infos.len() {
            for c in infos[j].code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    // An item ending before any brace (e.g. a gated
                    // `fn` *declaration* `…;`) has no body to mark.
                    _ => {}
                }
            }
            set(&mut infos[j], true);
            if opened && depth <= 0 {
                break;
            }
            // A semicolon at depth 0 before any brace ends a bodyless
            // item (extern fn decl, use, const).
            if !opened && infos[j].code.trim_end().ends_with(';') {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
}

/// Splits one raw line into blanked code and extracted comment text,
/// tracking block comments *and string literals* across lines (a
/// multi-line string continues on the next line, with or without a
/// trailing `\`). String and char-literal contents are blanked in the
/// code part so their bytes never trigger rules.
fn split_line(raw: &str, mut in_block: bool, mut in_str: bool) -> (String, String, bool, bool) {
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let bytes: Vec<char> = raw.chars().collect();
    let mut i = 0;
    let n = bytes.len();
    while i < n {
        let c = bytes[i];
        if in_block {
            if c == '*' && i + 1 < n && bytes[i + 1] == '/' {
                in_block = false;
                i += 2;
            } else {
                comment.push(c);
                i += 1;
            }
            continue;
        }
        if in_str {
            if c == '\\' {
                code.push(' ');
                i += 2;
                continue;
            }
            if c == '"' {
                in_str = false;
                code.push('"');
            } else {
                code.push(' ');
            }
            i += 1;
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                code.push('"');
                i += 1;
            }
            '\'' => {
                // Char literal ('x', '\n', '"'); lifetimes ('a) fall
                // through untouched.
                if i + 2 < n && bytes[i + 1] == '\\' {
                    // escaped char literal: skip to closing quote
                    let mut j = i + 2;
                    while j < n && bytes[j] != '\'' {
                        j += 1;
                    }
                    code.push_str("' '");
                    i = (j + 1).min(n);
                } else if i + 2 < n && bytes[i + 2] == '\'' {
                    code.push_str("' '");
                    i += 3;
                } else {
                    code.push('\'');
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                comment.extend(&bytes[i..]);
                break;
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                in_block = true;
                i += 2;
            }
            _ => {
                code.push(c);
                i += 1;
            }
        }
    }
    (code, comment, in_block, in_str)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(rel: &str, text: &str) -> Vec<Violation> {
        lint_text(rel, text, false)
    }

    #[test]
    fn split_strips_comments_and_strings() {
        let (code, comment, inb, ins) =
            split_line(r#"let x = "unsafe // no"; // SAFETY: yes"#, false, false);
        assert!(!inb);
        assert!(!ins);
        assert!(!code.contains("unsafe"));
        assert!(comment.contains("SAFETY: yes"));
    }

    #[test]
    fn multiline_string_contents_do_not_trigger_rules() {
        // `unsafe` on a continuation line of a multi-line string
        // literal (e.g. a usage/help message) is data, not code.
        let text = "fn f() {\n    eprintln!(\n        \"help:\\n\\\n         lint   audit unsafe invariants\\n\\\n         more   unsafe text\"\n    );\n}\n";
        let v = lint("crates/foo/src/lib.rs", text);
        assert!(
            v.is_empty(),
            "{:?}",
            v.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unsafe_without_comment_flagged() {
        let v = lint(
            "crates/foo/src/lib.rs",
            "fn f() {\n    let x = unsafe { g() };\n}\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RULE_UNSAFE);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unsafe_with_comment_ok() {
        let v = lint(
            "crates/foo/src/lib.rs",
            "fn f() {\n    // SAFETY: g has no preconditions here\n    let x = unsafe { g() };\n}\n",
        );
        assert!(
            v.is_empty(),
            "{:?}",
            v.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unsafe_fn_with_safety_doc_ok() {
        let v = lint(
            "crates/foo/src/lib.rs",
            "/// # Safety\n/// caller checks CPUID\npub unsafe fn g() {}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn unjustified_ordering_flagged_in_scope_only() {
        let text = "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n";
        assert_eq!(lint("crates/serve/src/queue.rs", text).len(), 1);
        assert!(lint("crates/nn/src/lib.rs", text).is_empty());
    }

    #[test]
    fn justified_ordering_ok() {
        let text = "fn f(a: &AtomicU64) {\n    // ordering: monotone counter, readers tolerate lag\n    a.load(Ordering::Relaxed);\n}\n";
        assert!(lint("crates/serve/src/queue.rs", text).is_empty());
    }

    #[test]
    fn ordering_in_tests_exempt() {
        let text = "#[cfg(test)]\nmod tests {\n    fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n}\n";
        assert!(lint("crates/serve/src/queue.rs", text).is_empty());
    }

    #[test]
    fn intrinsic_outside_gated_fn_flagged() {
        let text = "fn f(a: __m256) -> __m256 {\n    _mm256_add_ps(a, a)\n}\n";
        let v = lint("crates/tensor/src/simd.rs", text);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RULE_INTRINSICS);
    }

    #[test]
    fn intrinsic_inside_gated_fn_ok() {
        let text = "#[target_feature(enable = \"avx2\")]\nunsafe fn f(a: __m256) -> __m256 {\n    // SAFETY: caller proves avx2 via token\n    _mm256_add_ps(a, a)\n}\n";
        let v = lint("crates/foo/src/lib.rs", text);
        assert!(
            v.iter().all(|v| v.rule != RULE_INTRINSICS),
            "{:?}",
            v.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn intrinsic_waiver_region_exempts_token_impl() {
        let text = "// lint: allow(gated-intrinsics) — the token is the gate\nimpl SimdToken for Tok {\n    fn add(self, a: __m256) -> __m256 {\n        _mm256_add_ps(a, a)\n    }\n}\nfn outside(a: __m256) -> __m256 {\n    _mm256_add_ps(a, a)\n}\n";
        let v = lint("crates/foo/src/lib.rs", text);
        let hits: Vec<usize> = v
            .iter()
            .filter(|v| v.rule == RULE_INTRINSICS)
            .map(|v| v.line)
            .collect();
        assert_eq!(hits, vec![8], "only the un-waived fn is flagged");
    }

    #[test]
    fn cfg_all_test_region_is_a_test_region() {
        // `#[cfg(all(test, feature = "model-check"))]` modules are test
        // code: exempt from the ordering and facade rules like plain
        // `#[cfg(test)]`.
        let text = "#[cfg(all(test, feature = \"model-check\"))]\nmod model_tests {\n    use std::thread;\n    fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n}\n";
        let v = lint("crates/serve/src/queue.rs", text);
        assert!(
            v.is_empty(),
            "{:?}",
            v.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn arch_import_exempt() {
        let text = "use std::arch::x86_64::*;\n";
        assert!(lint("crates/tensor/src/simd.rs", text).is_empty());
    }

    #[test]
    fn raw_std_sync_flagged_and_waivable() {
        let bad = "use std::sync::Mutex;\n";
        assert_eq!(lint("crates/serve/src/queue.rs", bad).len(), 1);
        let waived = "use std::sync::Mutex; // lint: allow(std-sync) — seed for model history\n";
        assert!(lint("crates/serve/src/queue.rs", waived).is_empty());
        assert!(lint("crates/runtime/src/quant_kernels.rs", bad).is_empty());
    }

    #[test]
    fn fixtures_force_all_scopes() {
        let text = "use std::sync::Mutex;\n";
        assert_eq!(lint_text("crates/xtask/fixtures/x.rs", text, true).len(), 1);
    }
}
