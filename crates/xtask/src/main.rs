mod lint;

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint::run(args.collect()),
        Some(other) => {
            eprintln!("unknown xtask command: {other}\n");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "usage: cargo xtask <command>\n\
         \n\
         commands:\n\
           lint             audit the source tree for concurrency/unsafe invariants\n\
               --fixtures   run the audit against the seeded-violation fixtures\n\
                            and fail unless every expected violation is caught"
    );
}
