//! Seeded violations for the `unsafe-comment` rule: `unsafe` without a
//! nearby `SAFETY:` justification is flagged; justified uses, `# Safety`
//! doc sections, and `unsafe` inside string data are not.
//!
//! Fixture only — never compiled; `cargo xtask lint --fixtures` checks
//! that the findings match the `//~ ERROR` markers exactly.

fn unjustified_block(v: &[f32]) -> *const f32 {
    let p = unsafe { v.as_ptr().add(0) }; //~ ERROR unsafe-comment
    p
}

fn justified_block(v: &[f32]) -> f32 {
    // SAFETY: index 0 is in bounds — the caller guarantees `v` is
    // non-empty.
    unsafe { *v.get_unchecked(0) }
}

/// # Safety
///
/// The pointer must be valid, aligned, and point to an initialised f32.
pub unsafe fn justified_fn(p: *const f32) -> f32 {
    // SAFETY: contract forwarded to the caller (see `# Safety` above).
    unsafe { *p }
}

fn string_data_is_not_code() -> &'static str {
    "this string mentions unsafe but is data, not code"
}

fn multiline_string_is_not_code() -> String {
    format!(
        "help:\n\
         audit   check unsafe invariants\n\
         more    unsafe text on a continuation line"
    )
}
