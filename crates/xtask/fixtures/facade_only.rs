//! Seeded violations for the `facade-only` rule: facade-migrated
//! modules never name `std::sync`/`std::thread` directly — `pcnn_sync`
//! is the single seam. The `// lint: allow(std-sync)` waiver and test
//! regions are exempt.
//!
//! Fixture only — never compiled; `cargo xtask lint --fixtures` checks
//! that the findings match the `//~ ERROR` markers exactly.

use std::thread; //~ ERROR facade-only

fn spawns_directly() {
    let t = std::thread::spawn(|| ()); //~ ERROR facade-only
    t.join().unwrap();
}

// The documented escape hatch for deliberate std access:
#[allow(unused_imports)]
use std::sync::Mutex; // lint: allow(std-sync) — fixture-only seed value

#[cfg(test)]
mod tests {
    // Test code drives std primitives directly without a waiver.
    use std::thread;

    fn test_code_is_exempt() {
        let t = std::thread::spawn(|| ());
        t.join().unwrap();
    }
}
