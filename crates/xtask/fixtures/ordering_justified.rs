//! Seeded violations for the `ordering-justified` rule: `Relaxed` and
//! `SeqCst` on the facade-migrated handoff paths need an `// ordering:`
//! justification within the comment window; test code is exempt.
//!
//! Fixture only — never compiled; `cargo xtask lint --fixtures` checks
//! that the findings match the `//~ ERROR` markers exactly.

use core::sync::atomic::{AtomicU64, Ordering};

fn unjustified_relaxed(a: &AtomicU64) -> u64 {
    a.load(Ordering::Relaxed) //~ ERROR ordering-justified
}

fn unjustified_seqcst(a: &AtomicU64) {
    a.store(1, Ordering::SeqCst); //~ ERROR ordering-justified
}

fn justified(a: &AtomicU64) -> u64 {
    // ordering: Relaxed — statistics counter; no payload is published
    // through this cell.
    a.load(Ordering::Relaxed)
}

fn comment_too_far(a: &AtomicU64) {
    // ordering: this justification sits outside the comment window of
    // the final store below, so only that store is flagged.
    a.store(1, Ordering::Relaxed);
    let _ = a.load(Ordering::Relaxed);
    let _ = a.load(Ordering::Relaxed);
    let _ = a.load(Ordering::Relaxed);
    let _ = a.load(Ordering::Relaxed);
    a.store(2, Ordering::Relaxed); //~ ERROR ordering-justified
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_code_is_exempt(a: &AtomicU64) -> u64 {
        a.load(Ordering::Relaxed)
    }
}
