//! Seeded violations for the `gated-intrinsics` rule: arch intrinsics
//! outside a `#[target_feature]`-gated fn (and outside a waived token
//! impl) are flagged; `use` imports are exempt.
//!
//! Fixture only — never compiled; `cargo xtask lint --fixtures` checks
//! that the findings match the `//~ ERROR` markers exactly.

use core::arch::x86_64::{__m256, _mm256_add_ps};

fn ungated(a: __m256) -> __m256 {
    _mm256_add_ps(a, a) //~ ERROR gated-intrinsics
}

fn inline_path_is_also_flagged(a: __m256) -> __m256 {
    core::arch::x86_64::_mm256_sub_ps(a, a) //~ ERROR gated-intrinsics
}

// SAFETY: calling `gated` requires AVX2; this fixture is never called.
#[target_feature(enable = "avx2")]
unsafe fn gated(a: __m256) -> __m256 {
    _mm256_add_ps(a, a)
}

// lint: allow(gated-intrinsics) — the token receiver is the proof of
// CPU support here; its constructor is the gated seam.
impl SimdToken for Tok {
    fn add(self, a: __m256) -> __m256 {
        _mm256_add_ps(a, a)
    }
}

fn after_the_waived_region(a: __m256) -> __m256 {
    _mm256_add_ps(a, a) //~ ERROR gated-intrinsics
}
