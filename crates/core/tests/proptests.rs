//! Property-based tests for the PCNN core: distillation invariants, CSC
//! codec roundtrips, sparse-execution equivalence, and plan accounting.

use pcnn_core::csc::CscVector;
use pcnn_core::distill::{distill_layer, PatternHistogram};
use pcnn_core::plan::{LayerPlan, PrunePlan};
use pcnn_core::project::project_onto_set;
use pcnn_core::quant::{dequantize, quant_rmse, quantize_symmetric, QuantParams};
use pcnn_core::sparse::SparseConv;
use pcnn_core::{Pattern, PatternSet};
use pcnn_tensor::conv::{conv2d_direct, Conv2dShape};
use pcnn_tensor::Tensor;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn histogram_counts_partition_kernels(
        vals in prop::collection::vec(-2.0f32..2.0, 8 * 2 * 9),
        n in 1usize..=6,
    ) {
        let w = Tensor::from_vec(vals, &[8, 2, 3, 3]);
        let hist = PatternHistogram::from_weight(&w, n);
        let total: u64 = hist.entries().iter().map(|(_, c)| c).sum();
        prop_assert_eq!(total, 16);
        // Every counted pattern has weight n.
        for (p, _) in hist.entries() {
            prop_assert_eq!(p.weight(), n);
        }
    }

    #[test]
    fn distilled_set_size_and_uniqueness(
        vals in prop::collection::vec(-2.0f32..2.0, 6 * 2 * 9),
        n in 1usize..=4,
        vl in 1usize..=16,
    ) {
        let w = Tensor::from_vec(vals, &[6, 2, 3, 3]);
        let set = distill_layer(&w, n, vl);
        let cap = pcnn_core::pattern::binomial(9, n).min(vl as u64) as usize;
        prop_assert_eq!(set.len(), cap);
        // All patterns distinct (PatternSet enforces), all weight n.
        for p in set.iter() {
            prop_assert_eq!(p.weight(), n);
        }
    }

    #[test]
    fn csc_roundtrip_arbitrary(
        dense in prop::collection::vec(
            prop_oneof![3 => Just(0.0f32), 1 => (-5.0f32..5.0).prop_filter("nz", |v| *v != 0.0)],
            0..200,
        ),
        bits in 2u32..=6,
    ) {
        let csc = CscVector::encode(&dense, bits);
        prop_assert_eq!(csc.decode(), dense);
    }

    #[test]
    fn csc_never_beats_information_content(
        nonzeros in 1usize..50,
    ) {
        // A fully dense vector must not "compress" above 1 under CSC with
        // its per-value index overhead.
        let dense = vec![1.0f32; nonzeros];
        let csc = CscVector::encode(&dense, 4);
        prop_assert!(csc.compression(32) <= 1.0);
    }

    #[test]
    fn sparse_conv_equals_dense_of_projected_weights(
        vals in prop::collection::vec(-1.0f32..1.0, 3 * 2 * 9),
        xvals in prop::collection::vec(-1.0f32..1.0, 2 * 25),
        n in 1usize..=5,
    ) {
        let set = PatternSet::full(9, n);
        let mut w = Tensor::from_vec(vals, &[3, 2, 3, 3]);
        for kernel in w.as_mut_slice().chunks_mut(9) {
            let _ = project_onto_set(kernel, &set);
        }
        let shape = Conv2dShape::new(2, 3, 3, 1, 1);
        let x = Tensor::from_vec(xvals, &[1, 2, 5, 5]);
        let sparse = SparseConv::from_dense(&w, shape, &set).expect("projected weights conform");
        let got = sparse.forward(&x);
        let want = conv2d_direct(&x, &w, None, &shape);
        for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn plan_mean_density_bounds(ns in prop::collection::vec(1usize..=9, 1..20)) {
        let plan = PrunePlan::various(&ns, |_| 32);
        let weights: Vec<u64> = ns.iter().map(|_| 9u64).collect();
        let d = plan.mean_density(9, &weights);
        let min = *ns.iter().min().unwrap() as f64 / 9.0;
        let max = *ns.iter().max().unwrap() as f64 / 9.0;
        prop_assert!(d >= min - 1e-12 && d <= max + 1e-12);
    }

    #[test]
    fn effective_patterns_never_exceed_candidates(n in 0usize..=9, budget in 1usize..=200) {
        let lp = LayerPlan { n, max_patterns: budget };
        let eff = lp.effective_patterns(9) as u64;
        prop_assert!(eff <= pcnn_core::pattern::binomial(9, n).max(1));
        prop_assert!(eff <= budget.max(1) as u64);
    }

    #[test]
    fn pattern_apply_then_support_subset(mask in 0u16..512, vals in prop::array::uniform9(-2.0f32..2.0)) {
        let p = Pattern::new(mask, 9);
        let mut kernel = vals;
        p.apply(&mut kernel);
        for (i, &v) in kernel.iter().enumerate() {
            if v != 0.0 {
                prop_assert!(p.contains(i));
            }
        }
    }

    /// The symmetric quantiser's fundamental error bound: round-tripping
    /// any slice reconstructs every element within half a quantisation
    /// step (`scale / 2`), at every supported bit width.
    #[test]
    fn quant_roundtrip_error_bounded_by_half_step(
        vals in prop::collection::vec(-8.0f32..8.0, 1..200),
        bits in 2u32..=8,
    ) {
        let (q, p) = quantize_symmetric(&vals, bits);
        prop_assert_eq!(q.len(), vals.len());
        let back = dequantize(&q, p);
        for (a, b) in vals.iter().zip(&back) {
            prop_assert!(
                (a - b).abs() <= p.scale * 0.5 + 1e-6,
                "|{} - {}| > scale/2 = {}", a, b, p.scale * 0.5
            );
        }
    }

    /// Codes never exceed the bit width's representable magnitude, the
    /// maximum absolute value maps to the top code, zeros map to the
    /// zero code exactly, and `q_max` is consistent across widths.
    #[test]
    fn quant_codes_respect_q_max_and_fixed_points(
        vals in prop::collection::vec(
            prop_oneof![1 => Just(0.0f32), 3 => -4.0f32..4.0],
            1..120,
        ),
        bits in 2u32..=8,
    ) {
        let (q, p) = quantize_symmetric(&vals, bits);
        prop_assert_eq!(p.q_max(), (1i32 << (bits - 1)) - 1);
        let max_abs = vals.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        for (&code, &v) in q.iter().zip(&vals) {
            prop_assert!((code as i32).abs() <= p.q_max());
            if v == 0.0 {
                prop_assert_eq!(code, 0, "zero must quantise to the zero code");
            }
            if v.abs() == max_abs && max_abs > 0.0 {
                prop_assert_eq!((code as i32).abs(), p.q_max());
            }
        }
        // The derived parameters match the shared scale helper.
        prop_assert_eq!(p, QuantParams::for_max_abs(max_abs, bits));
    }

    /// Degenerate inputs: all-zero slices quantise to all-zero codes at
    /// unit scale, and a single-element slice maps onto the top code.
    #[test]
    fn quant_degenerate_slices(len in 1usize..64, v in -4.0f32..4.0, bits in 2u32..=8) {
        let zeros = vec![0.0f32; len];
        let (qz, pz) = quantize_symmetric(&zeros, bits);
        prop_assert!(qz.iter().all(|&c| c == 0));
        prop_assert_eq!(pz.scale, 1.0);
        prop_assert_eq!(dequantize(&qz, pz), zeros);

        let (q1, p1) = quantize_symmetric(&[v], bits);
        if v == 0.0 {
            prop_assert_eq!(q1[0], 0);
        } else {
            prop_assert_eq!((q1[0] as i32).abs(), p1.q_max());
            prop_assert_eq!(q1[0] > 0, v > 0.0);
            // The sole element reconstructs exactly: it IS the max.
            prop_assert!((dequantize(&q1, p1)[0] - v).abs() <= p1.scale * 0.5 + 1e-6);
        }
    }

    /// More bits never hurt: RMSE is monotonically non-increasing in the
    /// bit width for any fixed data.
    #[test]
    fn quant_rmse_monotone_in_bits(vals in prop::collection::vec(-2.0f32..2.0, 8..100)) {
        let mut last = f32::INFINITY;
        for bits in 2u32..=8 {
            let e = quant_rmse(&vals, bits);
            prop_assert!(e <= last + 1e-6, "rmse rose from {} to {} at {} bits", last, e, bits);
            last = e;
        }
    }
}
