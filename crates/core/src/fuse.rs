//! Composing PCNN with coarse-grained pruning (the paper's
//! "orthogonality" experiments, Tables VII and VIII).
//!
//! PCNN prunes *within* kernels; kernel- and channel-level pruning
//! remove whole kernels or channels. The compression rates compose
//! (almost) multiplicatively: after coarse pruning keeps a fraction of
//! the weights, PCNN keeps `n/k²` of *those*.

use crate::compress::{pcnn_compression, CompressionReport, StorageModel};
use crate::plan::PrunePlan;
use pcnn_nn::zoo::NetworkShape;

/// Result of a fused (PCNN × coarse) compression computation.
#[derive(Debug, Clone)]
pub struct FusedCompression {
    /// PCNN-only weight compression on the reduced network.
    pub pcnn_factor: f64,
    /// Coarse pruning factor (dense weights / weights after coarse).
    pub coarse_factor: f64,
    /// Total weight compression relative to the original dense network.
    pub total: f64,
    /// Bit-level compression including SPM index overhead.
    pub total_with_index: f64,
    /// The underlying PCNN report on the reduced network.
    pub report: CompressionReport,
}

/// Scales a network as if kernel-level pruning kept `keep` of each
/// prunable layer's kernels. Kernel pruning removes `(out_c·in_c)`-grain
/// 2-D kernels; we model it by scaling the kernel count, implemented as
/// scaling `in_c` (weight and MAC counts scale identically).
///
/// # Panics
///
/// Panics if `keep` is outside `(0, 1]`.
pub fn kernel_pruned_network(net: &NetworkShape, keep: f64) -> NetworkShape {
    assert!(keep > 0.0 && keep <= 1.0, "keep must be in (0,1]");
    let mut out = net.clone();
    for conv in out.convs.iter_mut().filter(|c| c.prunable) {
        conv.in_c = ((conv.in_c as f64 * keep).round() as usize).max(1);
    }
    out.name = format!("{} + kernel-pruned ×{:.2}", net.name, 1.0 / keep);
    out
}

/// Scales a network as if channel pruning kept `keep` of every layer's
/// channels: each prunable layer's `in_c` and `out_c` shrink, so its
/// weight count shrinks by ≈ `keep²` (interior layers) — which is why a
/// 9× channel-pruned VGG corresponds to `keep = 1/3`.
///
/// # Panics
///
/// Panics if `keep` is outside `(0, 1]`.
pub fn channel_pruned_network(net: &NetworkShape, keep: f64) -> NetworkShape {
    assert!(keep > 0.0 && keep <= 1.0, "keep must be in (0,1]");
    let mut out = net.clone();
    let first_in = out.convs.first().map(|c| c.in_c);
    for conv in out.convs.iter_mut() {
        // The network input (3 RGB planes) is not prunable.
        if Some(conv.in_c) != first_in || conv.name != "conv1" {
            conv.in_c = ((conv.in_c as f64 * keep).round() as usize).max(1);
        }
        conv.out_c = ((conv.out_c as f64 * keep).round() as usize).max(1);
    }
    out.name = format!("{} + channel-pruned keep={keep:.2}", net.name);
    out
}

/// Computes the fused compression of applying a coarse-grained reduction
/// (already baked into `reduced`) followed by PCNN under `plan`.
///
/// `original` supplies the dense baseline the total is measured against.
pub fn fused_compression(
    original: &NetworkShape,
    reduced: &NetworkShape,
    plan: &PrunePlan,
    storage: &StorageModel,
) -> FusedCompression {
    let report = pcnn_compression(reduced, plan, storage);
    let dense_orig = original.conv_params() as f64;
    let dense_reduced = reduced.conv_params() as f64;
    let coarse_factor = dense_orig / dense_reduced;
    let total = dense_orig / report.params_after as f64;
    let orig_bits = original.conv_params() * storage.weight_bits as u64;
    let total_with_index = orig_bits as f64 / report.total_bits as f64;
    FusedCompression {
        pcnn_factor: report.weight_only,
        coarse_factor,
        total,
        total_with_index,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnn_nn::zoo::{vgg16_cifar, vgg16_imagenet};

    #[test]
    fn table7_kernel_fusion() {
        // Paper Table VII: PCNN n=5 (1.8×) + kernel pruning 2.4× → 4.4×;
        // + kernel pruning 4.1× → 7.3×.
        let net = vgg16_imagenet();
        let plan = PrunePlan::uniform(13, 5, 32);
        for (kp_factor, expect) in [(2.4f64, 4.4f64), (4.1, 7.3)] {
            let reduced = kernel_pruned_network(&net, 1.0 / kp_factor);
            let fused = fused_compression(&net, &reduced, &plan, &StorageModel::default());
            assert!(
                (fused.pcnn_factor - 1.8).abs() < 0.01,
                "pcnn {}",
                fused.pcnn_factor
            );
            assert!(
                (fused.total - expect).abs() / expect < 0.05,
                "kernel {kp_factor}: total {} vs paper {expect}",
                fused.total
            );
        }
    }

    #[test]
    fn table8_channel_fusion() {
        // Paper Table VIII: PCNN 3.75× (n=2.4 avg ≈ keeping 2.4/9) +
        // channel pruning 9× → 34.4×. We model PCNN 3.75× as the n
        // schedule that keeps 2.4/9 — closest integer plan: n=2 in most
        // layers (4.5×) mixed with n=3 (3×); the paper states the factors
        // themselves, so we verify multiplicativity with n=2 (4.5×)
        // against a 9×-parameter channel reduction scaled to match.
        let net = vgg16_cifar();
        // keep ≈ 1/3 of channels → interior layers shrink ~9×.
        let reduced = channel_pruned_network(&net, 1.0 / 3.0);
        let coarse = net.conv_params() as f64 / reduced.conv_params() as f64;
        assert!(coarse > 8.0 && coarse < 10.0, "coarse {coarse}");
        let plan = PrunePlan::uniform(13, 2, 32);
        let fused = fused_compression(&net, &reduced, &plan, &StorageModel::default());
        // 4.5 × ~9 ≈ 40; the paper's 3.75 × 9.17 ≈ 34.4. Multiplicativity
        // is the property under test.
        let expected = fused.pcnn_factor * fused.coarse_factor;
        assert!(
            (fused.total - expected).abs() / expected < 0.01,
            "total {} vs product {expected}",
            fused.total
        );
        assert!(
            fused.total > 30.0,
            "headline >30× fused compression, got {}",
            fused.total
        );
    }

    #[test]
    fn reduced_networks_shrink() {
        let net = vgg16_cifar();
        let k = kernel_pruned_network(&net, 0.5);
        assert!(k.conv_params() < net.conv_params());
        let c = channel_pruned_network(&net, 0.5);
        // Interior layers shrink ≈4×.
        let ratio = net.conv_params() as f64 / c.conv_params() as f64;
        assert!(ratio > 3.0 && ratio < 4.5, "ratio {ratio}");
        // First layer input stays 3 (RGB is not prunable).
        assert_eq!(c.convs[0].in_c, 3);
    }

    #[test]
    #[should_panic(expected = "keep must be in (0,1]")]
    fn zero_keep_rejected() {
        let _ = kernel_pruned_network(&vgg16_cifar(), 0.0);
    }
}
