//! A working CSC (EIE-style) compressed format for irregular sparsity.
//!
//! The paper compares SPM's index overhead against EIE's relative-indexed
//! CSC: each non-zero weight carries a 4-bit *run length* (zeros since
//! the previous non-zero); runs longer than 15 insert an explicit
//! padding zero. This module implements that format for real — encode,
//! decode, and bit accounting — so the comparison in the tables rests on
//! an executable artifact rather than a formula.

use pcnn_tensor::Tensor;

/// A CSC/EIE-encoded flat weight vector.
#[derive(Debug, Clone, PartialEq)]
pub struct CscVector {
    /// Stored values (non-zeros plus any padding zeros).
    values: Vec<f32>,
    /// Run-length index per stored value (zeros preceding it).
    runs: Vec<u8>,
    /// Bits per run-length index.
    index_bits: u32,
    /// Original dense length.
    len: usize,
}

impl CscVector {
    /// Encodes a dense slice with `index_bits`-bit run lengths (EIE uses
    /// 4).
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or exceeds 8.
    pub fn encode(dense: &[f32], index_bits: u32) -> Self {
        assert!((1..=8).contains(&index_bits), "index_bits must be 1..=8");
        let max_run = (1u32 << index_bits) - 1;
        let mut values = Vec::new();
        let mut runs = Vec::new();
        let mut run = 0u32;
        for &v in dense {
            if v == 0.0 {
                run += 1;
                if run > max_run {
                    // Insert a padding zero to keep the run encodable.
                    values.push(0.0);
                    runs.push(max_run as u8);
                    run = 0;
                }
            } else {
                values.push(v);
                runs.push(run as u8);
                run = 0;
            }
        }
        CscVector {
            values,
            runs,
            index_bits,
            len: dense.len(),
        }
    }

    /// Encodes a whole OIHW weight tensor (flattened, as EIE does).
    pub fn encode_tensor(weight: &Tensor, index_bits: u32) -> Self {
        Self::encode(weight.as_slice(), index_bits)
    }

    /// Decodes back to the dense vector.
    pub fn decode(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len];
        let mut pos = 0usize;
        for (&v, &r) in self.values.iter().zip(&self.runs) {
            pos += r as usize;
            if v != 0.0 {
                out[pos] = v;
            }
            pos += 1;
        }
        out
    }

    /// Stored entries (non-zeros + padding zeros).
    pub fn stored(&self) -> usize {
        self.values.len()
    }

    /// Padding zeros inserted for over-long runs.
    pub fn padding_zeros(&self) -> usize {
        self.values.iter().filter(|&&v| v == 0.0).count()
    }

    /// Index storage in bits.
    pub fn index_bits_total(&self) -> u64 {
        self.runs.len() as u64 * self.index_bits as u64
    }

    /// Total storage in bits for the given weight precision.
    pub fn total_bits(&self, weight_bits: u32) -> u64 {
        self.stored() as u64 * weight_bits as u64 + self.index_bits_total()
    }

    /// Compression ratio versus the dense vector at the same precision.
    pub fn compression(&self, weight_bits: u32) -> f64 {
        (self.len as u64 * weight_bits as u64) as f64 / self.total_bits(weight_bits).max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    #[test]
    fn roundtrip_simple() {
        let dense = vec![0.0, 1.0, 0.0, 0.0, 2.0, 0.0, -3.0, 0.0];
        let csc = CscVector::encode(&dense, 4);
        assert_eq!(csc.decode(), dense);
        assert_eq!(csc.stored(), 3);
        assert_eq!(csc.index_bits_total(), 12);
    }

    #[test]
    fn long_runs_insert_padding() {
        // 20 zeros then a value: with 4-bit runs (max 15) one padding
        // zero is required.
        let mut dense = vec![0.0f32; 20];
        dense.push(7.0);
        let csc = CscVector::encode(&dense, 4);
        assert_eq!(csc.padding_zeros(), 1);
        assert_eq!(csc.decode(), dense);
    }

    #[test]
    fn all_zero_vector() {
        let dense = vec![0.0f32; 40];
        let csc = CscVector::encode(&dense, 4);
        // Two padding zeros cover runs of 16 each; the final partial run
        // is dropped (nothing left to anchor it), which still decodes to
        // all zeros.
        assert_eq!(csc.decode(), dense);
        assert!(csc.stored() <= 3);
    }

    #[test]
    fn roundtrip_random_sparsity() {
        let mut rng = SmallRng::seed_from_u64(5);
        for density in [0.05f64, 0.2, 0.5, 1.0] {
            let dense: Vec<f32> = (0..500)
                .map(|_| {
                    if rng.gen_bool(density) {
                        rng.gen_range(-1.0f32..1.0)
                    } else {
                        0.0
                    }
                })
                .collect();
            let csc = CscVector::encode(&dense, 4);
            let back = csc.decode();
            // Exact roundtrip apart from values that were randomly 0.0.
            assert_eq!(back, dense, "density {density}");
        }
    }

    #[test]
    fn compression_matches_paper_example() {
        // n = 4-of-9 regular density, fp32: EIE-style CSC ≈ 2.0× (paper
        // §IV-B). Build a vector with exactly 4 non-zeros per 9.
        let mut dense = Vec::new();
        for _ in 0..1000 {
            dense.extend_from_slice(&[1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 0.0]);
        }
        let csc = CscVector::encode(&dense, 4);
        assert_eq!(csc.padding_zeros(), 0);
        let c = csc.compression(32);
        assert!((c - 2.0).abs() < 0.01, "{c}");
    }

    #[test]
    fn tensor_encode_matches_flat() {
        let mut rng = SmallRng::seed_from_u64(9);
        let data: Vec<f32> = (0..2 * 3 * 9)
            .map(|_| {
                if rng.gen_bool(0.4) {
                    rng.gen_range(-1.0f32..1.0)
                } else {
                    0.0
                }
            })
            .collect();
        let t = Tensor::from_vec(data.clone(), &[2, 3, 3, 3]);
        let a = CscVector::encode_tensor(&t, 4);
        let b = CscVector::encode(&data, 4);
        assert_eq!(a, b);
    }
}
