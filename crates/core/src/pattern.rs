//! Sparsity patterns and pattern sets (SPM mapping tables).
//!
//! A [`Pattern`] names which of the `k²` positions of a 2-D convolution
//! kernel are non-zero, stored as a bitmask (position 0 = top-left,
//! row-major — matching the weight layout of OIHW tensors). A
//! [`PatternSet`] is an ordered collection of patterns; the *index* of a
//! pattern in the set is its SPM code, and the set itself is exactly the
//! "SPM mapping table" the accelerator's decoder holds.

use std::fmt;

/// Maximum kernel area supported by the `u16` bitmask representation.
pub const MAX_KERNEL_AREA: usize = 16;

/// A sparsity pattern over the positions of one 2-D kernel.
///
/// # Example
///
/// ```
/// use pcnn_core::Pattern;
/// let p = Pattern::from_positions(&[0, 4, 8], 9); // main diagonal of 3×3
/// assert_eq!(p.weight(), 3);
/// assert!(p.contains(4));
/// assert_eq!(p.positions(), vec![0, 4, 8]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pattern {
    mask: u16,
    area: u8,
}

impl Pattern {
    /// Creates a pattern from a raw bitmask over `area` positions.
    ///
    /// # Panics
    ///
    /// Panics if `area > 16` or the mask has bits outside `area`.
    pub fn new(mask: u16, area: usize) -> Self {
        assert!(
            area <= MAX_KERNEL_AREA,
            "kernel area {area} exceeds u16 mask"
        );
        assert!(
            area == MAX_KERNEL_AREA || mask < (1u16 << area),
            "mask {mask:#b} out of range for area {area}"
        );
        Pattern {
            mask,
            area: area as u8,
        }
    }

    /// Creates a pattern with the given non-zero positions.
    ///
    /// # Panics
    ///
    /// Panics if a position is out of range.
    pub fn from_positions(positions: &[usize], area: usize) -> Self {
        let mut mask = 0u16;
        for &p in positions {
            assert!(p < area, "position {p} out of range for area {area}");
            mask |= 1 << p;
        }
        Pattern::new(mask, area)
    }

    /// The raw bitmask (bit `i` set ⇔ position `i` is non-zero).
    pub fn mask(&self) -> u16 {
        self.mask
    }

    /// The kernel area this pattern is defined over (9 for 3×3).
    pub fn area(&self) -> usize {
        self.area as usize
    }

    /// Number of non-zero positions (the paper's `n`).
    pub fn weight(&self) -> usize {
        self.mask.count_ones() as usize
    }

    /// Whether position `pos` is non-zero under this pattern.
    pub fn contains(&self, pos: usize) -> bool {
        pos < self.area() && (self.mask >> pos) & 1 == 1
    }

    /// The non-zero positions in ascending order.
    pub fn positions(&self) -> Vec<usize> {
        (0..self.area()).filter(|&p| self.contains(p)).collect()
    }

    /// Rank of `pos` among the non-zero positions (how many non-zeros
    /// precede it) — the index of the weight in the compressed non-zero
    /// sequence. Returns `None` when `pos` is pruned.
    pub fn rank_of(&self, pos: usize) -> Option<usize> {
        if !self.contains(pos) {
            return None;
        }
        let below = self.mask & ((1u32 << pos) as u16).wrapping_sub(1);
        Some(below.count_ones() as usize)
    }

    /// Retained energy of `kernel` under this pattern: `Σ w_i²` over the
    /// pattern's positions. The nearest pattern (in the L2 sense used by
    /// the paper's projection `Π`) is the one maximising this.
    ///
    /// # Panics
    ///
    /// Panics if `kernel.len() != area`.
    pub fn retained_energy(&self, kernel: &[f32]) -> f32 {
        assert_eq!(kernel.len(), self.area(), "kernel length mismatch");
        kernel
            .iter()
            .enumerate()
            .filter(|(i, _)| self.contains(*i))
            .map(|(_, &w)| w * w)
            .sum()
    }

    /// Applies the pattern to `kernel` in place, zeroing pruned positions.
    pub fn apply(&self, kernel: &mut [f32]) {
        assert_eq!(kernel.len(), self.area(), "kernel length mismatch");
        for (i, w) in kernel.iter_mut().enumerate() {
            if !self.contains(i) {
                *w = 0.0;
            }
        }
    }

    /// Rotates a square pattern 90° clockwise.
    ///
    /// # Panics
    ///
    /// Panics if the pattern's area is not a perfect square.
    pub fn rotate90(&self) -> Pattern {
        let side = (self.area() as f64).sqrt() as usize;
        assert_eq!(side * side, self.area(), "rotate90 needs a square pattern");
        let mut mask = 0u16;
        for r in 0..side {
            for c in 0..side {
                if self.contains(r * side + c) {
                    // (r, c) → (c, side-1-r)
                    mask |= 1 << (c * side + (side - 1 - r));
                }
            }
        }
        Pattern::new(mask, self.area())
    }

    /// Mirrors a square pattern horizontally.
    ///
    /// # Panics
    ///
    /// Panics if the pattern's area is not a perfect square.
    pub fn flip_horizontal(&self) -> Pattern {
        let side = (self.area() as f64).sqrt() as usize;
        assert_eq!(side * side, self.area(), "flip needs a square pattern");
        let mut mask = 0u16;
        for r in 0..side {
            for c in 0..side {
                if self.contains(r * side + c) {
                    mask |= 1 << (r * side + (side - 1 - c));
                }
            }
        }
        Pattern::new(mask, self.area())
    }

    /// The pattern's orbit under the dihedral symmetry group of the
    /// square (4 rotations × optional mirror), deduplicated and sorted.
    /// Distilled pattern sets tend to be closed under this group because
    /// natural images have no preferred orientation.
    pub fn symmetry_orbit(&self) -> Vec<Pattern> {
        let mut orbit = Vec::with_capacity(8);
        let mut p = *self;
        for _ in 0..4 {
            orbit.push(p);
            orbit.push(p.flip_horizontal());
            p = p.rotate90();
        }
        orbit.sort();
        orbit.dedup();
        orbit
    }

    /// Enumerates the full candidate set `F_n`: every pattern over `area`
    /// positions with exactly `n` non-zeros, in ascending mask order.
    /// `|F_n| = C(area, n)` (126 for 3×3 kernels with n = 4).
    ///
    /// # Panics
    ///
    /// Panics if `n > area` or `area > 16`.
    pub fn enumerate(area: usize, n: usize) -> Vec<Pattern> {
        assert!(
            area <= MAX_KERNEL_AREA && n <= area,
            "invalid (area={area}, n={n})"
        );
        let mut out = Vec::with_capacity(binomial(area, n) as usize);
        for mask in 0..(1u32 << area) {
            if mask.count_ones() as usize == n {
                out.push(Pattern::new(mask as u16, area));
            }
        }
        out
    }
}

impl fmt::Debug for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Pattern({:0width$b}/{})",
            self.mask,
            self.area,
            width = self.area()
        )
    }
}

impl fmt::Display for Pattern {
    /// Renders 3×3 (or any square-area) patterns as a grid of `#`/`.`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let side = (self.area() as f64).sqrt() as usize;
        if side * side == self.area() {
            for row in 0..side {
                for col in 0..side {
                    write!(
                        f,
                        "{}",
                        if self.contains(row * side + col) {
                            '#'
                        } else {
                            '.'
                        }
                    )?;
                }
                if row + 1 < side {
                    writeln!(f)?;
                }
            }
            Ok(())
        } else {
            write!(f, "{:?}", self)
        }
    }
}

/// Binomial coefficient `C(n, k)` (u64, exact for the small arguments
/// used here).
pub fn binomial(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num = 1u64;
    for i in 0..k {
        num = num * (n - i) as u64 / (i + 1) as u64;
    }
    num
}

/// An ordered set of patterns; the position of a pattern in the set is
/// its SPM code. This is the per-layer "SPM mapping table".
///
/// # Example
///
/// ```
/// use pcnn_core::{Pattern, PatternSet};
/// let set = PatternSet::full(9, 4);
/// assert_eq!(set.len(), 126);         // C(9,4)
/// assert_eq!(set.bits_per_code(), 7); // ⌈log2 126⌉
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternSet {
    patterns: Vec<Pattern>,
    area: usize,
}

impl PatternSet {
    /// Builds a set from a list of patterns (order = SPM code order).
    ///
    /// # Panics
    ///
    /// Panics if the list is empty, contains duplicates, or mixes areas.
    pub fn from_patterns(patterns: Vec<Pattern>) -> Self {
        assert!(!patterns.is_empty(), "pattern set must not be empty");
        let area = patterns[0].area();
        let mut seen = std::collections::HashSet::new();
        for p in &patterns {
            assert_eq!(p.area(), area, "mixed kernel areas in pattern set");
            assert!(seen.insert(p.mask()), "duplicate pattern {p:?}");
        }
        PatternSet { patterns, area }
    }

    /// The full candidate set `F_n` over `area` positions.
    pub fn full(area: usize, n: usize) -> Self {
        PatternSet::from_patterns(Pattern::enumerate(area, n))
    }

    /// Number of patterns (`|P_l|`, the paper's `V_l` after distillation).
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the set is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Kernel area the patterns cover.
    pub fn area(&self) -> usize {
        self.area
    }

    /// The pattern with SPM code `code`.
    ///
    /// # Panics
    ///
    /// Panics if `code` is out of range.
    pub fn get(&self, code: usize) -> Pattern {
        self.patterns[code]
    }

    /// The SPM code of `pattern`, if present.
    pub fn code_of(&self, pattern: Pattern) -> Option<usize> {
        self.patterns.iter().position(|p| *p == pattern)
    }

    /// Iterates over patterns in SPM-code order.
    pub fn iter(&self) -> std::slice::Iter<'_, Pattern> {
        self.patterns.iter()
    }

    /// The patterns as a slice, in SPM-code order.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Bits needed to store one SPM code: `⌈log2 |P|⌉` (min 1).
    pub fn bits_per_code(&self) -> u32 {
        if self.patterns.len() <= 1 {
            1
        } else {
            usize::BITS - (self.patterns.len() - 1).leading_zeros()
        }
    }

    /// Bits of the mapping-table itself: each entry expands a code to an
    /// `area`-bit weight mask.
    pub fn table_bits(&self) -> u64 {
        (self.patterns.len() * self.area) as u64
    }

    /// The pattern in the set nearest to `kernel` (maximum retained
    /// energy; ties broken by lowest SPM code) and its code.
    ///
    /// # Panics
    ///
    /// Panics if `kernel.len() != area`.
    pub fn nearest(&self, kernel: &[f32]) -> (usize, Pattern) {
        assert_eq!(kernel.len(), self.area, "kernel length mismatch");
        let mut best = 0usize;
        let mut best_energy = f32::NEG_INFINITY;
        for (i, p) in self.patterns.iter().enumerate() {
            let e = p.retained_energy(kernel);
            if e > best_energy {
                best_energy = e;
                best = i;
            }
        }
        (best, self.patterns[best])
    }
}

impl<'a> IntoIterator for &'a PatternSet {
    type Item = &'a Pattern;
    type IntoIter = std::slice::Iter<'a, Pattern>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomials() {
        assert_eq!(binomial(9, 0), 1);
        assert_eq!(binomial(9, 4), 126);
        assert_eq!(binomial(9, 5), 126);
        assert_eq!(binomial(9, 9), 1);
        assert_eq!(binomial(9, 2), 36);
        assert_eq!(binomial(4, 5), 0);
    }

    #[test]
    fn paper_pattern_counts() {
        // "there are Σ C(9,i) = 512 total patterns in 3×3 kernels" and the
        // max over n is C(9,4) = C(9,5) = 126.
        let total: u64 = (0..=9).map(|i| binomial(9, i)).sum();
        assert_eq!(total, 512);
        assert_eq!(Pattern::enumerate(9, 4).len(), 126);
        assert_eq!(Pattern::enumerate(9, 2).len(), 36);
        assert_eq!(Pattern::enumerate(9, 1).len(), 9);
    }

    #[test]
    fn pattern_positions_roundtrip() {
        let p = Pattern::from_positions(&[1, 3, 8], 9);
        assert_eq!(p.positions(), vec![1, 3, 8]);
        assert_eq!(p.weight(), 3);
        assert!(!p.contains(0));
        assert!(!p.contains(9)); // out of range is simply "not contained"
    }

    #[test]
    fn rank_of_counts_preceding_nonzeros() {
        let p = Pattern::from_positions(&[1, 3, 8], 9);
        assert_eq!(p.rank_of(1), Some(0));
        assert_eq!(p.rank_of(3), Some(1));
        assert_eq!(p.rank_of(8), Some(2));
        assert_eq!(p.rank_of(0), None);
        assert_eq!(p.rank_of(4), None);
    }

    #[test]
    fn retained_energy_and_apply() {
        let p = Pattern::from_positions(&[0, 2], 4);
        let mut kernel = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(p.retained_energy(&kernel), 1.0 + 9.0);
        p.apply(&mut kernel);
        assert_eq!(kernel, [1.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn display_grid() {
        let p = Pattern::from_positions(&[0, 4, 8], 9);
        assert_eq!(format!("{p}"), "#..\n.#.\n..#");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range_mask() {
        let _ = Pattern::new(0b10_0000_0000, 9);
    }

    #[test]
    fn rotation_has_order_four_and_preserves_weight() {
        let p = Pattern::from_positions(&[0, 1, 5], 9);
        let mut q = p;
        for _ in 0..4 {
            q = q.rotate90();
            assert_eq!(q.weight(), p.weight());
        }
        assert_eq!(q, p, "four rotations return to start");
    }

    #[test]
    fn flip_is_an_involution() {
        let p = Pattern::from_positions(&[0, 4, 7], 9);
        assert_eq!(p.flip_horizontal().flip_horizontal(), p);
    }

    #[test]
    fn rotate_maps_corners_correctly() {
        // Top-left corner (0) rotates to top-right (2) on a 3×3 grid.
        let p = Pattern::from_positions(&[0], 9);
        assert_eq!(p.rotate90().positions(), vec![2]);
        // Centre is a fixed point.
        let c = Pattern::from_positions(&[4], 9);
        assert_eq!(c.rotate90(), c);
    }

    #[test]
    fn symmetry_orbit_sizes_divide_eight() {
        for mask in 0..512u16 {
            let orbit = Pattern::new(mask, 9).symmetry_orbit();
            assert!(
                8 % orbit.len() == 0,
                "orbit size {} for mask {mask:#b}",
                orbit.len()
            );
            // The orbit contains the pattern itself.
            assert!(orbit.contains(&Pattern::new(mask, 9)));
        }
    }

    #[test]
    fn set_codes_are_stable_and_unique() {
        let set = PatternSet::full(9, 2);
        assert_eq!(set.len(), 36);
        for code in 0..set.len() {
            assert_eq!(set.code_of(set.get(code)), Some(code));
        }
    }

    #[test]
    fn bits_per_code_matches_paper() {
        // 126 patterns → 7 bits; 32 → 5; 16 → 4; 8 → 3; 4 → 2; 1 → 1.
        assert_eq!(PatternSet::full(9, 4).bits_per_code(), 7);
        let take = |k: usize| {
            PatternSet::from_patterns(Pattern::enumerate(9, 4).into_iter().take(k).collect())
        };
        assert_eq!(take(32).bits_per_code(), 5);
        assert_eq!(take(16).bits_per_code(), 4);
        assert_eq!(take(8).bits_per_code(), 3);
        assert_eq!(take(4).bits_per_code(), 2);
        assert_eq!(take(1).bits_per_code(), 1);
    }

    #[test]
    fn nearest_maximises_energy() {
        let set = PatternSet::full(9, 2);
        let kernel = [0.0, 5.0, 0.0, 0.0, -7.0, 0.0, 0.1, 0.0, 0.0];
        let (_, p) = set.nearest(&kernel);
        assert_eq!(p.positions(), vec![1, 4]);
    }

    #[test]
    #[should_panic(expected = "duplicate pattern")]
    fn from_patterns_rejects_duplicates() {
        let p = Pattern::from_positions(&[0], 9);
        let _ = PatternSet::from_patterns(vec![p, p]);
    }

    #[test]
    fn enumerate_is_sorted_and_distinct() {
        let pats = Pattern::enumerate(9, 3);
        for w in pats.windows(2) {
            assert!(w[0].mask() < w[1].mask());
        }
        assert_eq!(pats.len(), 84);
    }
}
