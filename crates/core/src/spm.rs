//! The Sparsity Pattern Mask (SPM) storage format.
//!
//! An SPM-encoded layer stores, per 2-D kernel, one small code naming the
//! kernel's pattern in the layer's [`PatternSet`] plus an equal-length
//! non-zero weight sequence (Figure 1 of the paper). Contrast this with
//! CSC (EIE), which spends an index on *every non-zero weight*; SPM
//! spends `⌈log2 |P_l|⌉` bits per *kernel*.

use crate::pattern::PatternSet;
use pcnn_tensor::Tensor;
use std::error::Error;
use std::fmt;

/// Error returned when a weight tensor cannot be SPM-encoded against a
/// given pattern set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeSpmError {
    /// Index of the offending kernel (in `out_c · in_c` order).
    pub kernel: usize,
    /// The kernel's support mask that no pattern covers.
    pub support: u16,
}

impl fmt::Display for EncodeSpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kernel {} has support {:#b} not covered by any pattern in the set",
            self.kernel, self.support
        )
    }
}

impl Error for EncodeSpmError {}

/// An SPM-encoded convolution layer: pattern table + per-kernel codes +
/// the packed non-zero sequences.
#[derive(Debug, Clone)]
pub struct SpmLayer {
    set: PatternSet,
    codes: Vec<u16>,
    nonzeros: Vec<f32>,
    n: usize,
    out_c: usize,
    in_c: usize,
}

impl SpmLayer {
    /// Encodes an OIHW weight tensor whose kernels all conform to
    /// patterns in `set` (every pattern in the set must have the same
    /// weight `n`; kernels with *fewer* non-zeros than `n` are stored
    /// with explicit zeros in their sequence, which is how the paper's
    /// memory layout pads).
    ///
    /// # Errors
    ///
    /// Returns [`EncodeSpmError`] if some kernel has a non-zero outside
    /// every pattern of the set.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not OIHW with `k² == set.area()`, or if
    /// the set mixes pattern weights.
    pub fn encode(weight: &Tensor, set: &PatternSet) -> Result<Self, EncodeSpmError> {
        let dims = weight.shape();
        assert_eq!(dims.len(), 4, "weight must be OIHW");
        let (out_c, in_c, kh, kw) = (dims[0], dims[1], dims[2], dims[3]);
        let area = kh * kw;
        assert_eq!(area, set.area(), "kernel area mismatch with pattern set");
        let n = set.iter().next().map_or(0, |p| p.weight());
        assert!(
            set.iter().all(|p| p.weight() == n),
            "pattern set mixes weights"
        );

        let kernels = out_c * in_c;
        let mut codes = Vec::with_capacity(kernels);
        let mut nonzeros = Vec::with_capacity(kernels * n);
        let data = weight.as_slice();
        for ki in 0..kernels {
            let kernel = &data[ki * area..(ki + 1) * area];
            let mut support = 0u16;
            for (i, &w) in kernel.iter().enumerate() {
                if w != 0.0 {
                    support |= 1 << i;
                }
            }
            // Exact match first, then the highest-energy superset.
            let code = set
                .iter()
                .position(|p| p.mask() == support)
                .or_else(|| {
                    let mut best: Option<(usize, f32)> = None;
                    for (i, p) in set.iter().enumerate() {
                        if p.mask() & support == support {
                            let e = p.retained_energy(kernel);
                            if best.is_none_or(|(_, be)| e > be) {
                                best = Some((i, e));
                            }
                        }
                    }
                    best.map(|(i, _)| i)
                })
                .ok_or(EncodeSpmError {
                    kernel: ki,
                    support,
                })?;
            codes.push(code as u16);
            let pattern = set.get(code);
            for pos in pattern.positions() {
                nonzeros.push(kernel[pos]);
            }
        }
        Ok(SpmLayer {
            set: set.clone(),
            codes,
            nonzeros,
            n,
            out_c,
            in_c,
        })
    }

    /// Decodes back to a dense OIHW tensor.
    pub fn decode(&self) -> Tensor {
        let area = self.set.area();
        let side = (area as f64).sqrt() as usize;
        assert_eq!(side * side, area, "non-square kernels are not supported");
        let mut out = Tensor::zeros(&[self.out_c, self.in_c, side, side]);
        let data = out.as_mut_slice();
        for (ki, &code) in self.codes.iter().enumerate() {
            let pattern = self.set.get(code as usize);
            for (rank, pos) in pattern.positions().into_iter().enumerate() {
                data[ki * area + pos] = self.nonzeros[ki * self.n + rank];
            }
        }
        out
    }

    /// The layer's pattern set (SPM mapping table).
    pub fn pattern_set(&self) -> &PatternSet {
        &self.set
    }

    /// Non-zeros per kernel (the paper's `n`).
    pub fn nonzeros_per_kernel(&self) -> usize {
        self.n
    }

    /// Number of kernels (`out_c · in_c`).
    pub fn kernel_count(&self) -> usize {
        self.codes.len()
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    /// Input channels.
    pub fn in_channels(&self) -> usize {
        self.in_c
    }

    /// The SPM code of kernel `ki`.
    pub fn code(&self, ki: usize) -> u16 {
        self.codes[ki]
    }

    /// The packed non-zero sequence of kernel `ki` (`n` values).
    pub fn kernel_nonzeros(&self, ki: usize) -> &[f32] {
        &self.nonzeros[ki * self.n..(ki + 1) * self.n]
    }

    /// Every packed non-zero sequence as one flat kernel-major slice
    /// (`kernel_count · n` values, kernel `ki` at `ki·n..(ki+1)·n`) —
    /// the stream a per-layer quantiser consumes in a single pass.
    pub fn nonzeros(&self) -> &[f32] {
        &self.nonzeros
    }

    /// All SPM codes in kernel order.
    pub fn codes(&self) -> &[u16] {
        &self.codes
    }

    /// Iterates kernels in `out_c · in_c` order as
    /// `(kernel index, SPM code, non-zero sequence)` — the exact stream
    /// a runtime or accelerator front-end consumes.
    pub fn iter_kernels(&self) -> impl Iterator<Item = (usize, u16, &[f32])> + '_ {
        self.codes
            .iter()
            .enumerate()
            .map(move |(ki, &code)| (ki, code, self.kernel_nonzeros(ki)))
    }

    /// Whether kernel `ki`'s non-zero sequence is entirely zero — true
    /// for kernels removed by an *orthogonal* coarse-grained pruning
    /// pass (kernel/channel pruning on top of PCNN). Runtimes skip these
    /// kernels outright.
    pub fn kernel_is_zero(&self, ki: usize) -> bool {
        self.kernel_nonzeros(ki).iter().all(|&w| w == 0.0)
    }

    /// Storage cost of the non-zero sequences, in bits.
    pub fn weight_bits(&self, bits_per_weight: u32) -> u64 {
        self.nonzeros.len() as u64 * bits_per_weight as u64
    }

    /// Storage cost of the per-kernel SPM codes, in bits.
    pub fn index_bits(&self) -> u64 {
        self.codes.len() as u64 * self.set.bits_per_code() as u64
    }

    /// Storage cost of the mapping table, in bits.
    pub fn table_bits(&self) -> u64 {
        self.set.table_bits()
    }

    /// Dense storage cost of the same layer, in bits.
    pub fn dense_bits(&self, bits_per_weight: u32) -> u64 {
        (self.codes.len() * self.set.area()) as u64 * bits_per_weight as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;
    use crate::project::project_onto_set;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn pruned_weight(out_c: usize, in_c: usize, set: &PatternSet, seed: u64) -> Tensor {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut w = Tensor::from_vec(
            (0..out_c * in_c * 9)
                .map(|_| rng.gen_range(-1.0f32..1.0))
                .collect(),
            &[out_c, in_c, 3, 3],
        );
        for kernel in w.as_mut_slice().chunks_mut(9) {
            let _ = project_onto_set(kernel, set);
        }
        w
    }

    #[test]
    fn encode_decode_roundtrip() {
        let set = PatternSet::full(9, 4);
        let w = pruned_weight(4, 3, &set, 1);
        let spm = SpmLayer::encode(&w, &set).expect("encode");
        assert_eq!(spm.kernel_count(), 12);
        assert_eq!(spm.nonzeros_per_kernel(), 4);
        let back = spm.decode();
        assert_eq!(back.as_slice(), w.as_slice());
    }

    #[test]
    fn encode_rejects_nonconforming_kernel() {
        // A dense kernel has 9 non-zeros; no n=2 pattern covers it.
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let set = PatternSet::full(9, 2);
        let err = SpmLayer::encode(&w, &set).unwrap_err();
        assert_eq!(err.kernel, 0);
        assert_eq!(err.support, 0b1_1111_1111);
        // Error is displayable.
        assert!(err.to_string().contains("kernel 0"));
    }

    #[test]
    fn kernel_with_fewer_nonzeros_encodes_with_padding() {
        // Kernel with a single non-zero still encodes against an n=3 set;
        // its sequence carries explicit zeros.
        let mut w = Tensor::zeros(&[1, 1, 3, 3]);
        w.as_mut_slice()[4] = 2.5;
        let set = PatternSet::full(9, 3);
        let spm = SpmLayer::encode(&w, &set).expect("encode");
        let seq = spm.kernel_nonzeros(0);
        assert_eq!(seq.iter().filter(|&&v| v != 0.0).count(), 1);
        assert_eq!(spm.decode().as_slice(), w.as_slice());
    }

    #[test]
    fn storage_accounting_fig1_example() {
        // One 3×3 kernel, n = 4, |P| = 126 → 7-bit code; 4 weights of 32
        // bits; dense is 9 × 32.
        let set = PatternSet::full(9, 4);
        let mut w = Tensor::zeros(&[1, 1, 3, 3]);
        for (i, v) in [(1, 2.09f32), (2, 1.45), (5, 1.15), (7, 2.12)] {
            w.as_mut_slice()[i] = v;
        }
        let spm = SpmLayer::encode(&w, &set).expect("encode");
        assert_eq!(spm.weight_bits(32), 4 * 32);
        assert_eq!(spm.index_bits(), 7);
        assert_eq!(spm.dense_bits(32), 9 * 32);
        assert_eq!(spm.table_bits(), 126 * 9);
    }

    #[test]
    fn smaller_set_means_fewer_index_bits() {
        let full = PatternSet::full(9, 4);
        let small =
            PatternSet::from_patterns(Pattern::enumerate(9, 4).into_iter().take(8).collect());
        let w = pruned_weight(2, 2, &small, 3);
        let a = SpmLayer::encode(&w, &full).expect("full");
        let b = SpmLayer::encode(&w, &small).expect("small");
        assert!(b.index_bits() < a.index_bits());
        assert_eq!(a.weight_bits(8), b.weight_bits(8));
    }

    #[test]
    fn codes_in_range() {
        let set = PatternSet::full(9, 2);
        let w = pruned_weight(6, 5, &set, 9);
        let spm = SpmLayer::encode(&w, &set).expect("encode");
        assert!(spm.codes().iter().all(|&c| (c as usize) < set.len()));
    }

    #[test]
    fn iter_kernels_streams_codes_and_sequences() {
        let set = PatternSet::full(9, 3);
        let w = pruned_weight(4, 2, &set, 15);
        let spm = SpmLayer::encode(&w, &set).expect("encode");
        let mut count = 0;
        for (ki, code, nonzeros) in spm.iter_kernels() {
            assert_eq!(ki, count);
            assert_eq!(code, spm.code(ki));
            assert_eq!(nonzeros, spm.kernel_nonzeros(ki));
            assert_eq!(nonzeros.len(), 3);
            count += 1;
        }
        assert_eq!(count, spm.kernel_count());
    }

    #[test]
    fn kernel_is_zero_flags_coarsely_pruned_kernels() {
        let set = PatternSet::full(9, 2);
        let mut w = pruned_weight(2, 2, &set, 19);
        // Coarse-prune kernel 1 entirely.
        w.as_mut_slice()[9..18].fill(0.0);
        let spm = SpmLayer::encode(&w, &set).expect("encode");
        assert!(spm.kernel_is_zero(1));
        assert!(!spm.kernel_is_zero(0));
    }
}
