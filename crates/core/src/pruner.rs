//! Applying a PCNN plan to a trainable model: distillation, projection,
//! and mask installation (hard pruning).

use crate::distill::distill_layer;
use crate::pattern::PatternSet;
use crate::plan::PrunePlan;
use crate::project::project_onto_set;
use pcnn_nn::Model;
use pcnn_tensor::Tensor;

/// Per-layer outcome of pruning.
#[derive(Debug, Clone)]
pub struct LayerPruneReport {
    /// Layer name.
    pub name: String,
    /// Non-zeros kept per kernel.
    pub n: usize,
    /// Size of the distilled pattern set.
    pub patterns: usize,
    /// Number of kernels in the layer.
    pub kernels: usize,
    /// Achieved weight sparsity (fraction of zeros) after projection.
    pub sparsity: f64,
}

/// Outcome of [`prune_model`]: per-layer reports plus the distilled
/// pattern sets (in prunable-layer order) for later SPM encoding or ADMM.
#[derive(Debug, Clone)]
pub struct PruneOutcome {
    /// One report per prunable layer.
    pub reports: Vec<LayerPruneReport>,
    /// The distilled `P_l` per prunable layer.
    pub sets: Vec<PatternSet>,
}

/// Distils pattern sets for every prunable layer of `model` under `plan`
/// without modifying the weights (the first phase of the paper's
/// learning framework).
///
/// # Panics
///
/// Panics if the plan's layer count differs from the model's prunable
/// convolution count.
pub fn distill_pattern_sets(model: &Model, plan: &PrunePlan) -> Vec<PatternSet> {
    let convs = model.prunable_convs();
    assert_eq!(
        convs.len(),
        plan.layers().len(),
        "plan covers {} layers, model has {}",
        plan.layers().len(),
        convs.len()
    );
    convs
        .iter()
        .zip(plan.layers())
        .map(|(conv, lp)| {
            let area = conv.shape().kernel_area();
            distill_layer(conv.weight(), lp.n, lp.effective_patterns(area))
        })
        .collect()
}

/// Hard-prunes `model` under `plan`: distills per-layer pattern sets,
/// projects every kernel onto its nearest pattern, and installs 0/1
/// masks so subsequent fine-tuning cannot regrow pruned weights.
///
/// # Panics
///
/// Panics on plan/model layer-count mismatch.
pub fn prune_model(model: &mut Model, plan: &PrunePlan) -> PruneOutcome {
    let sets = distill_pattern_sets(model, plan);
    let outcome = prune_model_with_sets(model, plan, &sets);
    PruneOutcome {
        reports: outcome,
        sets,
    }
}

/// Hard-prunes `model` using pre-computed pattern sets (used after ADMM,
/// which distils its sets before regularising toward them).
///
/// # Panics
///
/// Panics if `sets` doesn't match the model's prunable layers.
pub fn prune_model_with_sets(
    model: &mut Model,
    plan: &PrunePlan,
    sets: &[PatternSet],
) -> Vec<LayerPruneReport> {
    let convs = model.prunable_convs_mut();
    assert_eq!(convs.len(), sets.len(), "set count mismatch");
    assert_eq!(convs.len(), plan.layers().len(), "plan count mismatch");
    let mut reports = Vec::with_capacity(convs.len());
    for ((conv, set), lp) in convs.into_iter().zip(sets).zip(plan.layers()) {
        let area = conv.shape().kernel_area();
        let wshape = conv.weight().shape().to_vec();
        let mut mask = Tensor::zeros(&wshape);
        {
            let weights = conv.weight_mut().as_mut_slice();
            let mask_data = mask.as_mut_slice();
            for (ki, kernel) in weights.chunks_mut(area).enumerate() {
                let code = project_onto_set(kernel, set);
                let pattern = set.get(code);
                for pos in pattern.positions() {
                    mask_data[ki * area + pos] = 1.0;
                }
            }
        }
        conv.set_mask(Some(mask));
        let kernels = conv.shape().kernel_count();
        reports.push(LayerPruneReport {
            name: conv.name.clone(),
            n: lp.n,
            patterns: set.len(),
            kernels,
            sparsity: conv.weight().sparsity(),
        });
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnn_nn::models::{vgg16_proxy, VggProxyConfig};

    fn proxy() -> Model {
        vgg16_proxy(&VggProxyConfig::default(), 3)
    }

    #[test]
    fn prune_model_enforces_regular_sparsity() {
        let mut m = proxy();
        let plan = PrunePlan::uniform(13, 4, 32);
        let outcome = prune_model(&mut m, &plan);
        assert_eq!(outcome.reports.len(), 13);
        // Every kernel of every layer has exactly 4 non-zeros or fewer
        // (a kernel that was already sparser stays sparser).
        for conv in m.prunable_convs() {
            for kernel in conv.weight().as_slice().chunks(9) {
                let nnz = kernel.iter().filter(|&&w| w != 0.0).count();
                assert!(nnz <= 4, "kernel has {nnz} non-zeros");
            }
        }
        // Overall sparsity ≈ 5/9 for n=4 (random init has no exact zeros).
        for r in &outcome.reports {
            assert!(
                (r.sparsity - 5.0 / 9.0).abs() < 0.02,
                "{}: {}",
                r.name,
                r.sparsity
            );
        }
    }

    #[test]
    fn pruned_kernels_conform_to_distilled_sets() {
        let mut m = proxy();
        let plan = PrunePlan::uniform(13, 2, 8);
        let outcome = prune_model(&mut m, &plan);
        for (conv, set) in m.prunable_convs().iter().zip(&outcome.sets) {
            assert!(set.len() <= 8);
            for kernel in conv.weight().as_slice().chunks(9) {
                let mut support = 0u16;
                for (i, &w) in kernel.iter().enumerate() {
                    if w != 0.0 {
                        support |= 1 << i;
                    }
                }
                // The kernel's support must be covered by a pattern in the set.
                assert!(
                    set.iter().any(|p| p.mask() & support == support),
                    "support {support:#b} not covered"
                );
            }
        }
    }

    #[test]
    fn masks_survive_weight_updates() {
        let mut m = proxy();
        let plan = PrunePlan::uniform(13, 1, 8);
        let _ = prune_model(&mut m, &plan);
        // Overwrite all weights with ones, then re-apply masks.
        for conv in m.prunable_convs_mut() {
            conv.weight_mut().fill(1.0);
        }
        m.apply_weight_masks();
        for conv in m.prunable_convs() {
            for kernel in conv.weight().as_slice().chunks(9) {
                assert_eq!(kernel.iter().filter(|&&w| w != 0.0).count(), 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "plan covers")]
    fn plan_layer_mismatch_panics() {
        let m = proxy();
        let plan = PrunePlan::uniform(5, 4, 32);
        let _ = distill_pattern_sets(&m, &plan);
    }

    #[test]
    fn various_plan_applies_per_layer() {
        let mut m = proxy();
        let plan = PrunePlan::vgg16_various();
        let outcome = prune_model(&mut m, &plan);
        assert_eq!(outcome.reports[0].n, 2);
        assert_eq!(outcome.reports[1].n, 1);
        assert!(outcome.reports[0].sparsity < outcome.reports[1].sparsity);
    }
}
