//! Software execution of SPM-encoded sparse convolutions.
//!
//! This is the functional model of what the pattern-aware PE array
//! computes: per kernel, only the pattern's positions are visited, and
//! zero activations are skipped (the shared-activation zero-detect).
//! It doubles as the golden reference and the MAC-count source for the
//! accelerator simulator in `pcnn-accel`.

use crate::pattern::PatternSet;
use crate::spm::{EncodeSpmError, SpmLayer};
use pcnn_tensor::conv::Conv2dShape;
use pcnn_tensor::Tensor;

/// MAC-work accounting of one sparse convolution execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MacCounts {
    /// Dense MAC count (`k² · in_c · out_c · out_h · out_w`).
    pub dense: u64,
    /// MAC slots under weight sparsity only: pattern positions visited
    /// (`n/k²` of dense) — what balanced-workload hardware must issue
    /// when activations are dense.
    pub weight_sparse: u64,
    /// Effectual MACs: pattern position *and* non-zero activation —
    /// what the sparsity-aware PE array actually executes.
    pub effectual: u64,
}

impl MacCounts {
    /// Speedup over dense execution from weight sparsity alone.
    pub fn weight_speedup(&self) -> f64 {
        self.dense as f64 / self.weight_sparse.max(1) as f64
    }

    /// Speedup over dense execution exploiting both sparsities.
    pub fn full_speedup(&self) -> f64 {
        self.dense as f64 / self.effectual.max(1) as f64
    }
}

/// An SPM-encoded convolution layer ready for sparse execution.
#[derive(Debug, Clone)]
pub struct SparseConv {
    spm: SpmLayer,
    shape: Conv2dShape,
}

impl SparseConv {
    /// Encodes a (pattern-conformant) dense OIHW weight tensor.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeSpmError`] if some kernel doesn't fit any pattern
    /// in `set`.
    ///
    /// # Panics
    ///
    /// Panics if the weight shape disagrees with `shape`.
    pub fn from_dense(
        weight: &Tensor,
        shape: Conv2dShape,
        set: &PatternSet,
    ) -> Result<Self, EncodeSpmError> {
        assert_eq!(
            weight.shape(),
            &[shape.out_c, shape.in_c, shape.kernel, shape.kernel],
            "weight/shape mismatch"
        );
        Ok(SparseConv {
            spm: SpmLayer::encode(weight, set)?,
            shape,
        })
    }

    /// The underlying SPM encoding.
    pub fn spm(&self) -> &SpmLayer {
        &self.spm
    }

    /// The convolution shape.
    pub fn shape(&self) -> &Conv2dShape {
        &self.shape
    }

    /// Executes the sparse convolution on an NCHW input.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        self.forward_counting(input).0
    }

    /// Executes the sparse convolution and reports MAC-work counts.
    ///
    /// # Panics
    ///
    /// Panics on input shape mismatch.
    pub fn forward_counting(&self, input: &Tensor) -> (Tensor, MacCounts) {
        let dims = input.shape();
        assert_eq!(dims.len(), 4, "input must be NCHW");
        let (n, in_c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        assert_eq!(in_c, self.shape.in_c, "input channels mismatch");
        let (oh, ow) = self.shape.out_hw(h, w);
        let k = self.shape.kernel;
        let out_c = self.shape.out_c;
        let mut out = Tensor::zeros(&[n, out_c, oh, ow]);
        let mut counts = MacCounts {
            dense: (n * out_c * in_c * k * k * oh * ow) as u64,
            ..MacCounts::default()
        };

        // Counting convention (matches the hardware): a convolution
        // window always spans the full k² positions — zero padding shows
        // up as zero *activations*, which the dense baseline still
        // multiplies but the sparsity-aware PE skips. Hence
        // `weight_sparse` counts every (window × pattern-position) pair
        // and `effectual` only those with a non-zero, in-bounds
        // activation, making weight_speedup exactly k²/n.
        let x = input.as_slice();
        for ni in 0..n {
            for oc in 0..out_c {
                for ic in 0..in_c {
                    let ki = oc * in_c + ic;
                    let pattern = self.spm.pattern_set().get(self.spm.code(ki) as usize);
                    let seq = self.spm.kernel_nonzeros(ki);
                    let plane = (ni * in_c + ic) * h * w;
                    for (rank, pos) in pattern.positions().into_iter().enumerate() {
                        let (ky, kx) = (pos / k, pos % k);
                        let wv = seq[rank];
                        for oy in 0..oh {
                            let iy =
                                (oy * self.shape.stride + ky) as isize - self.shape.pad as isize;
                            counts.weight_sparse += ow as u64;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for ox in 0..ow {
                                let ix = (ox * self.shape.stride + kx) as isize
                                    - self.shape.pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let av = x[plane + iy as usize * w + ix as usize];
                                if av != 0.0 {
                                    counts.effectual += 1;
                                    let off = out.offset4(ni, oc, oy, ox);
                                    out.as_mut_slice()[off] += wv * av;
                                }
                            }
                        }
                    }
                }
            }
        }
        (out, counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::project::project_onto_set;
    use pcnn_tensor::conv::conv2d_direct;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn random_pruned(out_c: usize, in_c: usize, set: &PatternSet, seed: u64) -> Tensor {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut w = Tensor::from_vec(
            (0..out_c * in_c * 9)
                .map(|_| rng.gen_range(-1.0f32..1.0))
                .collect(),
            &[out_c, in_c, 3, 3],
        );
        for kernel in w.as_mut_slice().chunks_mut(9) {
            let _ = project_onto_set(kernel, set);
        }
        w
    }

    #[test]
    fn sparse_forward_matches_dense_reference() {
        let mut rng = SmallRng::seed_from_u64(2);
        let set = PatternSet::full(9, 3);
        let shape = Conv2dShape::new(3, 4, 3, 1, 1);
        let w = random_pruned(4, 3, &set, 7);
        let x = Tensor::from_vec(
            (0..2 * 3 * 6 * 6)
                .map(|_| rng.gen_range(-1.0f32..1.0))
                .collect(),
            &[2, 3, 6, 6],
        );
        let sparse = SparseConv::from_dense(&w, shape, &set).expect("encode");
        let got = sparse.forward(&x);
        let want = conv2d_direct(&x, &w, None, &shape);
        pcnn_tensor::assert_slices_close(got.as_slice(), want.as_slice(), 1e-4);
    }

    #[test]
    fn sparse_forward_matches_dense_with_stride() {
        let mut rng = SmallRng::seed_from_u64(4);
        let set = PatternSet::full(9, 2);
        let shape = Conv2dShape::new(2, 3, 3, 2, 1);
        let w = random_pruned(3, 2, &set, 9);
        let x = Tensor::from_vec(
            (0..2 * 9 * 9)
                .map(|_| rng.gen_range(-1.0f32..1.0))
                .collect(),
            &[1, 2, 9, 9],
        );
        let sparse = SparseConv::from_dense(&w, shape, &set).expect("encode");
        let got = sparse.forward(&x);
        let want = conv2d_direct(&x, &w, None, &shape);
        pcnn_tensor::assert_slices_close(got.as_slice(), want.as_slice(), 1e-4);
    }

    #[test]
    fn weight_speedup_is_area_over_n() {
        let set = PatternSet::full(9, 3);
        // No padding: every window position maps to a real activation.
        let shape = Conv2dShape::new(2, 2, 3, 1, 0);
        let w = random_pruned(2, 2, &set, 11);
        // Dense activations → weight_speedup == 9/3 == 3 exactly.
        let x = Tensor::ones(&[1, 2, 8, 8]);
        let sparse = SparseConv::from_dense(&w, shape, &set).expect("encode");
        let (_, counts) = sparse.forward_counting(&x);
        assert!(
            (counts.weight_speedup() - 3.0).abs() < 1e-9,
            "{}",
            counts.weight_speedup()
        );
        // All activations non-zero → effectual == weight_sparse.
        assert_eq!(counts.effectual, counts.weight_sparse);
    }

    #[test]
    fn padding_counts_as_zero_activations() {
        // With pad=1 the dense baseline still multiplies padded zeros,
        // so effectual < weight_sparse even for an all-ones input.
        let set = PatternSet::full(9, 3);
        let shape = Conv2dShape::new(2, 2, 3, 1, 1);
        let w = random_pruned(2, 2, &set, 11);
        let x = Tensor::ones(&[1, 2, 8, 8]);
        let sparse = SparseConv::from_dense(&w, shape, &set).expect("encode");
        let (_, counts) = sparse.forward_counting(&x);
        assert!(counts.effectual < counts.weight_sparse);
        assert!((counts.weight_speedup() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn activation_sparsity_reduces_effectual_macs() {
        let set = PatternSet::full(9, 4);
        let shape = Conv2dShape::new(1, 1, 3, 1, 1);
        let w = random_pruned(1, 1, &set, 13);
        let mut x = Tensor::ones(&[1, 1, 8, 8]);
        // Zero half the activations.
        for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
            if i % 2 == 0 {
                *v = 0.0;
            }
        }
        let sparse = SparseConv::from_dense(&w, shape, &set).expect("encode");
        let (_, counts) = sparse.forward_counting(&x);
        assert!(counts.effectual < counts.weight_sparse);
        assert!(counts.full_speedup() > counts.weight_speedup());
    }

    #[test]
    fn zero_input_yields_zero_output_and_no_effectual_macs() {
        let set = PatternSet::full(9, 2);
        let shape = Conv2dShape::new(2, 2, 3, 1, 1);
        let w = random_pruned(2, 2, &set, 17);
        let x = Tensor::zeros(&[1, 2, 5, 5]);
        let sparse = SparseConv::from_dense(&w, shape, &set).expect("encode");
        let (y, counts) = sparse.forward_counting(&x);
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(counts.effectual, 0);
    }
}
