//! KP-based pattern distillation (Algorithm 1 of the paper).
//!
//! Pattern distillation selects, per layer, the `V_l` patterns from the
//! full candidate set `F_n` that most kernels project onto — the greedy
//! solution of the multiple-knapsack problem with unit capacities
//! (MKP-1) the paper formulates in Equation 1: count the nearest pattern
//! of every kernel, then keep the top-`V_l` by frequency.

use crate::pattern::{Pattern, PatternSet};
use crate::project::project_kernel;
use pcnn_tensor::Tensor;

/// Frequency histogram of nearest patterns over a layer's kernels —
/// the data behind Figure 2 of the paper ("dominant" vs "trivial"
/// patterns in CONV4 of VGG-16).
#[derive(Debug, Clone)]
pub struct PatternHistogram {
    /// `(pattern, count)` pairs sorted by descending count (ties by
    /// ascending mask).
    entries: Vec<(Pattern, u64)>,
    /// Number of kernels counted.
    total: u64,
}

impl PatternHistogram {
    /// Counts the nearest pattern in `F_n` for every `area`-length kernel
    /// of `weight` (an OIHW tensor).
    ///
    /// # Panics
    ///
    /// Panics if the tensor's kernel area doesn't match `n`'s range.
    pub fn from_weight(weight: &Tensor, n: usize) -> Self {
        let dims = weight.shape();
        assert_eq!(dims.len(), 4, "weight must be OIHW");
        let area = dims[2] * dims[3];
        let mut counts: std::collections::HashMap<Pattern, u64> = std::collections::HashMap::new();
        for kernel in weight.as_slice().chunks(area) {
            let p = project_kernel(kernel, n);
            *counts.entry(p).or_insert(0) += 1;
        }
        let total = weight.as_slice().len() as u64 / area as u64;
        let mut entries: Vec<(Pattern, u64)> = counts.into_iter().collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.mask().cmp(&b.0.mask())));
        PatternHistogram { entries, total }
    }

    /// The `(pattern, count)` entries, most frequent first.
    pub fn entries(&self) -> &[(Pattern, u64)] {
        &self.entries
    }

    /// Number of kernels counted.
    pub fn total_kernels(&self) -> u64 {
        self.total
    }

    /// Number of *distinct* patterns that appeared at least once. The
    /// paper observes this is far below `|F_n|` ("there are even some
    /// redundant patterns when we apply PCNN").
    pub fn distinct_patterns(&self) -> usize {
        self.entries.len()
    }

    /// Fraction of kernels covered by the `k` most frequent patterns.
    pub fn coverage(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let covered: u64 = self.entries.iter().take(k).map(|(_, c)| c).sum();
        covered as f64 / self.total as f64
    }

    /// Shannon entropy of the pattern distribution in bits — the lower
    /// bound an entropy coder could reach for the SPM index stream,
    /// against which the fixed `⌈log2 |P|⌉`-bit code can be judged.
    pub fn entropy_bits(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let total = self.total as f64;
        -self
            .entries
            .iter()
            .map(|(_, c)| {
                let p = *c as f64 / total;
                p * p.log2()
            })
            .sum::<f64>()
    }

    /// The top-`k` patterns as a [`PatternSet`] (the distilled `P_l`).
    ///
    /// When fewer than `k` distinct patterns were observed, the set is
    /// padded with unobserved patterns from `F_n` so downstream
    /// bit-width accounting still reflects the requested `V_l`... unless
    /// `pad` is false, in which case only observed patterns are kept.
    pub fn top_k(&self, k: usize, area: usize, n: usize, pad: bool) -> PatternSet {
        let mut pats: Vec<Pattern> = self.entries.iter().take(k).map(|(p, _)| *p).collect();
        if pad && pats.len() < k {
            for candidate in Pattern::enumerate(area, n) {
                if pats.len() >= k {
                    break;
                }
                if !pats.contains(&candidate) {
                    pats.push(candidate);
                }
            }
        }
        PatternSet::from_patterns(pats)
    }
}

/// Algorithm 1 for one layer: distills the top-`vl` patterns of `weight`
/// (OIHW) with `n` non-zeros per kernel.
///
/// # Example
///
/// ```
/// use pcnn_core::distill::distill_layer;
/// use pcnn_tensor::init::kaiming_normal;
///
/// let w = kaiming_normal(&[8, 4, 3, 3], 36, 7);
/// let set = distill_layer(&w, 4, 16);
/// assert_eq!(set.len(), 16);
/// assert!(set.iter().all(|p| p.weight() == 4));
/// ```
pub fn distill_layer(weight: &Tensor, n: usize, vl: usize) -> PatternSet {
    let dims = weight.shape();
    let area = dims[2] * dims[3];
    let hist = PatternHistogram::from_weight(weight, n);
    hist.top_k(vl, area, n, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnn_tensor::init::kaiming_normal;

    #[test]
    fn histogram_counts_sum_to_kernel_count() {
        let w = kaiming_normal(&[16, 8, 3, 3], 72, 3);
        let hist = PatternHistogram::from_weight(&w, 4);
        let sum: u64 = hist.entries().iter().map(|(_, c)| c).sum();
        assert_eq!(sum, 128);
        assert_eq!(hist.total_kernels(), 128);
    }

    #[test]
    fn histogram_is_sorted_descending() {
        let w = kaiming_normal(&[32, 16, 3, 3], 144, 5);
        let hist = PatternHistogram::from_weight(&w, 4);
        for pair in hist.entries().windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn coverage_is_monotone_and_reaches_one() {
        let w = kaiming_normal(&[16, 16, 3, 3], 144, 7);
        let hist = PatternHistogram::from_weight(&w, 2);
        let mut prev = 0.0;
        for k in 1..=hist.distinct_patterns() {
            let c = hist.coverage(k);
            assert!(c >= prev);
            prev = c;
        }
        assert!((hist.coverage(hist.distinct_patterns()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dominant_pattern_wins() {
        // Craft a layer where every kernel matches the same pattern.
        let mut w = Tensor::zeros(&[4, 4, 3, 3]);
        for kernel in w.as_mut_slice().chunks_mut(9) {
            kernel[0] = 1.0;
            kernel[8] = -2.0;
        }
        let hist = PatternHistogram::from_weight(&w, 2);
        assert_eq!(hist.distinct_patterns(), 1);
        assert_eq!(hist.entries()[0].0.positions(), vec![0, 8]);
        assert_eq!(hist.entries()[0].1, 16);
    }

    #[test]
    fn distill_pads_to_requested_size() {
        // A single-kernel layer observes one pattern; requesting 8 pads.
        let mut w = Tensor::zeros(&[1, 1, 3, 3]);
        w.as_mut_slice()[3] = 1.0;
        let set = distill_layer(&w, 1, 8);
        assert_eq!(set.len(), 8);
        // The observed pattern gets SPM code 0 (most frequent first).
        assert_eq!(set.get(0).positions(), vec![3]);
    }

    #[test]
    fn distill_respects_vl_below_observed() {
        let w = kaiming_normal(&[32, 32, 3, 3], 288, 11);
        let set = distill_layer(&w, 4, 4);
        assert_eq!(set.len(), 4);
        assert_eq!(set.bits_per_code(), 2);
    }

    #[test]
    fn entropy_bounded_by_log_distinct() {
        let w = kaiming_normal(&[32, 16, 3, 3], 144, 3);
        let hist = PatternHistogram::from_weight(&w, 4);
        let h = hist.entropy_bits();
        assert!(h > 0.0);
        assert!(h <= (hist.distinct_patterns() as f64).log2() + 1e-9);
        // A single-pattern layer has zero entropy.
        let mut w1 = Tensor::zeros(&[4, 4, 3, 3]);
        for kernel in w1.as_mut_slice().chunks_mut(9) {
            kernel[0] = 1.0;
        }
        assert_eq!(PatternHistogram::from_weight(&w1, 1).entropy_bits(), 0.0);
    }

    #[test]
    fn distilled_sets_order_by_frequency() {
        let w = kaiming_normal(&[64, 32, 3, 3], 288, 13);
        let hist = PatternHistogram::from_weight(&w, 4);
        let set = hist.top_k(16, 9, 4, true);
        // The first pattern of the set is the most frequent.
        assert_eq!(set.get(0), hist.entries()[0].0);
    }

    use pcnn_tensor::Tensor;
}
