//! PCNN core: pattern-based fine-grained regular pruning.
//!
//! This crate implements the primary contribution of *"PCNN:
//! Pattern-based Fine-Grained Regular Pruning Towards Optimizing CNN
//! Accelerators"* (DAC 2020):
//!
//! * [`pattern`] — sparsity patterns over `k²` kernel positions and
//!   ordered [`pattern::PatternSet`]s (the SPM mapping tables);
//! * [`spm`] — the Sparsity Pattern Mask storage format: one small code
//!   per kernel plus an equal-length non-zero sequence;
//! * [`project`] — the projection operator `Π` that maps a kernel to its
//!   nearest pattern (keeping top-`n` absolute values);
//! * [`distill`] — KP-based pattern distillation (Algorithm 1): keep the
//!   top-`V_l` most frequently matched patterns per layer;
//! * [`plan`] — per-layer sparsity plans (`n_l`, `V_l`), uniform or
//!   "various" as in the paper's last table rows;
//! * [`pruner`] — applying a plan to a trainable `pcnn-nn` model
//!   (mask building + hard pruning);
//! * [`admm`] — ADMM pattern-constrained fine-tuning;
//! * [`compress`] — storage/compression accounting under SPM and CSC
//!   (EIE-style) formats, and FLOPs accounting;
//! * [`csc`] — a working EIE-style run-length CSC codec (the irregular
//!   baseline's actual storage format);
//! * [`sensitivity`] — per-layer sensitivity scans and automatic
//!   "various-n" plan search (extension of the paper's hand-tuned rows);
//! * [`baselines`] — irregular, kernel-level, filter-level and
//!   channel-level pruning comparators;
//! * [`fuse`] — combining PCNN with coarse-grained pruning (the
//!   orthogonality experiments);
//! * [`quant`] — 8-bit symmetric quantisation used by the accelerator;
//! * [`sparse`] — software execution of SPM-encoded convolutions with
//!   effectual-MAC counting.
//!
//! # Example: encode a kernel as pattern + non-zero sequence
//!
//! ```
//! use pcnn_core::project::project_kernel;
//!
//! // Figure 1 of the paper: a kernel with 6 non-zeros.
//! let kernel = [0.0, 2.09, 1.45, 0.0, 0.0, 1.15, -0.89, 2.12, -0.58];
//! let pattern = project_kernel(&kernel, 6);
//! assert_eq!(pattern.weight(), 6);
//! assert!(!pattern.contains(0) && pattern.contains(1));
//! ```

#![forbid(unsafe_code)]

pub mod admm;
pub mod baselines;
pub mod compress;
pub mod csc;
pub mod distill;
pub mod export;
pub mod fuse;
pub mod pattern;
pub mod plan;
pub mod project;
pub mod pruner;
pub mod quant;
pub mod sensitivity;
pub mod sparse;
pub mod spm;

pub use pattern::{Pattern, PatternSet};
pub use plan::PrunePlan;
