//! Symmetric linear quantisation.
//!
//! The accelerator stores weights "with 8-bit quantization for common
//! cases" (paper §IV-E); this module provides the per-layer symmetric
//! quantiser used when building accelerator workloads, plus error
//! metrics.

/// Parameters of a symmetric uniform quantiser.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Real value represented by one integer step.
    pub scale: f32,
    /// Bit width (2..=8).
    pub bits: u32,
}

impl QuantParams {
    /// Largest representable integer magnitude (`2^(bits-1) − 1`).
    pub fn q_max(&self) -> i32 {
        (1 << (self.bits - 1)) - 1
    }

    /// The parameters [`quantize_symmetric`] would derive for data whose
    /// maximum absolute value is `max_abs` — exposed so runtimes that
    /// fuse quantisation into another pass (e.g. activation quantisation
    /// during plane padding) produce bit-identical codes.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=8`.
    pub fn for_max_abs(max_abs: f32, bits: u32) -> Self {
        assert!((2..=8).contains(&bits), "bits must be in 2..=8");
        let q_max = ((1 << (bits - 1)) - 1) as f32;
        let scale = if max_abs == 0.0 { 1.0 } else { max_abs / q_max };
        QuantParams { scale, bits }
    }
}

/// Quantises `data` symmetrically to `bits` bits.
///
/// The scale maps the maximum absolute value to the top code, so zero is
/// exactly representable (crucial: pruned weights must stay zero).
///
/// # Panics
///
/// Panics if `bits` is outside `2..=8`.
pub fn quantize_symmetric(data: &[f32], bits: u32) -> (Vec<i8>, QuantParams) {
    let max_abs = data.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    let params = QuantParams::for_max_abs(max_abs, bits);
    let q_max = params.q_max() as f32;
    // Multiply by the reciprocal instead of dividing: ~10× cheaper per
    // element and the formula every fused quantiser in the workspace
    // reproduces bit-identically (`pcnn_tensor::direct::
    // pad_quant_plane_overwrite`). The reciprocal's rounding can shift
    // a code only when `v/scale` sits within ~1 ulp of a .5 boundary,
    // comfortably inside the scale/2 round-trip bound.
    let inv = 1.0 / params.scale;
    let q = data
        .iter()
        .map(|&v| {
            let r = (v * inv).round();
            r.clamp(-q_max, q_max) as i8
        })
        .collect();
    (q, params)
}

/// Reconstructs real values from quantised codes.
pub fn dequantize(codes: &[i8], params: QuantParams) -> Vec<f32> {
    codes.iter().map(|&c| c as f32 * params.scale).collect()
}

/// Root-mean-square quantisation error of round-tripping `data`.
pub fn quant_rmse(data: &[f32], bits: u32) -> f32 {
    if data.is_empty() {
        return 0.0;
    }
    let (q, p) = quantize_symmetric(data, bits);
    let back = dequantize(&q, p);
    let mse: f32 = data
        .iter()
        .zip(&back)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f32>()
        / data.len() as f32;
    mse.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    #[test]
    fn zero_is_exact() {
        let data = [0.0f32, 0.5, -0.5, 0.0];
        let (q, p) = quantize_symmetric(&data, 8);
        assert_eq!(q[0], 0);
        assert_eq!(q[3], 0);
        let back = dequantize(&q, p);
        assert_eq!(back[0], 0.0);
    }

    #[test]
    fn max_value_hits_top_code() {
        let data = [1.0f32, -1.0, 0.25];
        let (q, p) = quantize_symmetric(&data, 8);
        assert_eq!(q[0], 127);
        assert_eq!(q[1], -127);
        assert_eq!(p.q_max(), 127);
    }

    #[test]
    fn roundtrip_error_bounded_by_half_step() {
        let mut rng = SmallRng::seed_from_u64(3);
        let data: Vec<f32> = (0..1000).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let (q, p) = quantize_symmetric(&data, 8);
        let back = dequantize(&q, p);
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() <= p.scale * 0.5 + 1e-6);
        }
    }

    #[test]
    fn more_bits_less_error() {
        let mut rng = SmallRng::seed_from_u64(5);
        let data: Vec<f32> = (0..500).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let e4 = quant_rmse(&data, 4);
        let e8 = quant_rmse(&data, 8);
        assert!(e8 < e4 / 4.0, "8-bit {e8} vs 4-bit {e4}");
    }

    #[test]
    fn all_zero_input() {
        let (q, p) = quantize_symmetric(&[0.0; 16], 8);
        assert!(q.iter().all(|&c| c == 0));
        assert_eq!(p.scale, 1.0);
        assert_eq!(quant_rmse(&[], 8), 0.0);
    }
}
