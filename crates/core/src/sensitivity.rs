//! Per-layer sensitivity analysis and automatic "various-`n`" search.
//!
//! The paper's best rows (Tables I/II footnote a) use hand-chosen
//! per-layer sparsities ("2-1-1-…-1"). This module automates the choice:
//! measure each layer's accuracy sensitivity to pruning, then greedily
//! assign the smallest `n` to the least sensitive layers under a FLOPs
//! budget — the natural extension of the paper's framework.

use crate::plan::{LayerPlan, PrunePlan};
use crate::pruner::prune_model;
use pcnn_nn::data::Dataset;
use pcnn_nn::train::evaluate;
use pcnn_nn::Model;

/// Sensitivity of one layer: accuracy after pruning *only that layer* to
/// the probe sparsity.
#[derive(Debug, Clone)]
pub struct LayerSensitivity {
    /// Layer name.
    pub name: String,
    /// Layer index among prunable convolutions.
    pub index: usize,
    /// Accuracy with only this layer pruned to the probe `n`.
    pub pruned_acc: f32,
    /// Accuracy drop vs the unpruned model (positive = hurts).
    pub drop: f32,
    /// The layer's weight count (for budget accounting).
    pub weights: u64,
}

/// Probes each prunable layer in isolation: prune it to `probe_n`
/// (others untouched), evaluate, restore. No fine-tuning — this measures
/// raw sensitivity, as sensitivity scans in the pruning literature do.
pub fn scan_sensitivity(
    model: &Model,
    test_set: &Dataset,
    probe_n: usize,
    max_patterns: usize,
) -> Vec<LayerSensitivity> {
    let n_layers = model.prunable_convs().len();
    let mut base_model = model.clone();
    let base_acc = evaluate(&mut base_model, test_set, 32);

    (0..n_layers)
        .map(|li| {
            let mut probe = model.clone();
            // Plan: probe layer gets probe_n, everything else stays dense
            // (n = k², full pattern set is the single all-ones pattern).
            let plans: Vec<LayerPlan> = (0..n_layers)
                .map(|i| {
                    if i == li {
                        LayerPlan {
                            n: probe_n,
                            max_patterns,
                        }
                    } else {
                        let area = probe.prunable_convs()[i].shape().kernel_area();
                        LayerPlan {
                            n: area,
                            max_patterns: 1,
                        }
                    }
                })
                .collect();
            let _ = prune_model(&mut probe, &PrunePlan::from_layers(plans));
            let acc = evaluate(&mut probe, test_set, 32);
            let conv = &model.prunable_convs()[li];
            LayerSensitivity {
                name: conv.name.clone(),
                index: li,
                pruned_acc: acc,
                drop: base_acc - acc,
                weights: conv.weight().len() as u64,
            }
        })
        .collect()
}

/// Greedy various-`n` search: starting from every layer at `n_high`,
/// repeatedly lowers the *least sensitive* remaining layer to `n_low`
/// until the plan's FLOPs-weighted density reaches `target_density`
/// (e.g. `1.2/9` to approximate the paper's 2-1-…-1 schedule).
///
/// Returns the plan plus the order in which layers were lowered.
///
/// # Panics
///
/// Panics if `n_low >= n_high` or the sensitivity list is empty.
pub fn search_various_plan(
    sensitivities: &[LayerSensitivity],
    n_high: usize,
    n_low: usize,
    patterns_for: impl Fn(usize) -> usize,
    target_density: f64,
    area: usize,
) -> (PrunePlan, Vec<usize>) {
    assert!(n_low < n_high, "n_low must be below n_high");
    assert!(!sensitivities.is_empty(), "need at least one layer");
    let mut ns: Vec<usize> = vec![n_high; sensitivities.len()];
    let weights: Vec<u64> = sensitivities.iter().map(|s| s.weights).collect();
    let total_w: u64 = weights.iter().sum();

    let density = |ns: &[usize]| -> f64 {
        ns.iter()
            .zip(&weights)
            .map(|(&n, &w)| (n as f64 / area as f64) * (w as f64 / total_w as f64))
            .sum()
    };

    // Least sensitive first.
    let mut order: Vec<usize> = (0..sensitivities.len()).collect();
    order.sort_by(|&a, &b| {
        sensitivities[a]
            .drop
            .partial_cmp(&sensitivities[b].drop)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut lowered = Vec::new();
    for &li in &order {
        if density(&ns) <= target_density {
            break;
        }
        ns[li] = n_low;
        lowered.push(li);
    }
    (PrunePlan::various(&ns, patterns_for), lowered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnn_nn::data::synthetic_split;
    use pcnn_nn::models::tiny_cnn;
    use pcnn_nn::optim::Sgd;
    use pcnn_nn::train::{train, TrainConfig};

    fn trained() -> (Model, Dataset) {
        let (tr, te) = synthetic_split(4, 160, 60, 8, 8, 0.15, 3);
        let mut m = tiny_cnn(4, 8, 5);
        let mut opt = Sgd::new(0.08, 0.9, 1e-4);
        let cfg = TrainConfig {
            epochs: 8,
            batch_size: 16,
            seed: 1,
            ..Default::default()
        };
        let _ = train(&mut m, &tr, &te, &mut opt, &cfg);
        (m, te)
    }

    #[test]
    fn scan_covers_all_layers_and_restores_nothing() {
        let (m, te) = trained();
        let sens = scan_sensitivity(&m, &te, 1, 8);
        assert_eq!(sens.len(), 2);
        // The original model is untouched (scan works on clones).
        for conv in m.prunable_convs() {
            assert_eq!(conv.mask(), None);
        }
        for s in &sens {
            assert!(s.pruned_acc >= 0.0 && s.pruned_acc <= 1.0);
            assert!(s.weights > 0);
        }
    }

    #[test]
    fn search_hits_target_density() {
        let sens = vec![
            LayerSensitivity {
                name: "a".into(),
                index: 0,
                pruned_acc: 0.9,
                drop: 0.01,
                weights: 100,
            },
            LayerSensitivity {
                name: "b".into(),
                index: 1,
                pruned_acc: 0.5,
                drop: 0.40,
                weights: 100,
            },
            LayerSensitivity {
                name: "c".into(),
                index: 2,
                pruned_acc: 0.8,
                drop: 0.10,
                weights: 100,
            },
        ];
        let (plan, lowered) =
            search_various_plan(&sens, 2, 1, |n| if n >= 2 { 32 } else { 8 }, 1.4 / 9.0, 9);
        // Least sensitive layers lowered first: a (0.01), then c (0.10).
        assert_eq!(lowered, vec![0, 2]);
        assert_eq!(plan.layer(0).n, 1);
        assert_eq!(plan.layer(1).n, 2);
        assert_eq!(plan.layer(2).n, 1);
    }

    #[test]
    fn search_noop_when_already_under_budget() {
        let sens = vec![LayerSensitivity {
            name: "a".into(),
            index: 0,
            pruned_acc: 0.9,
            drop: 0.0,
            weights: 10,
        }];
        let (plan, lowered) = search_various_plan(&sens, 2, 1, |_| 8, 0.5, 9);
        assert!(lowered.is_empty());
        assert_eq!(plan.layer(0).n, 2);
    }

    #[test]
    #[should_panic(expected = "n_low must be below")]
    fn search_rejects_inverted_range() {
        let sens = vec![LayerSensitivity {
            name: "a".into(),
            index: 0,
            pruned_acc: 0.9,
            drop: 0.0,
            weights: 1,
        }];
        let _ = search_various_plan(&sens, 1, 2, |_| 8, 0.1, 9);
    }
}
