//! The projection operator `Π` of the PCNN learning framework.
//!
//! `Π^{w}_{P}` matches a kernel `w` to the nearest pattern in a pattern
//! set `P` "by keeping top n absolute values" (paper §II-B). Nearest in
//! the L2 sense is equivalent to retaining maximum energy `Σ w_i²`, which
//! for the full candidate set `F_n` is exactly the top-`n`-|w| mask.

use crate::pattern::{Pattern, PatternSet};

/// The pattern of the top-`n` absolute values of `kernel` — the nearest
/// pattern in the *full* candidate set `F_n`.
///
/// Ties are broken toward lower positions, deterministically.
///
/// # Panics
///
/// Panics if `n > kernel.len()` or `kernel.len() > 16`.
///
/// # Example
///
/// ```
/// use pcnn_core::project::project_kernel;
/// let p = project_kernel(&[0.1, -3.0, 0.2, 2.0, 0.0, 0.0, 0.0, 0.0, 0.0], 2);
/// assert_eq!(p.positions(), vec![1, 3]);
/// ```
pub fn project_kernel(kernel: &[f32], n: usize) -> Pattern {
    assert!(
        n <= kernel.len(),
        "cannot keep {n} of {} weights",
        kernel.len()
    );
    let mut idx: Vec<usize> = (0..kernel.len()).collect();
    // Stable sort by descending |w|; ties keep ascending position order.
    idx.sort_by(|&a, &b| {
        kernel[b]
            .abs()
            .partial_cmp(&kernel[a].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Pattern::from_positions(&idx[..n], kernel.len())
}

/// Projects `kernel` onto the nearest pattern of `set`, returning the
/// pattern's SPM code and zeroing pruned positions in place.
pub fn project_onto_set(kernel: &mut [f32], set: &PatternSet) -> usize {
    let (code, pattern) = set.nearest(kernel);
    pattern.apply(kernel);
    code
}

/// Squared L2 distance between `kernel` and its projection onto
/// `pattern` (the objective summand in the paper's Equation 1).
pub fn projection_distance_sq(kernel: &[f32], pattern: Pattern) -> f32 {
    kernel
        .iter()
        .enumerate()
        .filter(|(i, _)| !pattern.contains(*i))
        .map(|(_, &w)| w * w)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_n_projection_matches_full_set_nearest() {
        let kernel = [0.5, -2.0, 0.1, 1.5, -0.2, 0.0, 3.0, 0.05, -1.0];
        for n in 1..=9 {
            let direct = project_kernel(&kernel, n);
            let full = PatternSet::full(9, n);
            let (_, nearest) = full.nearest(&kernel);
            assert_eq!(direct, nearest, "n = {n}");
        }
    }

    #[test]
    fn projection_is_idempotent() {
        let set = PatternSet::full(9, 3);
        let mut kernel = [0.5, -2.0, 0.1, 1.5, -0.2, 0.0, 3.0, 0.05, -1.0];
        let code1 = project_onto_set(&mut kernel, &set);
        let once = kernel;
        let code2 = project_onto_set(&mut kernel, &set);
        assert_eq!(code1, code2);
        assert_eq!(once, kernel);
    }

    #[test]
    fn distance_plus_energy_equals_norm() {
        let kernel = [1.0f32, -2.0, 3.0, 0.5, 0.0, 1.0, -1.0, 2.0, 0.25];
        let p = project_kernel(&kernel, 4);
        let total: f32 = kernel.iter().map(|w| w * w).sum();
        let kept = p.retained_energy(&kernel);
        let lost = projection_distance_sq(&kernel, p);
        assert!((kept + lost - total).abs() < 1e-5);
    }

    #[test]
    fn n_zero_prunes_everything() {
        let mut kernel = [1.0f32; 9];
        let set = PatternSet::full(9, 0);
        let _ = project_onto_set(&mut kernel, &set);
        assert!(kernel.iter().all(|&w| w == 0.0));
    }

    #[test]
    fn deterministic_on_ties() {
        let kernel = [1.0f32; 9];
        let a = project_kernel(&kernel, 4);
        let b = project_kernel(&kernel, 4);
        assert_eq!(a, b);
        assert_eq!(a.positions(), vec![0, 1, 2, 3]);
    }
}
