//! Compression and FLOPs accounting for pruned networks.
//!
//! Reproduces the arithmetic behind the paper's Tables I–IV: weight-only
//! compression (`k²/n` per pruned layer), weight+index compression under
//! the SPM format (per-kernel `⌈log2 |P_l|⌉`-bit codes plus the per-layer
//! mapping table), the CSC/EIE comparison (4-bit index per non-zero),
//! and FLOPs reduction (1 MAC = 1 FLOP, convolution layers only).

use crate::plan::PrunePlan;
use pcnn_nn::zoo::NetworkShape;

/// Bit-level storage model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageModel {
    /// Bits per stored weight (32 matches the paper's weight+idx column;
    /// 8 matches the accelerator's SRAM sizing).
    pub weight_bits: u32,
    /// Bits per non-zero index in the CSC/EIE baseline (4 in EIE).
    pub csc_index_bits: u32,
    /// Whether the per-layer SPM mapping table is charged to the model.
    pub include_table: bool,
}

impl Default for StorageModel {
    fn default() -> Self {
        StorageModel {
            weight_bits: 32,
            csc_index_bits: 4,
            include_table: true,
        }
    }
}

/// Per-layer compression accounting row.
#[derive(Debug, Clone)]
pub struct LayerCompression {
    /// Layer name.
    pub name: String,
    /// Non-zeros per kernel (`k²` for unpruned layers).
    pub n: usize,
    /// Pattern-set size (`0` for unpruned layers).
    pub patterns: usize,
    /// Dense weight count.
    pub dense_weights: u64,
    /// Weights kept after pruning.
    pub kept_weights: u64,
    /// Dense storage, bits.
    pub dense_bits: u64,
    /// SPM storage: non-zero sequences, bits.
    pub spm_weight_bits: u64,
    /// SPM storage: per-kernel codes, bits.
    pub spm_index_bits: u64,
    /// SPM storage: mapping table, bits.
    pub spm_table_bits: u64,
}

/// Whole-network compression report.
#[derive(Debug, Clone)]
pub struct CompressionReport {
    /// Per-layer rows in network order (including unpruned layers).
    pub layers: Vec<LayerCompression>,
    /// Weight-count compression: dense weights / kept weights
    /// (the paper's "Compression (weight)" column).
    pub weight_only: f64,
    /// Bit compression including SPM indices and tables
    /// (the paper's "Compression (weight+idx)" column).
    pub weight_plus_index: f64,
    /// Total SPM index+table bits (the accelerator's index overhead).
    pub index_bits: u64,
    /// Total stored bits under SPM (weights + indices + tables).
    pub total_bits: u64,
    /// Total dense bits.
    pub dense_bits: u64,
    /// Parameters kept (the paper's "CONV Parameters" column).
    pub params_after: u64,
}

impl CompressionReport {
    /// Index overhead as a fraction of total stored bits.
    pub fn index_overhead(&self) -> f64 {
        self.index_bits as f64 / self.total_bits.max(1) as f64
    }
}

/// Computes PCNN compression of `net` under `plan`.
///
/// The plan's entries map to `net`'s *prunable* layers in order;
/// unprunable layers (1×1 downsample convolutions) are stored dense.
///
/// # Panics
///
/// Panics if the plan's layer count differs from the network's prunable
/// layer count.
pub fn pcnn_compression(
    net: &NetworkShape,
    plan: &PrunePlan,
    storage: &StorageModel,
) -> CompressionReport {
    let prunable: Vec<bool> = net.convs.iter().map(|c| c.prunable).collect();
    let n_prunable = prunable.iter().filter(|&&p| p).count();
    assert_eq!(
        plan.layers().len(),
        n_prunable,
        "plan covers {} layers, net has {} prunable",
        plan.layers().len(),
        n_prunable
    );

    let wb = storage.weight_bits as u64;
    let mut rows = Vec::with_capacity(net.convs.len());
    let mut plan_it = plan.layers().iter();
    for conv in &net.convs {
        let dense_weights = conv.weights();
        let dense_bits = dense_weights * wb;
        if conv.prunable {
            let lp = plan_it.next().expect("plan exhausted");
            let area = conv.kernel_area();
            assert!(lp.n <= area, "n = {} exceeds kernel area {area}", lp.n);
            let patterns = lp.effective_patterns(area);
            let kept = conv.kernels() * lp.n as u64;
            let bits_per_code = if patterns <= 1 {
                1
            } else {
                (usize::BITS - (patterns - 1).leading_zeros()) as u64
            };
            let table_bits = if storage.include_table {
                (patterns * area) as u64
            } else {
                0
            };
            rows.push(LayerCompression {
                name: conv.name.clone(),
                n: lp.n,
                patterns,
                dense_weights,
                kept_weights: kept,
                dense_bits,
                spm_weight_bits: kept * wb,
                spm_index_bits: conv.kernels() * bits_per_code,
                spm_table_bits: table_bits,
            });
        } else {
            rows.push(LayerCompression {
                name: conv.name.clone(),
                n: conv.kernel_area(),
                patterns: 0,
                dense_weights,
                kept_weights: dense_weights,
                dense_bits,
                spm_weight_bits: dense_bits,
                spm_index_bits: 0,
                spm_table_bits: 0,
            });
        }
    }

    let dense_w: u64 = rows.iter().map(|r| r.dense_weights).sum();
    let kept_w: u64 = rows.iter().map(|r| r.kept_weights).sum();
    let dense_bits: u64 = rows.iter().map(|r| r.dense_bits).sum();
    let index_bits: u64 = rows
        .iter()
        .map(|r| r.spm_index_bits + r.spm_table_bits)
        .sum();
    let total_bits: u64 = rows.iter().map(|r| r.spm_weight_bits).sum::<u64>() + index_bits;

    CompressionReport {
        weight_only: dense_w as f64 / kept_w.max(1) as f64,
        weight_plus_index: dense_bits as f64 / total_bits.max(1) as f64,
        index_bits,
        total_bits,
        dense_bits,
        params_after: kept_w,
        layers: rows,
    }
}

/// Compression of irregular (magnitude) pruning at the *same* per-layer
/// densities as `plan`, stored in CSC/EIE format: every non-zero carries
/// a `csc_index_bits` relative index.
///
/// Returns `(weight_plus_index_ratio, index_bits)`.
pub fn csc_compression(net: &NetworkShape, plan: &PrunePlan, storage: &StorageModel) -> (f64, u64) {
    let n_prunable = net.convs.iter().filter(|c| c.prunable).count();
    assert_eq!(plan.layers().len(), n_prunable, "plan/net mismatch");
    let wb = storage.weight_bits as u64;
    let ib = storage.csc_index_bits as u64;
    let mut dense_bits = 0u64;
    let mut stored_bits = 0u64;
    let mut index_bits = 0u64;
    let mut plan_it = plan.layers().iter();
    for conv in &net.convs {
        dense_bits += conv.weights() * wb;
        if conv.prunable {
            let lp = plan_it.next().expect("plan exhausted");
            let kept = conv.kernels() * lp.n as u64;
            stored_bits += kept * wb;
            index_bits += kept * ib;
        } else {
            stored_bits += conv.weights() * wb;
        }
    }
    stored_bits += index_bits;
    (dense_bits as f64 / stored_bits.max(1) as f64, index_bits)
}

/// FLOPs accounting for a PCNN-pruned network.
#[derive(Debug, Clone, Copy)]
pub struct FlopsReport {
    /// Dense convolution MACs per image.
    pub baseline: u64,
    /// MACs remaining after pruning.
    pub pruned: u64,
    /// Fraction of FLOPs removed (the paper's "FLOPs Pruned" column).
    pub reduction: f64,
}

/// Computes the FLOPs report of `net` under `plan` (prunable layers keep
/// `n/k²` of their MACs; unprunable layers are unchanged).
///
/// # Panics
///
/// Panics on plan/net layer-count mismatch.
pub fn flops_after_pcnn(net: &NetworkShape, plan: &PrunePlan) -> FlopsReport {
    let n_prunable = net.convs.iter().filter(|c| c.prunable).count();
    assert_eq!(plan.layers().len(), n_prunable, "plan/net mismatch");
    let baseline = net.conv_macs();
    let mut pruned = 0u64;
    let mut plan_it = plan.layers().iter();
    for conv in &net.convs {
        let macs = conv.macs();
        if conv.prunable {
            let lp = plan_it.next().expect("plan exhausted");
            pruned += macs * lp.n as u64 / conv.kernel_area() as u64;
        } else {
            pruned += macs;
        }
    }
    FlopsReport {
        baseline,
        pruned,
        reduction: 1.0 - pruned as f64 / baseline.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnn_nn::zoo::{resnet18_cifar, vgg16_cifar};

    fn storage() -> StorageModel {
        StorageModel::default()
    }

    #[test]
    fn table1_weight_compression_exact() {
        // Paper Table I "Compression (weight)": 2.3 / 3.0 / 4.5 / 9.0 for
        // n = 4 / 3 / 2 / 1 (k²/n exactly, since all layers are 3×3).
        let net = vgg16_cifar();
        for (n, expect) in [(4usize, 2.25), (3, 3.0), (2, 4.5), (1, 9.0)] {
            let plan = PrunePlan::uniform(13, n, if n == 1 { 8 } else { 32 });
            let rep = pcnn_compression(&net, &plan, &storage());
            assert!(
                (rep.weight_only - expect).abs() < 1e-9,
                "n={n}: {}",
                rep.weight_only
            );
        }
    }

    #[test]
    fn table1_params_after_exact() {
        // Paper Table I "CONV Parameters": 0.65/0.49/0.33/0.16 ×10⁷.
        let net = vgg16_cifar();
        for (n, expect) in [
            (4usize, 6_537_984u64),
            (3, 4_903_488),
            (2, 3_268_992),
            (1, 1_634_496),
        ] {
            let plan = PrunePlan::uniform(13, n, 32);
            let rep = pcnn_compression(&net, &plan, &storage());
            assert_eq!(rep.params_after, expect, "n={n}");
        }
    }

    #[test]
    fn table1_weight_plus_index_close_to_paper() {
        // Paper: 2.2 / 2.9 / 4.1 / 8.4. Our fp32+code+table model gives
        // 2.16 / 2.85 / 4.16 / 8.2 — same shape, small offsets.
        let net = vgg16_cifar();
        let expect = [
            (4usize, 32usize, 2.2f64),
            (3, 32, 2.9),
            (2, 32, 4.1),
            (1, 8, 8.4),
        ];
        for (n, pats, paper) in expect {
            let plan = PrunePlan::uniform(13, n, pats);
            let rep = pcnn_compression(&net, &plan, &storage());
            assert!(
                (rep.weight_plus_index - paper).abs() / paper < 0.04,
                "n={n}: ours {} vs paper {paper}",
                rep.weight_plus_index
            );
            // Index always costs something: weight+idx < weight-only bits ratio.
            assert!(rep.weight_plus_index < rep.weight_only);
        }
    }

    #[test]
    fn csc_matches_paper_example() {
        // Paper §IV-B: "for irregular pruning, taking VGG-16 with n = 4 as
        // an example, the actual compression rate is 2.0×".
        let net = vgg16_cifar();
        let plan = PrunePlan::uniform(13, 4, 32);
        let (ratio, csc_idx_bits) = csc_compression(&net, &plan, &storage());
        assert!((ratio - 2.0).abs() < 1e-9, "{ratio}");
        // "...three times as low as ours": CSC index bits ≈ 3× SPM's.
        let rep = pcnn_compression(&net, &plan, &storage());
        let factor = csc_idx_bits as f64 / rep.index_bits as f64;
        assert!(factor > 2.5 && factor < 3.5, "index-bits factor {factor}");
    }

    #[test]
    fn table1_flops_exact() {
        // Paper Table I FLOPs: 1.39 / 1.04 / (0.70) / 0.35 ×10⁸.
        // (The paper prints 0.30 for n=2 but its own "77.8% pruned" column
        // implies 0.70 — see EXPERIMENTS.md.)
        let net = vgg16_cifar();
        for (n, expect) in [
            (4usize, 139_198_464u64),
            (3, 104_398_848),
            (2, 69_599_232),
            (1, 34_799_616),
        ] {
            let plan = PrunePlan::uniform(13, n, 32);
            let rep = flops_after_pcnn(&net, &plan);
            assert_eq!(rep.pruned, expect, "n={n}");
        }
        let plan = PrunePlan::uniform(13, 1, 8);
        let rep = flops_after_pcnn(&net, &plan);
        assert!((rep.reduction - 8.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn table2_resnet_matches_paper() {
        // Paper Table II, n = 4: FLOPs 2.50×10⁸, params 0.51×10⁷,
        // weight compression 2.2×.
        let net = resnet18_cifar();
        let plan = PrunePlan::uniform(17, 4, 32);
        let flops = flops_after_pcnn(&net, &plan);
        assert_eq!(flops.pruned, 250_347_520);
        let rep = pcnn_compression(&net, &plan, &storage());
        assert_eq!(rep.params_after, 5_055_232);
        assert!((rep.weight_only - 2.207).abs() < 0.01);
        // n = 1: params 0.14×10⁷, compression ≈ 8.0 (paper rounds 7.9).
        let plan1 = PrunePlan::uniform(17, 1, 8);
        let rep1 = pcnn_compression(&net, &plan1, &storage());
        assert_eq!(rep1.params_after, 1_392_832);
        assert!((rep1.weight_only - 8.01).abs() < 0.02);
    }

    #[test]
    fn various_settings_match_footnotes() {
        // VGG various: ~9.0× weight compression, same params as n=1.
        let net = vgg16_cifar();
        let rep = pcnn_compression(&net, &PrunePlan::vgg16_various(), &storage());
        assert!((rep.weight_only - 9.0).abs() < 0.01, "{}", rep.weight_only);
        // ResNet various: params ≈ 0.14×10⁷, compression ≈ 7.9–8.0×.
        let net = resnet18_cifar();
        let rep = pcnn_compression(&net, &PrunePlan::resnet18_various(), &storage());
        assert_eq!(rep.params_after, 1_401_216);
        assert!(
            rep.weight_only > 7.9 && rep.weight_only < 8.0,
            "{}",
            rep.weight_only
        );
        let flops = flops_after_pcnn(&net, &PrunePlan::resnet18_various());
        assert!(
            (flops.reduction - 0.845).abs() < 0.02,
            "{}",
            flops.reduction
        );
    }

    #[test]
    fn fewer_patterns_increase_compression() {
        // Paper Table IV: compression grows monotonically as |P| shrinks.
        let net = vgg16_cifar();
        let mut prev = 0.0;
        for pats in [126usize, 32, 16, 8, 4] {
            let plan = PrunePlan::uniform(13, 4, pats);
            let rep = pcnn_compression(&net, &plan, &storage());
            assert!(rep.weight_plus_index > prev, "|P|={pats}");
            prev = rep.weight_plus_index;
        }
        // And the n=4 full-pattern value ≈ paper's 2.14 baseline.
        let rep = pcnn_compression(&net, &PrunePlan::uniform(13, 4, 126), &storage());
        assert!(
            (rep.weight_plus_index - 2.14).abs() < 0.02,
            "{}",
            rep.weight_plus_index
        );
    }

    #[test]
    fn eight_bit_storage_model() {
        // With 8-bit weights the relative index overhead quadruples.
        let net = vgg16_cifar();
        let plan = PrunePlan::uniform(13, 4, 16);
        let s32 = pcnn_compression(
            &net,
            &plan,
            &StorageModel {
                weight_bits: 32,
                ..Default::default()
            },
        );
        let s8 = pcnn_compression(
            &net,
            &plan,
            &StorageModel {
                weight_bits: 8,
                ..Default::default()
            },
        );
        assert!(s8.index_overhead() > s32.index_overhead() * 3.0);
        assert_eq!(s8.params_after, s32.params_after);
    }

    #[test]
    fn unprunable_layers_stay_dense() {
        let net = resnet18_cifar();
        let plan = PrunePlan::uniform(17, 1, 8);
        let rep = pcnn_compression(&net, &plan, &storage());
        for row in rep.layers.iter().filter(|r| r.name.ends_with(".ds")) {
            assert_eq!(row.kept_weights, row.dense_weights);
            assert_eq!(row.spm_index_bits, 0);
        }
    }
}
