//! Binary deployment format for SPM-encoded networks.
//!
//! A real PCNN deployment ships three streams per layer (Figure 3a):
//! the SPM mapping table (→ Pattern SRAM), the per-kernel code stream,
//! and the packed non-zero weights (→ Weight SRAM). This module defines
//! a self-contained little-endian container for all three plus the
//! layer geometry, with strict validation on load — the artifact a host
//! driver would DMA to the accelerator.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic  "PCNN"            4 bytes
//! version u16              (currently 1)
//! layers  u16
//! per layer:
//!   out_c, in_c, area      u16 × 3
//!   n (nonzeros/kernel)    u16
//!   patterns               u16
//!   pattern masks          u16 × patterns
//!   codes                  u16 × (out_c·in_c)
//!   weights                f32 × (out_c·in_c·n)
//! ```

use crate::pattern::{Pattern, PatternSet};
use crate::spm::SpmLayer;
use pcnn_tensor::Tensor;
use std::error::Error;
use std::fmt;

const MAGIC: &[u8; 4] = b"PCNN";
const VERSION: u16 = 1;

/// Errors produced when parsing a PCNN container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsePcnnError {
    /// The magic bytes or version did not match.
    BadHeader,
    /// The buffer ended before the declared content.
    Truncated,
    /// A declared field was internally inconsistent (e.g. a code out of
    /// table range, a non-square kernel area, a zero dimension).
    Corrupt(&'static str),
}

impl fmt::Display for ParsePcnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePcnnError::BadHeader => write!(f, "not a PCNN v{VERSION} container"),
            ParsePcnnError::Truncated => write!(f, "container truncated"),
            ParsePcnnError::Corrupt(what) => write!(f, "corrupt container: {what}"),
        }
    }
}

impl Error for ParsePcnnError {}

/// Serialises SPM layers into the deployment container.
pub fn export_spm_layers(layers: &[SpmLayer]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(layers.len() as u16).to_le_bytes());
    for layer in layers {
        let set = layer.pattern_set();
        out.extend_from_slice(&(layer.out_channels() as u16).to_le_bytes());
        out.extend_from_slice(&(layer.in_channels() as u16).to_le_bytes());
        out.extend_from_slice(&(set.area() as u16).to_le_bytes());
        out.extend_from_slice(&(layer.nonzeros_per_kernel() as u16).to_le_bytes());
        out.extend_from_slice(&(set.len() as u16).to_le_bytes());
        for p in set.iter() {
            out.extend_from_slice(&p.mask().to_le_bytes());
        }
        for &code in layer.codes() {
            out.extend_from_slice(&code.to_le_bytes());
        }
        for ki in 0..layer.kernel_count() {
            for &w in layer.kernel_nonzeros(ki) {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
    }
    out
}

/// A cursor with bounds-checked little-endian reads.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ParsePcnnError> {
        if self.pos + n > self.buf.len() {
            return Err(ParsePcnnError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, ParsePcnnError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn f32(&mut self) -> Result<f32, ParsePcnnError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

/// Parses a deployment container back into SPM layers.
///
/// # Errors
///
/// Returns [`ParsePcnnError`] on any malformed input — the parser never
/// panics on untrusted bytes.
pub fn import_spm_layers(bytes: &[u8]) -> Result<Vec<SpmLayer>, ParsePcnnError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC || r.u16()? != VERSION {
        return Err(ParsePcnnError::BadHeader);
    }
    let layer_count = r.u16()? as usize;
    let mut layers = Vec::with_capacity(layer_count);
    for _ in 0..layer_count {
        let out_c = r.u16()? as usize;
        let in_c = r.u16()? as usize;
        let area = r.u16()? as usize;
        let n = r.u16()? as usize;
        let patterns = r.u16()? as usize;
        if out_c == 0 || in_c == 0 {
            return Err(ParsePcnnError::Corrupt("zero channel dimension"));
        }
        let side = (area as f64).sqrt() as usize;
        if side * side != area || area == 0 || area > 16 {
            return Err(ParsePcnnError::Corrupt(
                "kernel area not a square in 1..=16",
            ));
        }
        if n > area || patterns == 0 {
            return Err(ParsePcnnError::Corrupt("invalid sparsity or empty table"));
        }

        let mut masks = Vec::with_capacity(patterns);
        for _ in 0..patterns {
            let m = r.u16()?;
            if area < 16 && m >= 1 << area {
                return Err(ParsePcnnError::Corrupt("pattern mask out of area range"));
            }
            if m.count_ones() as usize != n {
                return Err(ParsePcnnError::Corrupt("pattern weight mismatch"));
            }
            masks.push(Pattern::new(m, area));
        }
        let mut seen = std::collections::HashSet::new();
        if !masks.iter().all(|p| seen.insert(p.mask())) {
            return Err(ParsePcnnError::Corrupt("duplicate pattern in table"));
        }
        let set = PatternSet::from_patterns(masks);

        let kernels = out_c * in_c;
        let mut codes = Vec::with_capacity(kernels);
        for _ in 0..kernels {
            let c = r.u16()?;
            if c as usize >= set.len() {
                return Err(ParsePcnnError::Corrupt("SPM code out of table range"));
            }
            codes.push(c);
        }
        let mut weights = Vec::with_capacity(kernels * n);
        for _ in 0..kernels * n {
            weights.push(r.f32()?);
        }

        // Rebuild through the dense representation so all of SpmLayer's
        // own invariants re-apply.
        let mut dense = Tensor::zeros(&[out_c, in_c, side, side]);
        for (ki, &code) in codes.iter().enumerate() {
            let pattern = set.get(code as usize);
            for (rank, pos) in pattern.positions().into_iter().enumerate() {
                dense.as_mut_slice()[ki * area + pos] = weights[ki * n + rank];
            }
        }
        let layer = SpmLayer::encode(&dense, &set)
            .map_err(|_| ParsePcnnError::Corrupt("kernels do not fit declared table"))?;
        layers.push(layer);
    }
    if r.pos != bytes.len() {
        return Err(ParsePcnnError::Corrupt("trailing bytes"));
    }
    Ok(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::project::project_onto_set;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn sample_layers() -> Vec<SpmLayer> {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut out = Vec::new();
        for (oc, ic, n) in [(4usize, 3usize, 4usize), (6, 4, 2)] {
            let set = PatternSet::full(9, n);
            let mut w = Tensor::from_vec(
                (0..oc * ic * 9)
                    .map(|_| rng.gen_range(-1.0f32..1.0))
                    .collect(),
                &[oc, ic, 3, 3],
            );
            for kernel in w.as_mut_slice().chunks_mut(9) {
                let _ = project_onto_set(kernel, &set);
            }
            out.push(SpmLayer::encode(&w, &set).expect("encode"));
        }
        out
    }

    #[test]
    fn export_import_roundtrip() {
        let layers = sample_layers();
        let bytes = export_spm_layers(&layers);
        let back = import_spm_layers(&bytes).expect("parse");
        assert_eq!(back.len(), layers.len());
        for (a, b) in layers.iter().zip(&back) {
            assert_eq!(a.codes(), b.codes());
            assert_eq!(a.decode().as_slice(), b.decode().as_slice());
            assert_eq!(a.pattern_set(), b.pattern_set());
        }
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let layers = sample_layers();
        let mut bytes = export_spm_layers(&layers);
        bytes[0] = b'X';
        assert_eq!(
            import_spm_layers(&bytes).unwrap_err(),
            ParsePcnnError::BadHeader
        );
        let mut bytes2 = export_spm_layers(&layers);
        bytes2[4] = 99;
        assert_eq!(
            import_spm_layers(&bytes2).unwrap_err(),
            ParsePcnnError::BadHeader
        );
    }

    #[test]
    fn rejects_truncation_at_every_boundary() {
        let layers = sample_layers();
        let bytes = export_spm_layers(&layers);
        // Chop at a few representative places: header, table, codes, weights.
        for cut in [3usize, 7, 20, bytes.len() / 2, bytes.len() - 1] {
            let err = import_spm_layers(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, ParsePcnnError::Truncated | ParsePcnnError::BadHeader),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn rejects_out_of_range_code() {
        let layers = sample_layers();
        let mut bytes = export_spm_layers(&layers);
        // First layer: header(4+2+2) + layer header(10) + table(126*2)
        // puts the first code at a known offset; overwrite with 0xFFFF.
        let code_off = 8 + 10 + 126 * 2;
        bytes[code_off] = 0xFF;
        bytes[code_off + 1] = 0xFF;
        assert_eq!(
            import_spm_layers(&bytes).unwrap_err(),
            ParsePcnnError::Corrupt("SPM code out of table range")
        );
    }

    #[test]
    fn rejects_trailing_garbage() {
        let layers = sample_layers();
        let mut bytes = export_spm_layers(&layers);
        bytes.push(0);
        assert_eq!(
            import_spm_layers(&bytes).unwrap_err(),
            ParsePcnnError::Corrupt("trailing bytes")
        );
    }

    #[test]
    fn error_messages_are_displayable() {
        assert!(ParsePcnnError::BadHeader.to_string().contains("PCNN"));
        assert!(ParsePcnnError::Truncated.to_string().contains("truncated"));
        assert!(ParsePcnnError::Corrupt("x").to_string().contains("x"));
    }
}
