//! ADMM pattern-constrained fine-tuning (paper §IV-A: "an Alternating
//! Direction Method of Multipliers is employed to fine-tune our model").
//!
//! The constraint set for layer `l` is "every kernel matches some pattern
//! in `P_l`". ADMM splits the constrained problem into
//!
//! * a *proximal* training step on the loss plus `ρ/2‖W − Z + U‖²`
//!   (implemented by adding `ρ(W − Z + U)` to the weight gradients), and
//! * a *projection* step `Z ← Π(W + U)` onto the constraint set, with the
//!   scaled dual update `U ← U + W − Z`.
//!
//! After the ADMM epochs, weights sit near the constraint set; a hard
//! prune ([`crate::pruner::prune_model_with_sets`]) followed by masked
//! fine-tuning recovers the final model.

use crate::pattern::PatternSet;
use crate::plan::PrunePlan;
use crate::project::project_onto_set;
use crate::pruner::{distill_pattern_sets, prune_model_with_sets, PruneOutcome};
use pcnn_nn::data::Dataset;
use pcnn_nn::optim::Sgd;
use pcnn_nn::train::{evaluate, train, TrainConfig, TrainStats};
use pcnn_nn::Model;
use pcnn_tensor::ops::cross_entropy;
use pcnn_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::{rngs::SmallRng, SeedableRng};

/// ADMM fine-tuning configuration.
///
/// Each *round* holds `Z` and `U` fixed while `epochs_per_round` training
/// epochs approximately solve the proximal subproblem, then performs the
/// `Z`/`U` updates. Running the inner minimisation to (near) convergence
/// is what keeps the scaled dual well-behaved — with a single epoch per
/// round the dual accumulates stale disagreement and the iteration
/// oscillates.
#[derive(Debug, Clone)]
pub struct AdmmConfig {
    /// Penalty coefficient ρ.
    pub rho: f32,
    /// Number of ADMM rounds (Z/U updates).
    pub rounds: usize,
    /// Training epochs per round (inner proximal steps).
    pub epochs_per_round: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate for the proximal steps.
    pub lr: f32,
    /// SGD momentum (velocity is reset at round boundaries).
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Print per-round diagnostics to stderr.
    pub verbose: bool,
}

impl Default for AdmmConfig {
    fn default() -> Self {
        AdmmConfig {
            rho: 0.5,
            rounds: 4,
            epochs_per_round: 2,
            batch_size: 32,
            lr: 0.01,
            momentum: 0.9,
            weight_decay: 5e-4,
            seed: 7,
            verbose: false,
        }
    }
}

/// Per-round ADMM diagnostics.
#[derive(Debug, Clone, Copy)]
pub struct AdmmEpoch {
    /// Mean task loss.
    pub loss: f32,
    /// Primal residual `‖W − Z‖² / ‖W‖²` summed over layers. Not
    /// monotone: `Z = Π(W + U)` moves as the scaled dual accumulates.
    pub residual: f32,
    /// Pattern compliance `‖W − Π(W)‖² / ‖W‖²`: the distance of the
    /// weights themselves to the constraint set — the quantity hard
    /// pruning truncates, and the one that must shrink for ADMM to be
    /// doing its job.
    pub compliance: f32,
    /// Test accuracy after the epoch.
    pub test_acc: f32,
}

/// Result of an ADMM run.
#[derive(Debug, Clone)]
pub struct AdmmStats {
    /// Per-round diagnostics (named `epochs` for continuity with
    /// [`pcnn_nn::train::TrainStats`]).
    pub epochs: Vec<AdmmEpoch>,
}

/// Runs ADMM regularisation toward the given per-layer pattern sets.
///
/// Does *not* hard-prune; call [`prune_model_with_sets`] afterwards
/// (or use [`run_pcnn_pipeline`], which does both plus fine-tuning).
///
/// # Panics
///
/// Panics if `sets` doesn't match the model's prunable layers.
pub fn admm_finetune(
    model: &mut Model,
    train_set: &Dataset,
    test_set: &Dataset,
    sets: &[PatternSet],
    cfg: &AdmmConfig,
) -> AdmmStats {
    let n_layers = model.prunable_convs().len();
    assert_eq!(
        sets.len(),
        n_layers,
        "pattern sets must match prunable layers"
    );

    // Z = Π(W), U = 0.
    let mut z: Vec<Tensor> = Vec::with_capacity(n_layers);
    let mut u: Vec<Tensor> = Vec::with_capacity(n_layers);
    for (conv, set) in model.prunable_convs().iter().zip(sets) {
        let mut zw = conv.weight().clone();
        let area = conv.shape().kernel_area();
        for kernel in zw.as_mut_slice().chunks_mut(area) {
            let _ = project_onto_set(kernel, set);
        }
        u.push(Tensor::zeros(zw.shape()));
        z.push(zw);
    }

    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut indices: Vec<usize> = (0..train_set.len()).collect();
    let mut stats = AdmmStats {
        epochs: Vec::with_capacity(cfg.rounds),
    };

    for round in 0..cfg.rounds {
        // Fresh momentum per round: the proximal subproblem changed.
        let mut opt = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay);
        let mut loss_sum = 0.0f64;
        let mut seen = 0usize;
        for _ in 0..cfg.epochs_per_round.max(1) {
            indices.shuffle(&mut rng);
            for chunk in indices.chunks(cfg.batch_size) {
                let (x, labels) = train_set.batch(chunk);
                let logits = model.forward(&x, true);
                let (loss, grad) = cross_entropy(&logits, &labels);
                loss_sum += loss as f64 * labels.len() as f64;
                seen += labels.len();
                model.zero_grad();
                let _ = model.backward(&grad);
                // Add the ADMM penalty gradient ρ(W − Z + U) per layer.
                for ((conv, zl), ul) in model.prunable_convs_mut().into_iter().zip(&z).zip(&u) {
                    let w = conv.weight().clone();
                    let g = conv.grad_weight_mut();
                    for (((gv, &wv), &zv), &uv) in g
                        .as_mut_slice()
                        .iter_mut()
                        .zip(w.as_slice())
                        .zip(zl.as_slice())
                        .zip(ul.as_slice())
                    {
                        *gv += cfg.rho * (wv - zv + uv);
                    }
                }
                opt.step(model);
            }
        }

        // Z ← Π(W + U); U ← U + W − Z.
        let mut residual_num = 0.0f64;
        let mut compliance_num = 0.0f64;
        let mut den = 0.0f64;
        for (((conv, zl), ul), set) in model
            .prunable_convs_mut()
            .into_iter()
            .zip(&mut z)
            .zip(&mut u)
            .zip(sets)
        {
            let area = conv.shape().kernel_area();
            let w = conv.weight();
            let mut wu = w.clone();
            wu.axpy(1.0, ul);
            for kernel in wu.as_mut_slice().chunks_mut(area) {
                let _ = project_onto_set(kernel, set);
            }
            *zl = wu;
            for ((uv, &wv), &zv) in ul
                .as_mut_slice()
                .iter_mut()
                .zip(w.as_slice())
                .zip(zl.as_slice())
            {
                *uv += wv - zv;
            }
            let mut diff = w.clone();
            diff.axpy(-1.0, zl);
            residual_num += diff.sq_norm() as f64;
            // Compliance: distance of W itself to the constraint set.
            let mut pw = w.clone();
            for kernel in pw.as_mut_slice().chunks_mut(area) {
                let _ = project_onto_set(kernel, set);
            }
            let mut cdiff = w.clone();
            cdiff.axpy(-1.0, &pw);
            compliance_num += cdiff.sq_norm() as f64;
            den += w.sq_norm() as f64;
        }

        let loss = (loss_sum / seen.max(1) as f64) as f32;
        let residual = (residual_num / den.max(1e-12)) as f32;
        let compliance = (compliance_num / den.max(1e-12)) as f32;
        let test_acc = evaluate(model, test_set, cfg.batch_size);
        if cfg.verbose {
            eprintln!(
                "admm round {round:>3}: loss {loss:.4}  residual {residual:.4}  compliance {compliance:.4}  test acc {test_acc:.3}"
            );
        }
        stats.epochs.push(AdmmEpoch {
            loss,
            residual,
            compliance,
            test_acc,
        });
    }
    stats
}

/// End-to-end PCNN pipeline report.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Accuracy before any pruning.
    pub baseline_acc: f32,
    /// Accuracy right after hard pruning (before fine-tuning).
    pub pruned_acc: f32,
    /// Accuracy after masked fine-tuning.
    pub final_acc: f32,
    /// ADMM diagnostics.
    pub admm: AdmmStats,
    /// Fine-tuning statistics.
    pub finetune: TrainStats,
    /// Pruning outcome (reports + distilled sets).
    pub outcome: PruneOutcome,
}

/// Runs the full paper pipeline on a trained model: distill → ADMM →
/// hard prune → masked fine-tune.
pub fn run_pcnn_pipeline(
    model: &mut Model,
    train_set: &Dataset,
    test_set: &Dataset,
    plan: &PrunePlan,
    admm_cfg: &AdmmConfig,
    finetune_epochs: usize,
) -> PipelineReport {
    let baseline_acc = evaluate(model, test_set, admm_cfg.batch_size);
    let sets = distill_pattern_sets(model, plan);
    let admm = admm_finetune(model, train_set, test_set, &sets, admm_cfg);
    let reports = prune_model_with_sets(model, plan, &sets);
    let pruned_acc = evaluate(model, test_set, admm_cfg.batch_size);
    let mut opt = Sgd::new(admm_cfg.lr, admm_cfg.momentum, admm_cfg.weight_decay);
    let ft_cfg = TrainConfig {
        epochs: finetune_epochs,
        batch_size: admm_cfg.batch_size,
        lr_decay_epochs: vec![finetune_epochs * 2 / 3],
        lr_decay: 0.2,
        seed: admm_cfg.seed + 1,
        verbose: admm_cfg.verbose,
    };
    let finetune = train(model, train_set, test_set, &mut opt, &ft_cfg);
    let final_acc = if finetune_epochs > 0 {
        finetune.final_test_acc()
    } else {
        pruned_acc
    };
    PipelineReport {
        baseline_acc,
        pruned_acc,
        final_acc,
        admm,
        finetune,
        outcome: PruneOutcome { reports, sets },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnn_nn::data::synthetic_split;
    use pcnn_nn::models::tiny_cnn;

    fn trained_tiny() -> (Model, Dataset, Dataset) {
        let (tr, te) = synthetic_split(4, 120, 40, 8, 8, 0.15, 5);
        let mut m = tiny_cnn(4, 8, 9);
        let mut opt = Sgd::new(0.08, 0.9, 1e-4);
        let cfg = TrainConfig {
            epochs: 6,
            batch_size: 16,
            seed: 2,
            ..Default::default()
        };
        let _ = train(&mut m, &tr, &te, &mut opt, &cfg);
        (m, tr, te)
    }

    #[test]
    fn admm_improves_pattern_compliance() {
        // ADMM must drag the weights toward the pattern-constraint set:
        // ‖W − Π(W)‖²/‖W‖² shrinks relative to the untouched model.
        let (mut m, tr, te) = trained_tiny();
        let plan = PrunePlan::uniform(2, 2, 8);
        let sets = distill_pattern_sets(&m, &plan);
        let cfg = AdmmConfig {
            rounds: 4,
            epochs_per_round: 3,
            rho: 0.5,
            lr: 0.01,
            momentum: 0.9,
            weight_decay: 0.0,
            ..Default::default()
        };
        let stats = admm_finetune(&mut m, &tr, &te, &sets, &cfg);
        let first = stats.epochs.first().unwrap().compliance;
        let last = stats.epochs.last().unwrap().compliance;
        assert!(
            last < first * 0.8,
            "compliance should shrink: {first} -> {last}"
        );
        // And the hard-prune truncation error is small at the end.
        assert!(last < 0.2, "final compliance {last}");
    }

    #[test]
    fn pipeline_produces_regular_sparsity_and_recovers() {
        let (mut m, tr, te) = trained_tiny();
        let plan = PrunePlan::uniform(2, 4, 16);
        let admm_cfg = AdmmConfig {
            rounds: 3,
            epochs_per_round: 2,
            ..Default::default()
        };
        let report = run_pcnn_pipeline(&mut m, &tr, &te, &plan, &admm_cfg, 4);
        // Regular sparsity: every kernel ≤ 4 non-zeros.
        for conv in m.prunable_convs() {
            for kernel in conv.weight().as_slice().chunks(9) {
                assert!(kernel.iter().filter(|&&w| w != 0.0).count() <= 4);
            }
        }
        // Fine-tuning should not be catastrophically below baseline on
        // this easy task (n=4 keeps ~half the weights).
        assert!(
            report.final_acc >= report.baseline_acc - 0.25,
            "final {} vs baseline {}",
            report.final_acc,
            report.baseline_acc
        );
    }

    #[test]
    #[should_panic(expected = "pattern sets must match")]
    fn mismatched_sets_panic() {
        let (mut m, tr, te) = trained_tiny();
        let cfg = AdmmConfig::default();
        let _ = admm_finetune(&mut m, &tr, &te, &[], &cfg);
    }
}
