//! Per-layer pruning plans: the paper's `S = {s_1..s_l}` (kernel
//! sparsity, expressed as non-zeros `n_l`) and `V_l` (pattern budget).

use crate::pattern::binomial;

/// The PCNN configuration of one prunable layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerPlan {
    /// Non-zero weights kept per kernel (`n_l`).
    pub n: usize,
    /// Maximum number of patterns (`V_l`); clamped to `C(k², n)` when it
    /// exceeds the full candidate-set size.
    pub max_patterns: usize,
}

impl LayerPlan {
    /// Effective pattern-set size for a kernel of `area` positions:
    /// `min(max_patterns, C(area, n))`.
    pub fn effective_patterns(&self, area: usize) -> usize {
        (self.max_patterns as u64)
            .min(binomial(area, self.n))
            .max(1) as usize
    }
}

/// A whole-network pruning plan: one [`LayerPlan`] per *prunable* layer,
/// in network order.
///
/// # Example
///
/// ```
/// use pcnn_core::PrunePlan;
/// // Paper Table I default: n = 4 in all 13 VGG-16 layers, ≤32 patterns.
/// let plan = PrunePlan::uniform(13, 4, 32);
/// assert_eq!(plan.layers().len(), 13);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrunePlan {
    layers: Vec<LayerPlan>,
}

impl PrunePlan {
    /// A plan from explicit per-layer entries.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn from_layers(layers: Vec<LayerPlan>) -> Self {
        assert!(!layers.is_empty(), "plan must cover at least one layer");
        PrunePlan { layers }
    }

    /// The same `n` and pattern budget in every layer (the paper's
    /// "unified sparsity setting").
    pub fn uniform(num_layers: usize, n: usize, max_patterns: usize) -> Self {
        PrunePlan::from_layers(vec![LayerPlan { n, max_patterns }; num_layers])
    }

    /// A "various" plan: per-layer `n` values, with `patterns_for(n)`
    /// giving each layer's pattern budget.
    pub fn various(ns: &[usize], patterns_for: impl Fn(usize) -> usize) -> Self {
        PrunePlan::from_layers(
            ns.iter()
                .map(|&n| LayerPlan {
                    n,
                    max_patterns: patterns_for(n),
                })
                .collect(),
        )
    }

    /// Paper Table I footnote (a): VGG-16 various setting
    /// `2-1-1-1-1-1-1-1-1-1-1-1-1` with 32 patterns in `n = 2` layers and
    /// 8 patterns in `n = 1` layers.
    pub fn vgg16_various() -> Self {
        let mut ns = vec![1usize; 13];
        ns[0] = 2;
        PrunePlan::various(&ns, |n| if n >= 2 { 32 } else { 8 })
    }

    /// Paper Table II footnote (a): ResNet-18 various setting
    /// `2-2-2-1-…-1` (first three prunable 3×3 layers at `n = 2`) with
    /// 32 patterns in `n = 2` layers and 8 in `n = 1` layers. Our
    /// prunable list is the stem plus the 16 block convolutions
    /// (17 layers).
    pub fn resnet18_various() -> Self {
        let mut ns = vec![1usize; 17];
        ns[0] = 2;
        ns[1] = 2;
        ns[2] = 2;
        PrunePlan::various(&ns, |n| if n >= 2 { 32 } else { 8 })
    }

    /// The per-layer entries in network order.
    pub fn layers(&self) -> &[LayerPlan] {
        &self.layers
    }

    /// The entry for prunable layer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn layer(&self, i: usize) -> LayerPlan {
        self.layers[i]
    }

    /// Mean kept fraction `n_l / area`, weighted by `weights_per_layer`
    /// (used for quick speedup estimates).
    pub fn mean_density(&self, area: usize, weights_per_layer: &[u64]) -> f64 {
        assert_eq!(
            weights_per_layer.len(),
            self.layers.len(),
            "layer count mismatch"
        );
        let total: u64 = weights_per_layer.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.layers
            .iter()
            .zip(weights_per_layer)
            .map(|(l, &w)| (l.n as f64 / area as f64) * (w as f64 / total as f64))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_plan() {
        let p = PrunePlan::uniform(13, 4, 32);
        assert!(p.layers().iter().all(|l| l.n == 4 && l.max_patterns == 32));
    }

    #[test]
    fn effective_patterns_clamps_to_candidate_set() {
        // n = 1 has only C(9,1) = 9 candidates, so 32 clamps to 9; the
        // paper uses "at most 8" there.
        let l = LayerPlan {
            n: 1,
            max_patterns: 32,
        };
        assert_eq!(l.effective_patterns(9), 9);
        let l8 = LayerPlan {
            n: 1,
            max_patterns: 8,
        };
        assert_eq!(l8.effective_patterns(9), 8);
        let l4 = LayerPlan {
            n: 4,
            max_patterns: 200,
        };
        assert_eq!(l4.effective_patterns(9), 126);
    }

    #[test]
    fn vgg_various_matches_footnote() {
        let p = PrunePlan::vgg16_various();
        assert_eq!(p.layers().len(), 13);
        assert_eq!(
            p.layer(0),
            LayerPlan {
                n: 2,
                max_patterns: 32
            }
        );
        for i in 1..13 {
            assert_eq!(
                p.layer(i),
                LayerPlan {
                    n: 1,
                    max_patterns: 8
                }
            );
        }
    }

    #[test]
    fn resnet_various_matches_footnote() {
        let p = PrunePlan::resnet18_various();
        assert_eq!(p.layers().len(), 17);
        assert_eq!(p.layers().iter().filter(|l| l.n == 2).count(), 3);
        assert_eq!(p.layers().iter().filter(|l| l.n == 1).count(), 14);
    }

    #[test]
    fn mean_density_weighted() {
        let p = PrunePlan::from_layers(vec![
            LayerPlan {
                n: 9,
                max_patterns: 1,
            },
            LayerPlan {
                n: 0,
                max_patterns: 1,
            },
        ]);
        // Equal weights → density (1 + 0)/2.
        assert!((p.mean_density(9, &[100, 100]) - 0.5).abs() < 1e-12);
        // All weight on the dense layer → 1.
        assert!((p.mean_density(9, &[100, 0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_plan_rejected() {
        let _ = PrunePlan::from_layers(vec![]);
    }
}
