//! Baseline pruning methods the paper compares against or composes with.
//!
//! * [`irregular`] — unstructured magnitude pruning (Deep Compression
//!   style), the CSC/EIE storage counterpart and the source of PE
//!   workload imbalance;
//! * [`kernel`] — kernel-level (2-D) pruning, composed with PCNN in
//!   Table VII;
//! * [`filter`] — filter-level (3-D) L1 pruning (Li et al.), Table V;
//! * [`channel`] — channel pruning via batch-norm scale magnitudes
//!   (network-slimming style), Tables V and VIII.

pub mod irregular {
    //! Unstructured magnitude pruning.

    use pcnn_nn::Model;
    use pcnn_tensor::Tensor;

    /// Prunes the smallest-magnitude weights of every prunable
    /// convolution so that only `density` (0..=1) of them survive,
    /// *globally per layer* (not per kernel — this is what makes the
    /// result irregular). Installs masks. Returns per-layer kept counts.
    ///
    /// # Panics
    ///
    /// Panics if `density` is outside `[0, 1]`.
    pub fn prune_magnitude(model: &mut Model, density: f64) -> Vec<usize> {
        assert!((0.0..=1.0).contains(&density), "density must be in [0,1]");
        let mut kept_counts = Vec::new();
        for conv in model.prunable_convs_mut() {
            let wshape = conv.weight().shape().to_vec();
            let weights = conv.weight().as_slice().to_vec();
            let keep = ((weights.len() as f64) * density).round() as usize;
            let mut order: Vec<usize> = (0..weights.len()).collect();
            order.sort_by(|&a, &b| {
                weights[b]
                    .abs()
                    .partial_cmp(&weights[a].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut mask = Tensor::zeros(&wshape);
            for &i in order.iter().take(keep) {
                mask.as_mut_slice()[i] = 1.0;
            }
            conv.set_mask(Some(mask));
            kept_counts.push(keep);
        }
        kept_counts
    }

    /// Per-kernel non-zero counts of a layer's OIHW weight tensor — the
    /// workload-imbalance signal: irregular pruning produces a wide
    /// spread, PCNN a single value.
    pub fn kernel_nnz_histogram(weight: &Tensor) -> Vec<usize> {
        let dims = weight.shape();
        let area = dims[2] * dims[3];
        weight
            .as_slice()
            .chunks(area)
            .map(|k| k.iter().filter(|&&w| w != 0.0).count())
            .collect()
    }
}

pub mod kernel {
    //! Kernel-level (2-D) pruning: remove whole `k×k` kernels by L1 norm.

    use pcnn_nn::Model;
    use pcnn_tensor::Tensor;

    /// Zeros the `1 - keep_fraction` smallest-L1 kernels of every
    /// prunable convolution and installs masks. Returns the per-layer
    /// number of kernels kept.
    ///
    /// # Panics
    ///
    /// Panics if `keep_fraction` is outside `(0, 1]`.
    pub fn prune_kernels(model: &mut Model, keep_fraction: f64) -> Vec<usize> {
        assert!(
            keep_fraction > 0.0 && keep_fraction <= 1.0,
            "keep_fraction must be in (0,1]"
        );
        let mut kept = Vec::new();
        for conv in model.prunable_convs_mut() {
            let area = conv.shape().kernel_area();
            let wshape = conv.weight().shape().to_vec();
            let norms: Vec<f32> = conv
                .weight()
                .as_slice()
                .chunks(area)
                .map(|k| k.iter().map(|w| w.abs()).sum())
                .collect();
            let keep_n = ((norms.len() as f64) * keep_fraction).ceil() as usize;
            let mut order: Vec<usize> = (0..norms.len()).collect();
            order.sort_by(|&a, &b| {
                norms[b]
                    .partial_cmp(&norms[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut mask = Tensor::zeros(&wshape);
            for &ki in order.iter().take(keep_n) {
                for v in mask.as_mut_slice()[ki * area..(ki + 1) * area].iter_mut() {
                    *v = 1.0;
                }
            }
            conv.set_mask(Some(mask));
            kept.push(keep_n);
        }
        kept
    }
}

pub mod filter {
    //! Filter-level (3-D) pruning by L1 norm (Li et al., ICLR 2017).

    use pcnn_nn::Model;
    use pcnn_tensor::Tensor;

    /// Zeros the `1 - keep_fraction` smallest-L1 filters (output
    /// channels) of every prunable convolution and installs masks.
    /// Returns the per-layer number of filters kept.
    ///
    /// This keeps tensor shapes intact (zeroed filters rather than
    /// physically removed ones), which is equivalent for accuracy and
    /// FLOPs accounting.
    ///
    /// # Panics
    ///
    /// Panics if `keep_fraction` is outside `(0, 1]`.
    pub fn prune_filters(model: &mut Model, keep_fraction: f64) -> Vec<usize> {
        assert!(
            keep_fraction > 0.0 && keep_fraction <= 1.0,
            "keep_fraction must be in (0,1]"
        );
        let mut kept = Vec::new();
        for conv in model.prunable_convs_mut() {
            let shape = *conv.shape();
            let filter_len = shape.in_c * shape.kernel_area();
            let wshape = conv.weight().shape().to_vec();
            let norms: Vec<f32> = conv
                .weight()
                .as_slice()
                .chunks(filter_len)
                .map(|f| f.iter().map(|w| w.abs()).sum())
                .collect();
            let keep_n = ((norms.len() as f64) * keep_fraction).ceil() as usize;
            let mut order: Vec<usize> = (0..norms.len()).collect();
            order.sort_by(|&a, &b| {
                norms[b]
                    .partial_cmp(&norms[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut mask = Tensor::zeros(&wshape);
            for &fi in order.iter().take(keep_n) {
                for v in mask.as_mut_slice()[fi * filter_len..(fi + 1) * filter_len].iter_mut() {
                    *v = 1.0;
                }
            }
            conv.set_mask(Some(mask));
            kept.push(keep_n);
        }
        kept
    }
}

pub mod channel {
    //! Channel pruning guided by batch-norm scale factors γ
    //! (network-slimming style, Liu et al., ICCV 2017).

    use pcnn_nn::model::Layer;
    use pcnn_nn::Model;

    /// Collects the |γ| of every `BatchNorm2d` that directly follows a
    /// prunable convolution, flattened across layers.
    pub fn gamma_saliencies(model: &Model) -> Vec<f32> {
        let mut out = Vec::new();
        let layers = model.layers();
        for i in 0..layers.len() {
            if let (Layer::Conv2d(c), Some(Layer::BatchNorm2d(bn))) =
                (&layers[i], layers.get(i + 1))
            {
                if c.shape().kernel >= 2 {
                    out.extend(bn.gamma().as_slice().iter().map(|g| g.abs()));
                }
            }
        }
        out
    }

    /// Zeros the BN scale of exactly the `⌊(1 − keep_fraction)·total⌋`
    /// smallest-|γ| channels *globally* across conv+BN pairs, which
    /// silences those channels' outputs — the slimming pruning step.
    /// Returns the number of channels zeroed. Ties (e.g. a freshly
    /// initialised model where every γ = 1) are broken by position, so
    /// the quota is always respected exactly.
    ///
    /// # Panics
    ///
    /// Panics if `keep_fraction` is outside `(0, 1]`.
    pub fn prune_channels(model: &mut Model, keep_fraction: f64) -> usize {
        assert!(
            keep_fraction > 0.0 && keep_fraction <= 1.0,
            "keep_fraction must be in (0,1]"
        );
        // Collect (bn layer index, channel, saliency) for BNs that follow
        // a prunable convolution.
        let mut entries: Vec<(usize, usize, f32)> = Vec::new();
        {
            let layers = model.layers();
            for i in 0..layers.len() {
                if let (Layer::Conv2d(c), Some(Layer::BatchNorm2d(bn))) =
                    (&layers[i], layers.get(i + 1))
                {
                    if c.shape().kernel >= 2 {
                        for (ch, g) in bn.gamma().as_slice().iter().enumerate() {
                            entries.push((i + 1, ch, g.abs()));
                        }
                    }
                }
            }
        }
        if entries.is_empty() {
            return 0;
        }
        entries.sort_by(|a, b| a.2.total_cmp(&b.2));
        let quota = ((entries.len() as f64) * (1.0 - keep_fraction)).floor() as usize;
        let layers = model.layers_mut();
        for &(li, ch, _) in entries.iter().take(quota) {
            if let Layer::BatchNorm2d(bn) = &mut layers[li] {
                bn.gamma_mut().as_mut_slice()[ch] = 0.0;
            }
        }
        quota
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnn_nn::models::{vgg16_proxy, VggProxyConfig};

    fn proxy() -> pcnn_nn::Model {
        vgg16_proxy(&VggProxyConfig::default(), 5)
    }

    #[test]
    fn irregular_hits_target_density() {
        let mut m = proxy();
        let _ = irregular::prune_magnitude(&mut m, 4.0 / 9.0);
        for conv in m.prunable_convs() {
            let density = 1.0 - conv.weight().sparsity();
            assert!((density - 4.0 / 9.0).abs() < 0.01, "density {density}");
        }
    }

    #[test]
    fn irregular_is_actually_irregular() {
        // Per-kernel nnz varies under magnitude pruning (unlike PCNN).
        let mut m = proxy();
        let _ = irregular::prune_magnitude(&mut m, 4.0 / 9.0);
        let convs = m.prunable_convs();
        let hist = irregular::kernel_nnz_histogram(convs[5].weight());
        let min = hist.iter().min().unwrap();
        let max = hist.iter().max().unwrap();
        assert!(max > min, "expected spread, got constant {min}");
    }

    #[test]
    fn kernel_pruning_zeroes_whole_kernels() {
        let mut m = proxy();
        let kept = kernel::prune_kernels(&mut m, 0.5);
        for (conv, &k) in m.prunable_convs().iter().zip(&kept) {
            let area = conv.shape().kernel_area();
            let mut alive = 0usize;
            for kernel in conv.weight().as_slice().chunks(area) {
                let nnz = kernel.iter().filter(|&&w| w != 0.0).count();
                assert!(nnz == 0 || nnz == area, "partial kernel survived");
                if nnz > 0 {
                    alive += 1;
                }
            }
            assert_eq!(alive, k);
        }
    }

    #[test]
    fn filter_pruning_zeroes_whole_filters() {
        let mut m = proxy();
        let _ = filter::prune_filters(&mut m, 0.75);
        for conv in m.prunable_convs() {
            let shape = *conv.shape();
            let filter_len = shape.in_c * shape.kernel_area();
            let mut zeroed = 0usize;
            for f in conv.weight().as_slice().chunks(filter_len) {
                let nnz = f.iter().filter(|&&w| w != 0.0).count();
                assert!(nnz == 0 || nnz == filter_len);
                if nnz == 0 {
                    zeroed += 1;
                }
            }
            let expect = shape.out_c - ((shape.out_c as f64) * 0.75).ceil() as usize;
            assert_eq!(zeroed, expect);
        }
    }

    #[test]
    fn channel_pruning_zeroes_gammas() {
        let mut m = proxy();
        let before = channel::gamma_saliencies(&m).len();
        let pruned = channel::prune_channels(&mut m, 0.5);
        // Exactly half the channels are zeroed even with all-tied γ = 1.
        assert_eq!(pruned, before / 2, "pruned {pruned} of {before}");
        let zeros = channel::gamma_saliencies(&m)
            .iter()
            .filter(|&&g| g == 0.0)
            .count();
        assert_eq!(zeros, pruned);
    }

    #[test]
    fn channel_pruning_prefers_small_gammas() {
        let mut m = proxy();
        // Make one BN's channels tiny so they are pruned first.
        if let pcnn_nn::model::Layer::BatchNorm2d(bn) = &mut m.layers_mut()[1] {
            bn.gamma_mut().fill(1e-6);
        }
        let _ = channel::prune_channels(&mut m, 0.9);
        if let pcnn_nn::model::Layer::BatchNorm2d(bn) = &m.layers()[1] {
            assert!(bn.gamma().as_slice().iter().all(|&g| g == 0.0));
        } else {
            panic!("layer 1 should be BatchNorm");
        }
    }

    #[test]
    fn keep_everything_is_noop() {
        let mut m = proxy();
        let w_before: Vec<f32> = m.prunable_convs()[0].weight().as_slice().to_vec();
        let _ = kernel::prune_kernels(&mut m, 1.0);
        let _ = filter::prune_filters(&mut m, 1.0);
        assert_eq!(m.prunable_convs()[0].weight().as_slice(), &w_before[..]);
    }
}
