//! Live traffic against the async serving front-end.
//!
//! ```text
//! cargo run --release --example serve_traffic                 # full demo
//! cargo run --release --example serve_traffic -- --smoke      # CI-sized
//! cargo run --release --example serve_traffic -- --shards 2   # sharded topology
//! cargo run --release --example serve_traffic -- --trace      # observability demo
//! cargo run --release --example serve_traffic -- --attribution # where did the latency go?
//! cargo run --release --example serve_traffic -- --incident    # black-box forensics demo
//! cargo run --release --example serve_traffic -- --chaos       # fault-injection drill
//! ```
//!
//! 1. Prunes the VGG-16-topology proxy at n = 2 and compiles it through
//!    the pattern compiler, exactly as `sparse_inference.rs` does.
//! 2. Drives the `pcnn-serve` front-end with N concurrent closed-loop
//!    client threads and prints the telemetry report: throughput plus
//!    p50/p95/p99 of queue wait and end-to-end latency.
//! 3. Repeats the run with `max_batch = 1` to show what dynamic
//!    batching buys (the batched configuration must win).
//! 4. Repeats the batched run sharded (`--shards N`, `auto`/`0` = one
//!    shard per core): the same queue feeds one batcher per engine
//!    shard, and the telemetry report grows a per-shard breakdown.
//! 5. Demonstrates backpressure: a burst at a tiny queue capacity gets
//!    `QueueFull` rejections instead of unbounded queueing.
//! 6. Shuts down gracefully and prints the drain report.

use pcnn::core::PrunePlan;
use pcnn::nn::models::{vgg16_proxy, VggProxyConfig};
use pcnn::runtime::compile::{prune_and_compile, CompileOptions};
use pcnn::runtime::Engine;
use pcnn::serve::{
    AttributionReport, BreakerState, EventCode, FaultPlan, HealthState, IncidentTrigger,
    RetryPolicy, ServeConfig, ServeError, Server, ShutdownMode, SloConfig, SupervisorConfig,
    TelemetrySnapshot, TraceConfig,
};
use pcnn::tensor::Tensor;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn random_tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = SmallRng::seed_from_u64(seed);
    let len = shape.iter().product();
    Tensor::from_vec(
        (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        shape,
    )
}

fn build_engine() -> Engine {
    let cfg = VggProxyConfig::default();
    let mut model = vgg16_proxy(&cfg, 3);
    let plan = PrunePlan::uniform(13, 2, 32);
    let (graph, report, _) = prune_and_compile(&mut model, &plan, &CompileOptions::default())
        .expect("proxy lowers cleanly");
    println!(
        "engine: pruned VGG-16 proxy, {} sparse + {} dense ops, SPM compression {:.2}x",
        report.sparse_layers,
        report.dense_layers,
        report.compression()
    );
    Engine::with_default_threads(graph)
}

/// Closed-loop run: `clients` threads each submit-and-wait
/// `requests_per_client` times. Returns (wall, telemetry, dropped).
fn closed_loop(
    server: &Arc<Server>,
    clients: usize,
    requests_per_client: usize,
    hw: usize,
) -> (Duration, TelemetrySnapshot, usize) {
    let start = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let server = server.clone();
            std::thread::spawn(move || {
                let mut dropped = 0usize;
                for i in 0..requests_per_client {
                    let x = random_tensor(&[1, 3, hw, hw], (c * 10_000 + i) as u64);
                    match server.submit(x) {
                        Ok(ticket) => {
                            ticket.wait().expect("drain never aborts in this demo");
                        }
                        Err(ServeError::QueueFull) => dropped += 1,
                        Err(e) => panic!("unexpected submit error: {e}"),
                    }
                }
                dropped
            })
        })
        .collect();
    let dropped: usize = workers.into_iter().map(|w| w.join().expect("client")).sum();
    (start.elapsed(), server.metrics().snapshot(), dropped)
}

/// Parses `--shards <n>` (`auto` or `0` = one shard per core, capped at
/// the engine's workers). Defaults to 2 so the plain demo exercises the
/// sharded topology.
fn shards_arg() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--shards" {
            let v = args.next().expect("--shards takes a value");
            if v == "auto" {
                return 0;
            }
            return v.parse().expect("--shards takes a number or 'auto'");
        }
    }
    2
}

/// Rejects anything that is not valid Prometheus text exposition
/// format: every line is a `# HELP`/`# TYPE` comment or a
/// `name{labels} value` sample whose value parses as a float. Returns
/// the number of sample lines.
fn validate_prometheus(text: &str) -> usize {
    assert!(!text.is_empty(), "exporter produced no output");
    let mut samples = 0usize;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            assert!(
                comment.starts_with("HELP ") || comment.starts_with("TYPE "),
                "unknown comment line: {line}"
            );
            if let Some(type_line) = comment.strip_prefix("TYPE ") {
                let kind = type_line.rsplit(' ').next().unwrap();
                assert!(
                    matches!(kind, "counter" | "gauge" | "histogram"),
                    "unknown metric type in: {line}"
                );
            }
            continue;
        }
        // Label values may contain spaces, so split on the *last* one.
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        assert!(!series.is_empty(), "empty series name in: {line}");
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf",
            "unparseable sample value in: {line}"
        );
        samples += 1;
    }
    assert!(samples > 0, "exporter rendered zero samples");
    samples
}

/// `--trace`: the observability demo. Every request is traced
/// (`sample_every = 1`), the per-layer profiler is on, and the run ends
/// by validating the Prometheus rendering, dumping span timelines from
/// the flight recorder, and writing the execution profile to
/// `PROFILE_serve.json` for CI to parse.
fn trace_demo(smoke: bool, shards: usize) {
    let hw = VggProxyConfig::default().input_hw;
    let clients = if smoke { 4 } else { 6 };
    let per_client = if smoke { 12 } else { 60 };
    let engine = build_engine();
    engine.enable_profiling();
    let server = Arc::new(Server::start(
        engine,
        ServeConfig {
            shards,
            max_batch: (clients / 2).max(4),
            input_chw: Some([3, hw, hw]),
            trace: TraceConfig {
                sample_every: 1, // trace every request for the demo
                ring_capacity: 512,
            },
            ..ServeConfig::default()
        },
    ));
    println!(
        "\n[trace] {clients} clients x {per_client} requests, every request traced, profiler on"
    );
    let (wall, snap, dropped) = closed_loop(&server, clients, per_client, hw);
    let total = clients * per_client;
    assert_eq!(dropped, 0);
    assert_eq!(snap.completed as usize, total);
    println!(
        "wall-clock throughput: {:.1} req/s over {total} requests",
        total as f64 / wall.as_secs_f64()
    );

    // --- Prometheus exporter ---------------------------------------------
    let prom = server.render_prometheus();
    let samples = validate_prometheus(&prom);
    println!("render_prometheus: {samples} samples, all lines well-formed");

    // --- Flight recorder: span timelines ---------------------------------
    let recorder = server.flight_recorder();
    assert_eq!(recorder.requests(), total as u64);
    let spans = recorder.spans();
    assert!(!spans.is_empty(), "traced run must retain spans");
    for span in &spans {
        assert!(span.is_monotone(), "span {} not monotone", span.id);
    }
    let last = spans.last().unwrap();
    println!(
        "flight recorder: {} spans retained ({} recorded, {} dropped); last span: {}",
        spans.len(),
        recorder.spans_recorded(),
        recorder.spans_dropped(),
        last.to_json()
    );

    // --- Per-layer execution profile --------------------------------------
    let profile = server.engine().exec_profile();
    assert_eq!(profile.simd_level, pcnn::tensor::simd::active().label());
    let f32_ns = profile.total_ns(pcnn::runtime::Precision::F32);
    assert!(f32_ns > 0, "profiler must have recorded the f32 lowering");
    let layers = &profile.precisions[0].layers;
    println!(
        "profiler: {} f32 layers, {:.2} ms total ({} SIMD tier)",
        layers.len(),
        f32_ns as f64 / 1e6,
        profile.simd_level
    );
    let json = profile.to_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/PROFILE_serve.json");
    std::fs::write(path, &json).expect("write PROFILE_serve.json");
    println!("profile written to {path}");

    let report = match Arc::try_unwrap(server) {
        Ok(s) => s.shutdown(ShutdownMode::Drain),
        Err(_) => unreachable!("all clients joined"),
    };
    println!("\n{report}");
    assert_eq!(report.completed as usize, total);
    println!("serve_traffic --trace: OK");
}

/// `--attribution`: where did the end-to-end time go? Every request is
/// traced, the profiler is on, and the run decomposes recorded spans
/// into queue-wait / coalesce / dispatch-wait / execute /
/// completion-notify segments per rolling window and percentile band,
/// cross-references the engine's pad/kernel/epilogue phase split,
/// checks the health engine reports `Healthy` at this (comfortable)
/// load, and writes the attribution + health blocks into
/// `PROFILE_serve.json` for CI to parse.
fn attribution_demo(smoke: bool, shards: usize) {
    let hw = VggProxyConfig::default().input_hw;
    let clients = if smoke { 4 } else { 6 };
    let per_client = if smoke { 12 } else { 60 };
    let engine = build_engine();
    engine.enable_profiling();
    let server = Arc::new(Server::start(
        engine,
        ServeConfig {
            shards,
            max_batch: (clients / 2).max(4),
            input_chw: Some([3, hw, hw]),
            trace: TraceConfig {
                sample_every: 1, // attribution wants every timeline
                ring_capacity: 1024,
            },
            // A deliberately lenient SLO: closed-loop smoke load must
            // grade Healthy, which CI asserts below.
            slo: SloConfig {
                latency_target: Duration::from_secs(5),
                ..SloConfig::default()
            },
            ..ServeConfig::default()
        },
    ));
    println!("\n[attribution] {clients} clients x {per_client} requests, every request traced");
    let (wall, snap, dropped) = closed_loop(&server, clients, per_client, hw);
    let total = clients * per_client;
    assert_eq!(dropped, 0);
    assert_eq!(snap.completed as usize, total);
    println!(
        "wall-clock throughput: {:.1} req/s over {total} requests",
        total as f64 / wall.as_secs_f64()
    );

    // --- Health: smoke load against the lenient SLO must be Healthy ------
    let health = server.health();
    println!("{health}");
    assert_eq!(
        health.state,
        HealthState::Healthy,
        "closed-loop smoke load must stay inside a 5 s latency SLO"
    );

    // --- Span-driven latency attribution ----------------------------------
    let spans = server.flight_recorder().spans();
    let mut report = AttributionReport::analyze(&spans);
    assert!(report.analyzed > 0, "traced run must retain spans");
    let profile = server.engine().exec_profile();
    report.attach_exec_profile(&profile);
    assert!(
        !report.exec_phases.is_empty(),
        "profiler was on, so the execute segment cross-references"
    );
    print!("{report}");
    println!(
        "dominant contributor overall: {}",
        report.dominant().expect("analyzed > 0")
    );

    // --- Exporter sanity ---------------------------------------------------
    let prom = server.render_prometheus();
    validate_prometheus(&prom);
    assert!(
        prom.contains("pcnn_health_state 0"),
        "healthy at smoke load"
    );
    assert!(prom.contains("pcnn_window_completed{window=\"60s\"}"));
    assert!(prom.contains("pcnn_build_info{version="));

    // --- PROFILE_serve.json with attribution + health blocks --------------
    let profile_json = profile.to_json();
    let body = profile_json
        .strip_suffix('}')
        .expect("profile JSON is an object");
    let json = format!(
        "{body},\"attribution\":{},\"health\":{}}}",
        report.to_json(),
        health.to_json()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/PROFILE_serve.json");
    std::fs::write(path, &json).expect("write PROFILE_serve.json");
    println!("profile + attribution written to {path}");

    let drain = match Arc::try_unwrap(server) {
        Ok(s) => s.shutdown(ShutdownMode::Drain),
        Err(_) => unreachable!("all clients joined"),
    };
    assert_eq!(drain.completed as usize, total);
    println!("serve_traffic --attribution: OK");
}

/// `--incident`: the black-box forensics demo. Every request is traced
/// and the profiler is on; an SLO every completion violates drives the
/// health engine into `Degraded` under an explicit evaluation, which
/// trips the incident recorder exactly once (the follow-up `Overloaded`
/// step lands inside the capture cooldown). The run validates the event
/// journal's Prometheus families, prints the captured incident, and
/// writes the on-demand `Server::diagnostics()` snapshot plus the
/// incident into `PROFILE_serve.json` for CI to parse.
fn incident_demo(smoke: bool, shards: usize) {
    let hw = VggProxyConfig::default().input_hw;
    let clients = if smoke { 4 } else { 6 };
    let per_client = if smoke { 12 } else { 60 };
    let engine = build_engine();
    engine.enable_profiling();
    let server = Arc::new(Server::start(
        engine,
        ServeConfig {
            shards,
            max_batch: (clients / 2).max(4),
            input_chw: Some([3, hw, hw]),
            trace: TraceConfig {
                sample_every: 1, // forensics wants every timeline
                ring_capacity: 512,
            },
            // A 1 ns target: every real completion violates the SLO,
            // so the explicit evaluations below are deterministic. The
            // huge eval_interval keeps the submit path from evaluating
            // on its own mid-burst.
            slo: SloConfig {
                latency_target: Duration::from_nanos(1),
                fast_window: Duration::from_secs(5),
                slow_window: Duration::from_secs(60),
                min_samples: 1,
                eval_interval: Duration::from_secs(3600),
                ..SloConfig::default()
            },
            ..ServeConfig::default()
        },
    ));
    println!("\n[incident] {clients} clients x {per_client} requests against a 1 ns SLO");
    let (wall, snap, dropped) = closed_loop(&server, clients, per_client, hw);
    let total = clients * per_client;
    assert_eq!(dropped, 0);
    assert_eq!(snap.completed as usize, total);
    println!(
        "wall-clock throughput: {:.1} req/s over {total} requests",
        total as f64 / wall.as_secs_f64()
    );

    // --- Deterministic deterioration: exactly one incident ----------------
    let health = server.health_engine();
    let metrics = server.metrics();
    let now = metrics.now_ns();
    let r1 = health.evaluate_at(metrics, now);
    assert_eq!(r1.state, HealthState::Degraded, "every request violated");
    let r2 = health.evaluate_at(metrics, now);
    assert_eq!(r2.state, HealthState::Overloaded);
    let recorder = server.incidents();
    assert_eq!(recorder.captured(), 1, "Degraded captures, cooldown holds");
    assert_eq!(recorder.suppressed(), 1);
    let incidents = recorder.incidents();
    let incident = &incidents[0];
    assert_eq!(incident.trigger, IncidentTrigger::HealthDegraded);
    assert!(!incident.events.is_empty(), "event tail rides along");
    println!("\n{incident}");

    // --- Event journal in the exporter -------------------------------------
    let prom = server.render_prometheus();
    validate_prometheus(&prom);
    assert!(prom.contains("pcnn_events_total{code=\"health_transition\""));
    assert!(prom.contains("pcnn_events_suppressed_total"));
    let journal = metrics.events();
    println!(
        "event journal: {} emitted, {} coalesced, {} dropped",
        journal.emitted(),
        journal.suppressed(),
        journal.dropped()
    );

    // --- PROFILE_serve.json with diagnostics + incident blocks ------------
    let diag = server.diagnostics();
    assert_eq!(diag.trigger, IncidentTrigger::OnDemand);
    let profile_json = server.engine().exec_profile().to_json();
    let body = profile_json
        .strip_suffix('}')
        .expect("profile JSON is an object");
    let json = format!(
        "{body},\"diagnostics\":{},\"incident\":{}}}",
        diag.to_json(),
        incident.to_json()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/PROFILE_serve.json");
    std::fs::write(path, &json).expect("write PROFILE_serve.json");
    println!("profile + diagnostics + incident written to {path}");

    let drain = match Arc::try_unwrap(server) {
        Ok(s) => s.shutdown(ShutdownMode::Drain),
        Err(_) => unreachable!("all clients joined"),
    };
    assert_eq!(drain.completed as usize, total);
    println!("serve_traffic --incident: OK");
}

/// `--chaos`: the fault-injection drill. A sharded server takes
/// closed-loop load while the drill injects one batcher crash and one
/// batcher stall into shard 0; the supervisor must restart the shard
/// both times (panic detected structurally, stall detected by
/// heartbeat), every admitted request must resolve exactly once, and
/// traffic afterwards must run at full parity with the health engine
/// reporting `Healthy`. The run writes `CHAOS_serve.json` — journal,
/// telemetry, shard supervision status — for CI to validate.
fn chaos_demo(smoke: bool, shards: usize) {
    let hw = VggProxyConfig::default().input_hw;
    // The drill needs a surviving shard while shard 0 is down.
    let shards = if shards == 0 { 2 } else { shards.max(2) };
    let clients = if smoke { 4 } else { 6 };
    let per_client = if smoke { 12 } else { 40 };
    let faults = FaultPlan::new();
    let server = Arc::new(Server::start(
        build_engine(),
        ServeConfig {
            shards,
            max_batch: (clients / 2).max(4),
            input_chw: Some([3, hw, hw]),
            supervision: SupervisorConfig {
                stall_timeout: Duration::from_millis(300),
                ..SupervisorConfig::default()
            },
            retry: RetryPolicy {
                max_attempts: 2,
                budget_ratio: 1.0,
                ..RetryPolicy::default()
            },
            // Lenient on both axes: the drill's handful of attributed
            // failures must not keep the health engine degraded, so
            // "recovered" is observable as a plain Healthy read.
            slo: SloConfig {
                latency_target: Duration::from_secs(5),
                availability_target: 0.5,
                ..SloConfig::default()
            },
            faults: Some(faults.clone()),
            ..ServeConfig::default()
        },
    ));
    println!("\n[chaos] {clients} clients x {per_client} requests across {shards} shards, crash + stall injected into shard 0");

    // --- Phase 1: a batcher crash under load ------------------------------
    let total = clients * per_client;
    let start = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let server = server.clone();
            let faults = faults.clone();
            std::thread::spawn(move || {
                let (mut ok, mut failed) = (0usize, 0usize);
                for i in 0..per_client {
                    if c == 0 && i == per_client / 4 {
                        faults.crash_batcher(0, 1);
                    }
                    let x = random_tensor(&[1, 3, hw, hw], (c * 10_000 + i) as u64);
                    match server.submit(x).expect("admitted").wait() {
                        Ok(_) => ok += 1,
                        Err(ServeError::ShardFailed | ServeError::EngineFault) => failed += 1,
                        Err(e) => panic!("unexpected outcome: {e}"),
                    }
                }
                (ok, failed)
            })
        })
        .collect();
    let (ok, failed) = workers
        .into_iter()
        .map(|w| w.join().expect("client"))
        .fold((0, 0), |(a, b), (x, y)| (a + x, b + y));
    assert_eq!(ok + failed, total, "every submit resolved exactly once");
    assert_eq!(faults.crashes_fired(), 1, "the crash fired under load");
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.shard_status(0).restarts < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(server.shard_status(0).restarts >= 1, "crash restart");
    println!(
        "crash drill: {ok} completed, {failed} failed with attribution, shard 0 restarted ({:.1} req/s)",
        total as f64 / start.elapsed().as_secs_f64()
    );

    // --- Phase 2: a wedged batcher (stall past the heartbeat timeout) -----
    faults.stall_batcher(0, Duration::from_millis(700));
    let deadline = Instant::now() + Duration::from_secs(15);
    while server.shard_status(0).restarts < 2 && Instant::now() < deadline {
        // Keep traffic flowing so shard 0 trips the armed stall at its
        // next loop top; stalled-era tickets may fail with attribution.
        let tickets: Vec<_> = (0..4)
            .map(|i| {
                server
                    .submit(random_tensor(&[1, 3, hw, hw], 7_000_000 + i))
                    .expect("admitted")
            })
            .collect();
        for t in tickets {
            match t.wait() {
                Ok(_) | Err(ServeError::ShardFailed) | Err(ServeError::EngineFault) => {}
                Err(e) => panic!("unexpected outcome: {e}"),
            }
        }
    }
    assert_eq!(faults.stalls_fired(), 1, "the stall fired");
    assert!(
        server.shard_status(0).restarts >= 2,
        "the wedged batcher was detected by heartbeat and replaced"
    );
    println!("stall drill: shard 0 declared wedged and replaced");

    // --- Phase 3: full parity after recovery ------------------------------
    let after: Vec<_> = (0..clients * 2)
        .map(|i| {
            server
                .submit(random_tensor(&[1, 3, hw, hw], 8_000_000 + i as u64))
                .expect("admitted")
        })
        .collect();
    for t in after {
        t.wait().expect("post-recovery traffic completes");
    }
    let health = server.health();
    assert_eq!(
        health.state,
        HealthState::Healthy,
        "health recovered after the drill"
    );
    for i in 0..server.shards() {
        assert_eq!(server.shard_status(i).breaker, BreakerState::Closed);
    }
    let journal = server.metrics().events();
    let restart_events = journal
        .events()
        .iter()
        .filter(|e| e.code == EventCode::ShardRestart)
        .count();
    assert!(restart_events >= 2, "both restarts journaled");
    println!(
        "recovery: {} post-drill requests served, health {}, {} shard_restart events journaled",
        clients * 2,
        health.state,
        restart_events
    );

    // --- CHAOS_serve.json for CI ------------------------------------------
    let snap = server.metrics().snapshot();
    let statuses: Vec<String> = (0..server.shards())
        .map(|i| {
            let s = server.shard_status(i);
            format!(
                "{{\"shard\":{},\"generation\":{},\"restarts\":{},\"breaker\":\"{}\"}}",
                s.shard, s.generation, s.restarts, s.breaker
            )
        })
        .collect();
    let json = format!(
        "{{\"crashes_fired\":{},\"stalls_fired\":{},\"health\":\"{}\",\"shards\":[{}],\"telemetry\":{},\"events\":{}}}",
        faults.crashes_fired(),
        faults.stalls_fired(),
        health.state,
        statuses.join(","),
        snap.to_json(),
        journal.to_json(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/CHAOS_serve.json");
    std::fs::write(path, &json).expect("write CHAOS_serve.json");
    println!("chaos drill report written to {path}");

    let report = match Arc::try_unwrap(server) {
        Ok(s) => s.shutdown(ShutdownMode::Drain),
        Err(_) => unreachable!("all clients joined"),
    };
    println!("\n{report}");
    assert_eq!(report.completed, snap.completed);
    println!("serve_traffic --chaos: OK");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let shards = shards_arg();
    if std::env::args().any(|a| a == "--chaos") {
        chaos_demo(smoke, shards);
        return;
    }
    if std::env::args().any(|a| a == "--incident") {
        incident_demo(smoke, shards);
        return;
    }
    if std::env::args().any(|a| a == "--attribution") {
        attribution_demo(smoke, shards);
        return;
    }
    if std::env::args().any(|a| a == "--trace") {
        trace_demo(smoke, shards);
        return;
    }
    let hw = VggProxyConfig::default().input_hw;
    let clients = if smoke { 4 } else { 6 };
    let per_client = if smoke { 12 } else { 60 };

    // --- 1. Dynamic batching, tuned for the closed-loop client count ----
    // max_batch of half the clients: with pipelined dispatch one batch
    // coalesces while another executes, so the engine never idles
    // waiting for the full client cohort to resubmit.
    let server = Arc::new(Server::start(
        build_engine(),
        ServeConfig {
            max_batch: (clients / 2).max(4),
            input_chw: Some([3, hw, hw]),
            ..ServeConfig::default()
        },
    ));
    println!(
        "\n[batched] {clients} clients x {per_client} requests, capacity {}, max_batch {}, max_wait {:?}",
        server.config().queue_capacity,
        server.config().max_batch,
        server.config().max_wait,
    );
    let (wall, snap, dropped) = closed_loop(&server, clients, per_client, hw);
    println!("{snap}");
    let total = clients * per_client;
    let batched_rps = total as f64 / wall.as_secs_f64();
    println!("wall-clock throughput: {batched_rps:.1} req/s over {total} requests");
    assert_eq!(
        dropped, 0,
        "default capacity must not shed closed-loop load"
    );
    assert_eq!(snap.completed as usize, total, "zero dropped tickets");
    assert!(
        snap.mean_batch >= 1.0,
        "telemetry must report batch occupancy"
    );

    // --- 2. The same load without batching (max_batch = 1) --------------
    let single = Arc::new(Server::start(
        build_engine(),
        ServeConfig {
            max_batch: 1,
            input_chw: Some([3, hw, hw]),
            ..ServeConfig::default()
        },
    ));
    println!("\n[batch-1] same load, max_batch = 1");
    let (wall1, snap1, dropped1) = closed_loop(&single, clients, per_client, hw);
    let single_rps = total as f64 / wall1.as_secs_f64();
    println!(
        "wall-clock throughput: {single_rps:.1} req/s (p99 e2e {:.2} ms)",
        snap1.latency_p99.as_secs_f64() * 1e3
    );
    assert_eq!(dropped1, 0);
    println!(
        "\ndynamic batching speedup: {:.2}x (mean batch {:.1} images)",
        batched_rps / single_rps,
        snap.mean_batch
    );

    // --- 3. The same load sharded: N batchers on one queue ---------------
    let sharded = Arc::new(Server::start(
        build_engine(),
        ServeConfig {
            shards,
            max_batch: (clients / 2).max(4),
            input_chw: Some([3, hw, hw]),
            ..ServeConfig::default()
        },
    ));
    let shard_workers: Vec<usize> = (0..sharded.shards())
        .map(|i| sharded.engine_shard(i).threads())
        .collect();
    println!(
        "\n[sharded] same load, {} engine shards with {:?} workers ({} total), one shared queue",
        sharded.shards(),
        shard_workers,
        shard_workers.iter().sum::<usize>(),
    );
    let (wall_s, snap_s, dropped_s) = closed_loop(&sharded, clients, per_client, hw);
    let sharded_rps = total as f64 / wall_s.as_secs_f64();
    println!("{snap_s}");
    println!(
        "wall-clock throughput: {sharded_rps:.1} req/s ({:.2}x the single-shard batched run)",
        sharded_rps / batched_rps
    );
    assert_eq!(dropped_s, 0);
    assert_eq!(snap_s.completed as usize, total, "zero dropped tickets");
    assert_eq!(
        snap_s.shards.iter().map(|s| s.completed).sum::<u64>(),
        total as u64,
        "per-shard telemetry accounts for every request"
    );

    // --- 4. Backpressure: burst into a tiny queue ------------------------
    let tiny = Server::start(
        build_engine(),
        ServeConfig {
            queue_capacity: 4,
            max_batch: 4,
            input_chw: Some([3, hw, hw]),
            ..ServeConfig::default()
        },
    );
    let burst = 64usize;
    let mut accepted = Vec::new();
    let mut rejected = 0usize;
    for i in 0..burst {
        match tiny.submit(random_tensor(&[1, 3, hw, hw], 999 + i as u64)) {
            Ok(t) => accepted.push(t),
            Err(ServeError::QueueFull) => rejected += 1,
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    for t in accepted {
        t.wait().expect("accepted requests complete");
    }
    println!(
        "\n[backpressure] burst of {burst} into capacity 4: {} accepted, {rejected} rejected with QueueFull",
        burst - rejected
    );
    assert!(rejected > 0, "a 64-burst must trip a capacity-4 queue");
    let tiny_report = tiny.shutdown(ShutdownMode::Drain);
    println!("{tiny_report}");

    // --- 5. Graceful shutdown -------------------------------------------
    let report = match Arc::try_unwrap(server) {
        Ok(s) => s.shutdown(ShutdownMode::Drain),
        Err(_) => unreachable!("all clients joined"),
    };
    println!("\n{report}");
    let sharded_report = match Arc::try_unwrap(sharded) {
        Ok(s) => s.shutdown(ShutdownMode::Drain),
        Err(_) => unreachable!("all clients joined"),
    };
    println!("{sharded_report}");
    assert_eq!(sharded_report.completed as usize, total);
    drop(Arc::try_unwrap(single).map(|s| s.shutdown(ShutdownMode::Drain)));
    println!("serve_traffic: OK");
}
