//! Automates the paper's hand-tuned "various setting" rows: scan each
//! layer's pruning sensitivity, then greedily assign per-layer `n`
//! under a density budget and run the pipeline with the found plan.
//!
//! ```text
//! cargo run --release --example sensitivity_search
//! ```

use pcnn::core::admm::{run_pcnn_pipeline, AdmmConfig};
use pcnn::core::sensitivity::{scan_sensitivity, search_various_plan};
use pcnn::nn::data::synthetic_split;
use pcnn::nn::models::{vgg16_proxy, VggProxyConfig};
use pcnn::nn::optim::Sgd;
use pcnn::nn::train::{train, TrainConfig};

fn main() {
    println!("[1/3] training the VGG-16 proxy baseline...");
    let (train_set, test_set) = synthetic_split(10, 700, 175, 16, 16, 0.25, 11);
    let mut model = vgg16_proxy(&VggProxyConfig::default(), 11);
    let mut sgd = Sgd::new(0.05, 0.9, 5e-4);
    let cfg = TrainConfig {
        epochs: 14,
        batch_size: 32,
        lr_decay_epochs: vec![10],
        lr_decay: 0.2,
        seed: 4,
        ..Default::default()
    };
    let base = train(&mut model, &train_set, &test_set, &mut sgd, &cfg);
    println!("baseline accuracy: {:.3}\n", base.final_test_acc());

    println!("[2/3] per-layer sensitivity scan (prune each layer alone to n = 1):");
    let sens = scan_sensitivity(&model, &test_set, 1, 8);
    for s in &sens {
        let bar = "#".repeat(((s.drop.max(0.0) * 200.0) as usize).min(60));
        println!("  {:<8} drop {:+.3}  {bar}", s.name, s.drop);
    }

    // Budget equivalent to the paper's 2-1-1-...-1 row: density ≈ 1.07/9.
    let target = 1.1 / 9.0;
    let (plan, lowered) =
        search_various_plan(&sens, 2, 1, |n| if n >= 2 { 32 } else { 8 }, target, 9);
    let ns: Vec<String> = plan.layers().iter().map(|l| l.n.to_string()).collect();
    println!(
        "\nfound plan: n = {}  ({} layers lowered to n = 1)",
        ns.join("-"),
        lowered.len()
    );

    println!("\n[3/3] running the pipeline with the searched plan...");
    let admm_cfg = AdmmConfig {
        rounds: 3,
        epochs_per_round: 2,
        ..Default::default()
    };
    let report = run_pcnn_pipeline(&mut model, &train_set, &test_set, &plan, &admm_cfg, 8);
    println!(
        "baseline {:.3} -> pruned {:.3} -> fine-tuned {:.3}",
        report.baseline_acc, report.pruned_acc, report.final_acc
    );
    println!(
        "(the paper's hand-chosen various row keeps n = 2 only in the most sensitive first layer)"
    );
}
