//! The paper's orthogonality experiments (Tables VII and VIII): fuse
//! PCNN with kernel-level and channel-level pruning, both analytically
//! (real VGG-16 shapes) and live on the trainable proxy.
//!
//! ```text
//! cargo run --release --example orthogonal_fusion
//! ```

use pcnn::core::admm::{run_pcnn_pipeline, AdmmConfig};
use pcnn::core::baselines::{channel, kernel};
use pcnn::core::fuse::{channel_pruned_network, fused_compression, kernel_pruned_network};
use pcnn::core::PrunePlan;
use pcnn::nn::data::synthetic_split;
use pcnn::nn::models::{vgg16_proxy, VggProxyConfig};
use pcnn::nn::optim::Sgd;
use pcnn::nn::train::{evaluate, train, TrainConfig};
use pcnn::nn::zoo::{vgg16_cifar, vgg16_imagenet};

fn main() {
    // --- analytic fusion on the real shapes -----------------------------
    println!("== analytic fusion (real VGG-16 shapes) ==");
    let imagenet = vgg16_imagenet();
    let plan5 = PrunePlan::uniform(13, 5, 32);
    for kp in [2.4f64, 4.1] {
        let reduced = kernel_pruned_network(&imagenet, 1.0 / kp);
        let fused = fused_compression(&imagenet, &reduced, &plan5, &Default::default());
        println!(
            "PCNN n=5 ({:.2}x) + kernel pruning {:.1}x -> total {:.2}x (paper: {})",
            fused.pcnn_factor,
            kp,
            fused.total,
            if kp < 3.0 { "4.4x" } else { "7.3x" }
        );
    }
    let cifar = vgg16_cifar();
    let plan2 = PrunePlan::uniform(13, 2, 32);
    let reduced = channel_pruned_network(&cifar, 1.0 / 3.0);
    let fused = fused_compression(&cifar, &reduced, &plan2, &Default::default());
    println!(
        "PCNN n=2 ({:.2}x) + channel pruning ({:.2}x) -> total {:.2}x (paper: 34.4x with 3.75x PCNN)\n",
        fused.pcnn_factor, fused.coarse_factor, fused.total
    );

    // --- live fusion on the proxy ---------------------------------------
    println!("== live fusion on the trainable proxy ==");
    let (train_set, test_set) = synthetic_split(10, 600, 150, 16, 16, 0.25, 13);
    let mut model = vgg16_proxy(&VggProxyConfig::default(), 13);
    let mut sgd = Sgd::new(0.05, 0.9, 5e-4);
    let cfg = TrainConfig {
        epochs: 14,
        batch_size: 32,
        lr_decay_epochs: vec![10],
        lr_decay: 0.2,
        seed: 2,
        ..Default::default()
    };
    let base = train(&mut model, &train_set, &test_set, &mut sgd, &cfg);
    println!("baseline accuracy: {:.3}", base.final_test_acc());

    // Coarse first: channel pruning via BN-gamma (network slimming style),
    // then kernel pruning, then PCNN inside the survivors.
    let silenced = channel::prune_channels(&mut model, 0.75);
    println!("channel pruning: silenced {silenced} channels (keep 75%)");
    let _ = kernel::prune_kernels(&mut model, 0.8);
    println!("kernel pruning: keep 80% of kernels per layer");
    let after_coarse = evaluate(&mut model, &test_set, 32);
    println!("accuracy after coarse pruning (no fine-tune): {after_coarse:.3}");

    let plan = PrunePlan::uniform(13, 4, 32);
    let admm_cfg = AdmmConfig {
        rounds: 2,
        epochs_per_round: 2,
        ..Default::default()
    };
    let report = run_pcnn_pipeline(&mut model, &train_set, &test_set, &plan, &admm_cfg, 6);
    println!(
        "after PCNN n=4 on the survivors + fine-tune: {:.3} (delta vs baseline {:+.3})",
        report.final_acc,
        report.final_acc - base.final_test_acc()
    );

    // Achieved sparsity accounting.
    let mut total = 0usize;
    let mut zeros = 0usize;
    for conv in model.prunable_convs() {
        total += conv.weight().len();
        zeros += conv.weight().count_zeros();
    }
    println!(
        "overall conv weight sparsity: {:.1}% (coarse and fine-grained pruning compose)",
        100.0 * zeros as f64 / total as f64
    );
}
