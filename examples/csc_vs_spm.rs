//! Storage-format shoot-out: SPM (this paper) vs CSC (EIE) on the same
//! pruned weights, using the *executable* codecs of `pcnn-core` — every
//! number here comes from encoding real tensors, not formulas.
//!
//! ```text
//! cargo run --release --example csc_vs_spm
//! ```

use pcnn::accel::decoder::PatternDecoder;
use pcnn::accel::trace::trace_window;
use pcnn::core::csc::CscVector;
use pcnn::core::project::project_onto_set;
use pcnn::core::spm::SpmLayer;
use pcnn::core::PatternSet;
use pcnn::tensor::Tensor;
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn main() {
    let mut rng = SmallRng::seed_from_u64(7);

    println!("format comparison on a 64x64 3x3 layer, fp32 weights:\n");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "config", "SPM bits", "CSC bits", "dense bits", "SPM comp", "CSC comp"
    );
    for n in [1usize, 2, 3, 4] {
        let set = PatternSet::full(9, n);
        let mut w = Tensor::from_vec(
            (0..64 * 64 * 9)
                .map(|_| rng.gen_range(-1.0f32..1.0))
                .collect(),
            &[64, 64, 3, 3],
        );
        for kernel in w.as_mut_slice().chunks_mut(9) {
            let _ = project_onto_set(kernel, &set);
        }

        // SPM path: per-kernel code + packed non-zero sequence.
        let spm = SpmLayer::encode(&w, &set).expect("pruned weights conform");
        let spm_bits = spm.weight_bits(32) + spm.index_bits() + spm.table_bits();

        // CSC path: flatten and run-length encode (EIE, 4-bit runs).
        let csc = CscVector::encode_tensor(&w, 4);
        let csc_bits = csc.total_bits(32);

        let dense_bits = spm.dense_bits(32);
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>9.2}x {:>9.2}x",
            format!("n = {n}"),
            spm_bits,
            csc_bits,
            dense_bits,
            dense_bits as f64 / spm_bits as f64,
            dense_bits as f64 / csc_bits as f64,
        );
    }

    println!("\nSPM wins because one ceil(log2 |P|)-bit code covers a whole kernel,");
    println!("while CSC pays 4 bits on every non-zero (plus padding zeros on long runs).\n");

    // Bonus: narrate one window through the accelerator pipeline.
    println!("pipeline trace of one kernel x window (n = 3, 4 MACs/PE):\n");
    let set = PatternSet::full(9, 3);
    let decoder = PatternDecoder::load(&set);
    let window = [0.7f32, 0.0, -1.2, 0.0, 0.4, 0.0, 0.0, 2.0, 0.0];
    let weights = [1.5f32, -0.5, 0.25];
    let trace = trace_window(&decoder, 0, &window, &weights, 4);
    print!("{}", trace.render());
}
