//! End-to-end PCNN pipeline on a trainable VGG-16-topology proxy:
//! pre-train → pattern distillation → ADMM → hard prune → masked
//! fine-tune, reporting accuracy at every stage (the paper's §IV-A
//! methodology).
//!
//! ```text
//! cargo run --release --example prune_and_finetune [n] [max_patterns]
//! ```

use pcnn::core::admm::{run_pcnn_pipeline, AdmmConfig};
use pcnn::core::PrunePlan;
use pcnn::nn::data::synthetic_split;
use pcnn::nn::models::{vgg16_proxy, VggProxyConfig};
use pcnn::nn::optim::Sgd;
use pcnn::nn::train::{train, TrainConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);
    let max_patterns: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(32);

    println!("== PCNN pipeline: n = {n}, |P| <= {max_patterns} ==\n");
    let (train_set, test_set) = synthetic_split(10, 800, 200, 16, 16, 0.25, 7);
    let mut model = vgg16_proxy(&VggProxyConfig::default(), 7);

    println!("[1/4] pre-training the baseline (18 epochs)...");
    let mut sgd = Sgd::new(0.05, 0.9, 5e-4);
    let cfg = TrainConfig {
        epochs: 18,
        batch_size: 32,
        lr_decay_epochs: vec![12],
        lr_decay: 0.2,
        seed: 1,
        verbose: true,
    };
    let base = train(&mut model, &train_set, &test_set, &mut sgd, &cfg);
    println!("baseline test accuracy: {:.3}\n", base.final_test_acc());

    println!("[2/4] distillation + ADMM  [3/4] hard prune  [4/4] fine-tune...");
    let plan = PrunePlan::uniform(13, n, max_patterns);
    let admm_cfg = AdmmConfig {
        rho: 0.5,
        rounds: 3,
        epochs_per_round: 3,
        verbose: true,
        ..Default::default()
    };
    let report = run_pcnn_pipeline(&mut model, &train_set, &test_set, &plan, &admm_cfg, 8);

    println!("\n== results ==");
    println!("baseline acc:      {:.3}", report.baseline_acc);
    println!("after hard prune:  {:.3}", report.pruned_acc);
    println!("after fine-tune:   {:.3}", report.final_acc);
    println!(
        "acc delta:         {:+.3}",
        report.final_acc - report.baseline_acc
    );
    println!("\nper-layer sparsity:");
    for r in &report.outcome.reports {
        println!(
            "  {:<8} n = {}  |P| = {:<3}  kernels = {:<5} sparsity = {:.1}%",
            r.name,
            r.n,
            r.patterns,
            r.kernels,
            r.sparsity * 100.0
        );
    }
    let compliance = report
        .admm
        .epochs
        .last()
        .map(|e| e.compliance)
        .unwrap_or(f32::NAN);
    println!("\nfinal ADMM compliance (|W - Pi(W)|^2 / |W|^2): {compliance:.4}");

    // Package the pruned network as a deployment container (the artifact
    // a host driver would DMA into the accelerator's SRAMs).
    let mut spm_layers = Vec::new();
    for (conv, set) in model.prunable_convs().iter().zip(&report.outcome.sets) {
        spm_layers.push(
            pcnn::core::spm::SpmLayer::encode(conv.weight(), set).expect("pruned weights conform"),
        );
    }
    let container = pcnn::core::export::export_spm_layers(&spm_layers);
    let path = std::env::temp_dir().join("pcnn_model.bin");
    std::fs::write(&path, &container).expect("write container");
    println!(
        "exported deployment container: {} ({} bytes, {} layers)",
        path.display(),
        container.len(),
        spm_layers.len()
    );
    let back = pcnn::core::export::import_spm_layers(&container).expect("container parses back");
    assert_eq!(back.len(), spm_layers.len());
}
