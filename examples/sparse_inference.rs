//! End-to-end pattern-sparse inference through `pcnn-runtime`.
//!
//! ```text
//! cargo run --release --example sparse_inference
//! ```
//!
//! 1. Takes a real VGG-16 convolution layer (conv2: 64→64 at 32×32 from
//!    the paper's shape zoo), prunes its weights onto the full n = 2
//!    pattern set, and times the compiled pattern kernels against the
//!    dense im2col path — the software analogue of the paper's
//!    accelerator speedup claim.
//! 2. Prunes the VGG-16-topology proxy network with a `PrunePlan`,
//!    lowers it through the layer compiler (BN folded, ReLU fused), and
//!    serves batched traffic on the work-stealing engine.

use pcnn::core::project::project_onto_set;
use pcnn::core::{PatternSet, PrunePlan};
use pcnn::nn::models::{vgg16_proxy, VggProxyConfig};
use pcnn::nn::zoo::vgg16_cifar;
use pcnn::runtime::compile::{prune_and_compile, CompileOptions};
use pcnn::runtime::{Engine, PatternConv};
use pcnn::tensor::conv::{conv2d_forward, Conv2dShape};
use pcnn::tensor::Tensor;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::time::Instant;

fn random_tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = SmallRng::seed_from_u64(seed);
    let len = shape.iter().product();
    Tensor::from_vec(
        (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        shape,
    )
}

fn time<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    // --- 1. One real VGG-16 layer at n = 2 -----------------------------
    let net = vgg16_cifar();
    let spec = &net.convs[1]; // conv2: 64 -> 64 at 32x32, the first heavy layer
    println!(
        "layer {} ({}x{}x3x3 at {}x{}, {:.1} MMACs dense)",
        spec.name,
        spec.out_c,
        spec.in_c,
        spec.in_h,
        spec.in_w,
        spec.macs() as f64 / 1e6
    );

    let shape = Conv2dShape::new(spec.in_c, spec.out_c, 3, spec.stride, spec.pad);
    let n = 2usize;
    let set = PatternSet::full(9, n);
    let mut weight = random_tensor(&[spec.out_c, spec.in_c, 3, 3], 1);
    for kernel in weight.as_mut_slice().chunks_mut(9) {
        let _ = project_onto_set(kernel, &set);
    }
    let x = random_tensor(&[1, spec.in_c, spec.in_h, spec.in_w], 2);

    let sparse = PatternConv::from_dense(&weight, shape, &set).expect("projected weights conform");
    let reps = 5;
    let dense_s = time(reps, || conv2d_forward(&x, &weight, None, &shape));
    let sparse_s = time(reps, || sparse.forward(&x));
    println!(
        "dense im2col: {:7.2} ms   pattern kernels (n={n}): {:7.2} ms   speedup: {:.2}x (ideal 9/n = {:.2}x)\n",
        dense_s * 1e3,
        sparse_s * 1e3,
        dense_s / sparse_s,
        9.0 / n as f64
    );

    // --- 2. Whole network: prune, lower, serve -------------------------
    let cfg = VggProxyConfig::default();
    let mut model = vgg16_proxy(&cfg, 3);
    let plan = PrunePlan::uniform(13, n, 32);
    let (graph, report, _) = prune_and_compile(&mut model, &plan, &CompileOptions::default())
        .expect("proxy lowers cleanly");
    println!(
        "compiled VGG-16 proxy: {} sparse + {} dense ops, SPM compression {:.2}x",
        report.sparse_layers,
        report.dense_layers,
        report.compression()
    );
    for line in graph.summary().iter().take(4) {
        println!("  {line}");
    }
    println!("  ...");

    let engine = Engine::with_default_threads(graph);
    let batch: Vec<Tensor> = (0..16)
        .map(|i| random_tensor(&[1, 3, cfg.input_hw, cfg.input_hw], 10 + i))
        .collect();
    let (outputs, stats) = engine.serve(batch);
    println!(
        "served {} requests on {} workers: {:.1} req/s (mean latency {:.2} ms, max {:.2} ms)",
        stats.requests,
        engine.threads(),
        stats.throughput_rps(),
        stats.mean_latency.as_secs_f64() * 1e3,
        stats.max_latency.as_secs_f64() * 1e3,
    );
    assert_eq!(outputs.len(), 16);
}
