//! Reproduces the paper's Figure 2 analysis: train a VGG-16-topology
//! proxy, project every CONV4 kernel to its nearest n = 4 pattern, and
//! plot the dominant/trivial frequency split that motivates KP-based
//! pattern distillation.
//!
//! ```text
//! cargo run --release --example pattern_analysis [layer_name] [n]
//! ```

use pcnn::core::distill::{distill_layer, PatternHistogram};
use pcnn::nn::data::synthetic_split;
use pcnn::nn::models::{vgg16_proxy, VggProxyConfig};
use pcnn::nn::optim::Sgd;
use pcnn::nn::train::{train, TrainConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let layer = args.next().unwrap_or_else(|| "conv4".to_string());
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    println!("training a VGG-16 proxy to get realistic weights...");
    let (train_set, test_set) = synthetic_split(10, 600, 150, 16, 16, 0.25, 3);
    let mut model = vgg16_proxy(&VggProxyConfig::default(), 3);
    let mut sgd = Sgd::new(0.05, 0.9, 5e-4);
    let cfg = TrainConfig {
        epochs: 10,
        batch_size: 32,
        seed: 3,
        ..Default::default()
    };
    let stats = train(&mut model, &train_set, &test_set, &mut sgd, &cfg);
    println!("proxy test accuracy: {:.3}\n", stats.final_test_acc());

    let convs = model.prunable_convs();
    let conv = convs
        .iter()
        .find(|c| c.name == layer)
        .unwrap_or_else(|| panic!("no layer named {layer}; try conv1..conv13"));

    let hist = PatternHistogram::from_weight(conv.weight(), n);
    println!(
        "== pattern distribution in {} (n = {n}, |F_n| = C(9,{n})) ==",
        conv.name
    );
    println!(
        "{} kernels, {} distinct patterns observed",
        hist.total_kernels(),
        hist.distinct_patterns()
    );
    let max = hist.entries().first().map_or(1, |e| e.1).max(1);
    for (rank, (p, count)) in hist.entries().iter().take(20).enumerate() {
        let bar = "#".repeat(((count * 50) / max) as usize);
        println!(
            "{:>3}. {} {:>5}  {bar}",
            rank + 1,
            p.to_string().replace('\n', " "),
            count
        );
    }
    println!("...");
    for k in [4usize, 8, 16, 32] {
        println!(
            "top-{k:<3} patterns cover {:>5.1}% of kernels",
            hist.coverage(k) * 100.0
        );
    }

    println!("\n== distilled pattern set (Algorithm 1, V_l = 8) ==");
    let set = distill_layer(conv.weight(), n, 8);
    for (code, p) in set.iter().enumerate() {
        println!("SPM code {code}:\n{p}\n");
    }
    println!("bits per SPM code: {}", set.bits_per_code());
}
