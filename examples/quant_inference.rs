//! End-to-end **quantised** pattern-sparse inference through
//! `pcnn-runtime` and `pcnn-serve`.
//!
//! ```text
//! cargo run --release --example quant_inference [-- --smoke]
//! ```
//!
//! 1. Takes a real VGG-16 convolution layer (conv2: 64→64 at 32×32 from
//!    the paper's shape zoo), prunes it onto the full n = 2 pattern set,
//!    quantises the SPM sequences to int8, and times the integer kernels
//!    against both the f32 pattern kernels and dense im2col.
//! 2. Lowers the VGG-16-topology proxy through `compile_quant` (one
//!    compiled topology, two precisions), reports int8 accuracy against
//!    the f32 path and the dequantise-then-f32 reference, and the SPM
//!    storage win of 8-bit weights.
//! 3. Serves mixed-precision traffic through `pcnn-serve`, printing the
//!    precision-labeled telemetry.

use pcnn::core::project::project_onto_set;
use pcnn::core::{PatternSet, PrunePlan};
use pcnn::nn::models::{vgg16_proxy, VggProxyConfig};
use pcnn::nn::zoo::vgg16_cifar;
use pcnn::runtime::compile::{prune_and_compile_quant, CompileOptions};
use pcnn::runtime::{Engine, PatternConv, Precision, QuantOptions, QuantPatternConv};
use pcnn::serve::{Priority, ServeConfig, Server, ShutdownMode};
use pcnn::tensor::conv::{conv2d_forward, Conv2dShape};
use pcnn::tensor::Tensor;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::time::Instant;

fn random_tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = SmallRng::seed_from_u64(seed);
    let len = shape.iter().product();
    Tensor::from_vec(
        (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        shape,
    )
}

fn time<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn rel_error(got: &Tensor, want: &Tensor) -> f32 {
    let num: f32 = got
        .as_slice()
        .iter()
        .zip(want.as_slice())
        .map(|(a, b)| (a - b).powi(2))
        .sum();
    (num / want.sq_norm().max(1e-12)).sqrt()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 2 } else { 10 };

    // --- 1. One real VGG-16 layer: f32 vs int8 pattern kernels --------
    let net = vgg16_cifar();
    let spec = &net.convs[1]; // conv2: 64 -> 64 at 32x32
    let shape = Conv2dShape::new(spec.in_c, spec.out_c, 3, spec.stride, spec.pad);
    let n = 2usize;
    let set = PatternSet::full(9, n);
    let mut weight = random_tensor(&[spec.out_c, spec.in_c, 3, 3], 1);
    for kernel in weight.as_mut_slice().chunks_mut(9) {
        let _ = project_onto_set(kernel, &set);
    }
    let x = random_tensor(&[1, spec.in_c, spec.in_h, spec.in_w], 2);

    let sparse = PatternConv::from_dense(&weight, shape, &set).expect("projected weights conform");
    let quant = QuantPatternConv::from_pattern_conv(&sparse, &QuantOptions::default());
    println!(
        "layer {} ({}x{}x3x3 at {}x{}, n={n}): weight scale {:.3e}, {} kernels",
        spec.name,
        spec.out_c,
        spec.in_c,
        spec.in_h,
        spec.in_w,
        quant.weight_params().scale,
        spec.kernels(),
    );
    let dense_s = time(reps, || conv2d_forward(&x, &weight, None, &shape));
    let f32_s = time(reps, || sparse.forward(&x));
    let int8_s = time(reps, || quant.forward(&x));
    println!(
        "dense im2col {:7.2} ms   f32 pattern {:7.2} ms   int8 pattern {:7.2} ms   (int8 vs f32: {:.2}x)",
        dense_s * 1e3,
        f32_s * 1e3,
        int8_s * 1e3,
        f32_s / int8_s
    );
    let err = rel_error(&quant.forward(&x), &sparse.forward(&x));
    println!("int8 vs f32 relative error: {err:.2e} (quantisation noise)\n");

    // --- 2. Whole network through compile_quant ------------------------
    let cfg = VggProxyConfig::default();
    let mut model = vgg16_proxy(&cfg, 3);
    let plan = PrunePlan::uniform(13, n, 32);
    let (graph, report, _) = prune_and_compile_quant(
        &mut model,
        &plan,
        &CompileOptions::default(),
        &QuantOptions::default(),
    )
    .expect("proxy lowers cleanly");
    // 8-bit weights shrink only the weight bits; codes and tables stay.
    let spm8 = report.spm_weight_bits / 4 + report.spm_index_bits + report.spm_table_bits;
    println!(
        "compiled VGG-16 proxy: {} f32 + {} int8 conv ops over one topology",
        report.sparse_layers,
        graph.quant_op_count(),
    );
    println!(
        "SPM storage: {:.2}x at fp32, {:.2}x with int8 weight sequences (vs fp32 dense)",
        report.compression(),
        report.dense_bits as f64 / spm8 as f64,
    );
    let xb = random_tensor(&[4, 3, cfg.input_hw, cfg.input_hw], 7);
    let f32_out = graph.run_with(&xb, Precision::F32);
    let int8_out = graph.run_with(&xb, Precision::Int8);
    let reference = graph.run_int8_reference(&xb);
    println!(
        "int8 vs dequantised reference: max |Δ| {:.2e} (must be < 1e-5)   int8 vs f32: rel {:.2e}",
        int8_out
            .as_slice()
            .iter()
            .zip(reference.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max),
        rel_error(&int8_out, &f32_out),
    );
    assert!(int8_out
        .as_slice()
        .iter()
        .zip(reference.as_slice())
        .all(|(a, b)| (a - b).abs() < 1e-5));
    let g_f32 = time(reps, || graph.run_with(&xb, Precision::F32));
    let g_int8 = time(reps, || graph.run_with(&xb, Precision::Int8));
    println!(
        "batch-4 graph pass: f32 {:.2} ms   int8 {:.2} ms   ({:.2}x)\n",
        g_f32 * 1e3,
        g_int8 * 1e3,
        g_f32 / g_int8
    );

    // --- 3. Mixed-precision serving ------------------------------------
    let engine = Engine::new(graph, 2);
    let server = Server::start(
        engine,
        ServeConfig {
            precision: Precision::Int8,
            ..ServeConfig::default()
        },
    );
    let requests = if smoke { 8 } else { 48 };
    let tickets: Vec<_> = (0..requests)
        .map(|i| {
            let x = random_tensor(&[1, 3, cfg.input_hw, cfg.input_hw], 100 + i as u64);
            // Default precision is int8; every third request opts back
            // into f32 per request.
            if i % 3 == 0 {
                server
                    .submit_with(x, Priority::Normal, Precision::F32)
                    .expect("admitted")
            } else {
                server.submit(x).expect("admitted")
            }
        })
        .collect();
    for t in tickets {
        t.wait().expect("served");
    }
    let snap = server.metrics().snapshot();
    println!("served {requests} mixed-precision requests:\n{snap}");
    for p in &snap.precisions {
        assert!(p.completed > 0, "both precisions saw traffic");
    }
    let report = server.shutdown(ShutdownMode::Drain);
    assert_eq!(report.completed as usize, requests);
    println!(
        "\ndrained: {} completed, {} aborted",
        report.completed, report.aborted
    );
}
