//! Drives the cycle-level pattern-aware accelerator simulator:
//! functional verification of the datapath on a pruned layer, then the
//! paper's §IV-E speedup ladder on the real VGG-16 shapes.
//!
//! ```text
//! cargo run --release --example accelerator_sim
//! ```

use pcnn::accel::config::AccelConfig;
use pcnn::accel::power::AreaPowerModel;
use pcnn::accel::sim::{execute_sparse_conv, simulate_network};
use pcnn::core::project::project_onto_set;
use pcnn::core::sparse::SparseConv;
use pcnn::core::{PatternSet, PrunePlan};
use pcnn::nn::zoo::vgg16_cifar;
use pcnn::tensor::conv::{conv2d_direct, Conv2dShape};
use pcnn::tensor::Tensor;
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn main() {
    let cfg = AccelConfig::default();
    println!(
        "accelerator: {} PEs x {} MACs @ {} MHz  (peak {:.1} GOPS)\n",
        cfg.pe_count,
        cfg.macs_per_pe,
        cfg.freq_mhz,
        cfg.peak_gops()
    );

    // --- functional verification (the VCS-run analogue) ----------------
    println!("[1/2] functional verification of the datapath...");
    let mut rng = SmallRng::seed_from_u64(5);
    let set = PatternSet::full(9, 4);
    let shape = Conv2dShape::new(16, 32, 3, 1, 1);
    let mut w = Tensor::from_vec(
        (0..32 * 16 * 9)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect(),
        &[32, 16, 3, 3],
    );
    for kernel in w.as_mut_slice().chunks_mut(9) {
        let _ = project_onto_set(kernel, &set);
    }
    let mut x = Tensor::from_vec(
        (0..16 * 12 * 12)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect(),
        &[1, 16, 12, 12],
    );
    for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
        if i % 5 == 0 {
            *v = 0.0; // activation sparsity for the zero-skip path
        }
    }
    let sparse = SparseConv::from_dense(&w, shape, &set).expect("encode");
    let (got, sim) = execute_sparse_conv(&sparse, &x, &cfg);
    let want = conv2d_direct(&x, &w, None, &shape);
    let max_err = got
        .as_slice()
        .iter()
        .zip(want.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("  max |accelerator - golden| = {max_err:.2e}  (PASS if < 1e-4)");
    assert!(max_err < 1e-4, "functional mismatch");
    println!(
        "  layer: {} cycles vs {} dense cycles -> {:.2}x speedup, {:.1}% MAC utilisation\n",
        sim.cycles,
        sim.dense_cycles,
        sim.speedup(),
        sim.utilization() * 100.0
    );

    // --- §IV-E speedup ladder on real VGG-16 shapes ---------------------
    println!("[2/2] VGG-16 (CIFAR-10) whole-network simulation:");
    let net = vgg16_cifar();
    let power = AreaPowerModel::umc55();
    println!(
        "  {:<10} {:>10} {:>10} {:>9} {:>9}",
        "config", "cycles", "time(ms)", "speedup", "TOPS/W"
    );
    let dense = simulate_network(&net, None, 1.0, &cfg, 1);
    println!(
        "  {:<10} {:>10} {:>10.3} {:>8.2}x {:>9.2}",
        "dense",
        dense.cycles(),
        dense.time_ms(&cfg),
        1.0,
        power.tops_per_watt(&cfg, 1.0)
    );
    for n in [4usize, 3, 2, 1] {
        let plan = PrunePlan::uniform(13, n, if n == 1 { 8 } else { 32 });
        let sim = simulate_network(&net, Some(&plan), 1.0, &cfg, 1);
        println!(
            "  {:<10} {:>10} {:>10.3} {:>8.2}x {:>9.2}",
            format!("PCNN n={n}"),
            sim.cycles(),
            sim.time_ms(&cfg),
            sim.speedup(),
            power.tops_per_watt(&cfg, sim.speedup())
        );
    }
    println!("\npaper reports 2.3x / 3.1x / 4.5x / 9.0x and 3.15 - 28.39 TOPS/W");
}
