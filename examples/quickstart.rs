//! Quickstart: the PCNN representation and compression math in a minute.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks through the paper's Figure 1 (SPM encoding of one kernel), the
//! candidate-set sizes of §II-A, and Table I's compression arithmetic on
//! the real VGG-16 shapes.

use pcnn::core::compress::{csc_compression, flops_after_pcnn, pcnn_compression, StorageModel};
use pcnn::core::pattern::binomial;
use pcnn::core::project::project_kernel;
use pcnn::core::spm::SpmLayer;
use pcnn::core::{PatternSet, PrunePlan};
use pcnn::nn::zoo::vgg16_cifar;
use pcnn::tensor::Tensor;

fn main() {
    // --- Figure 1: one kernel, its pattern, and its SPM encoding -------
    let kernel = [0.0f32, 2.09, 1.45, 0.0, 0.0, 1.15, -0.89, 2.12, -0.58];
    let pattern = project_kernel(&kernel, 6);
    println!(
        "Figure 1 kernel pattern ({} non-zeros):\n{pattern}\n",
        pattern.weight()
    );

    let weight = Tensor::from_vec(kernel.to_vec(), &[1, 1, 3, 3]);
    let set = PatternSet::full(9, 6);
    let spm = SpmLayer::encode(&weight, &set).expect("kernel conforms to F_6");
    println!(
        "SPM storage: {} weight bits + {} index bits (dense would be {} bits)\n",
        spm.weight_bits(32),
        spm.index_bits(),
        spm.dense_bits(32),
    );

    // --- §II-A: pattern counting ---------------------------------------
    let total: u64 = (0..=9).map(|i| binomial(9, i)).sum();
    println!("all 3x3 patterns: {total} (9-bit naive index)");
    println!(
        "PCNN fixes n per layer; worst case |F_n| = C(9,4) = {}\n",
        binomial(9, 4)
    );

    // --- Table I arithmetic on the real VGG-16 -------------------------
    let net = vgg16_cifar();
    println!(
        "VGG-16 (CIFAR-10): {} conv params, {} conv MACs",
        net.conv_params(),
        net.conv_macs()
    );
    for n in [4usize, 3, 2, 1] {
        let plan = PrunePlan::uniform(13, n, if n == 1 { 8 } else { 32 });
        let comp = pcnn_compression(&net, &plan, &StorageModel::default());
        let flops = flops_after_pcnn(&net, &plan);
        let (csc, _) = csc_compression(&net, &plan, &StorageModel::default());
        println!(
            "  n = {n}: weight {:.2}x | weight+idx {:.2}x | CSC(EIE) {:.2}x | FLOPs pruned {:.1}%",
            comp.weight_only,
            comp.weight_plus_index,
            csc,
            flops.reduction * 100.0
        );
    }
    println!("\n(the weight+idx vs CSC gap is the point of kernel-level SPM indices)");
}
