//! # PCNN: pattern-based fine-grained regular pruning
//!
//! A Rust reproduction of *"PCNN: Pattern-based Fine-Grained Regular
//! Pruning Towards Optimizing CNN Accelerators"* (Tan et al., DAC 2020).
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`tensor`] — dense tensor math (im2col convolution, GEMM, pooling);
//! * [`nn`] — a minimal CNN training stack plus the analytic shape zoo of
//!   the paper's benchmark networks;
//! * [`core`] — the paper's contribution: SPM encoding, pattern
//!   distillation, projection, ADMM fine-tuning, baseline pruners, and
//!   compression/FLOPs accounting;
//! * [`accel`] — the cycle-level simulator of the pattern-aware
//!   accelerator (decoder, sparsity-IO pointer generation, PE group,
//!   memory system, area/power model);
//! * [`runtime`] — the pattern-aware sparse inference engine: compiled
//!   per-pattern kernels, a layer compiler lowering pruned models to an
//!   executable graph, and a batched work-stealing executor for serving
//!   concurrent requests;
//! * [`serve`] — the async serving front-end over the engine: a bounded
//!   request queue with backpressure, a dynamic micro-batcher
//!   (`max_batch`/`max_wait`), ticketed results, latency percentiles,
//!   and graceful shutdown.
//!
//! ## Quickstart
//!
//! ```
//! use pcnn::core::{compress, PrunePlan};
//! use pcnn::nn::zoo::vgg16_cifar;
//!
//! // Paper Table I, n = 2: 4.5× weight compression on VGG-16.
//! let net = vgg16_cifar();
//! let plan = PrunePlan::uniform(13, 2, 32);
//! let report = compress::pcnn_compression(&net, &plan, &Default::default());
//! assert!((report.weight_only - 4.5).abs() < 1e-9);
//! ```
//!
//! See the `examples/` directory for end-to-end flows: pruning +
//! ADMM fine-tuning of a trainable proxy network, running the
//! accelerator simulator, and reproducing the paper's pattern-frequency
//! analysis.

pub use pcnn_accel as accel;
pub use pcnn_core as core;
pub use pcnn_nn as nn;
pub use pcnn_runtime as runtime;
pub use pcnn_serve as serve;
pub use pcnn_tensor as tensor;
